//! RFC 1035 wire format: messages, names with compression, resource
//! records.
//!
//! The interval-compressed [`crate::scan::DnsHistory`] is what the
//! detectors consume, but the scanner "speaks DNS" through this module so
//! the substrate exercises the real serialisation path — including name
//! compression pointers, the part of the format implementations most often
//! get wrong.

use crate::record::{Ipv4Addr, RData, Record, RecordType, Ttl};
use stale_types::DomainName;
use std::collections::HashMap;
use std::fmt;

/// Wire decoding/encoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A compression pointer pointed forward or looped.
    BadPointer,
    /// A label exceeded 63 octets or a name 255.
    BadName,
    /// Unknown record type or class on the wire.
    Unsupported(u16),
    /// RDATA contents malformed.
    BadRdata(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated DNS message"),
            WireError::BadPointer => write!(f, "invalid compression pointer"),
            WireError::BadName => write!(f, "malformed name"),
            WireError::Unsupported(code) => write!(f, "unsupported type/class {code}"),
            WireError::BadRdata(w) => write!(f, "bad rdata: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
}

impl Rcode {
    fn code(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
        }
    }

    fn from_code(c: u16) -> Rcode {
        match c {
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            _ => Rcode::NoError,
        }
    }
}

/// Message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Query (false) or response (true).
    pub response: bool,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// One question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub qtype: RecordType,
}

/// A DNS message (questions + answers; authority/additional sections are
/// not needed by the scanner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
}

impl Message {
    /// Build a query for `name`/`qtype`.
    pub fn query(id: u16, name: DomainName, qtype: RecordType) -> Message {
        Message {
            header: Header {
                id,
                response: false,
                authoritative: false,
                recursion_desired: true,
                rcode: Rcode::NoError,
            },
            questions: vec![Question { name, qtype }],
            answers: Vec::new(),
        }
    }

    /// Build a response to `query` with `answers`.
    pub fn response(query: &Message, answers: Vec<Record>, rcode: Rcode) -> Message {
        Message {
            header: Header {
                id: query.header.id,
                response: true,
                authoritative: true,
                recursion_desired: query.header.recursion_desired,
                rcode,
            },
            questions: query.questions.clone(),
            answers,
        }
    }

    /// Encode to wire bytes with name compression.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        let mut offsets: HashMap<String, u16> = HashMap::new();
        buf.extend_from_slice(&self.header.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.header.response {
            flags |= 0x8000;
        }
        if self.header.authoritative {
            flags |= 0x0400;
        }
        if self.header.recursion_desired {
            flags |= 0x0100;
        }
        flags |= self.header.rcode.code();
        buf.extend_from_slice(&flags.to_be_bytes());
        buf.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        buf.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        buf.extend_from_slice(&0u16.to_be_bytes()); // nscount
        buf.extend_from_slice(&0u16.to_be_bytes()); // arcount
        for q in &self.questions {
            encode_name(&mut buf, &mut offsets, &q.name);
            buf.extend_from_slice(&q.qtype.code().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for rr in &self.answers {
            encode_name(&mut buf, &mut offsets, &rr.name);
            buf.extend_from_slice(&rr.record_type().code().to_be_bytes());
            buf.extend_from_slice(&1u16.to_be_bytes());
            buf.extend_from_slice(&rr.ttl.0.to_be_bytes());
            // RDLENGTH is backfilled after encoding RDATA (names inside
            // RDATA may compress, so the length isn't known up front).
            let len_pos = buf.len();
            buf.extend_from_slice(&0u16.to_be_bytes());
            let start = buf.len();
            encode_rdata(&mut buf, &mut offsets, &rr.data);
            let rdlen = (buf.len() - start) as u16;
            buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
        buf
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let mut pos = 0usize;
        let id = read_u16(buf, &mut pos)?;
        let flags = read_u16(buf, &mut pos)?;
        let qdcount = read_u16(buf, &mut pos)?;
        let ancount = read_u16(buf, &mut pos)?;
        let _nscount = read_u16(buf, &mut pos)?;
        let _arcount = read_u16(buf, &mut pos)?;
        let header = Header {
            id,
            response: flags & 0x8000 != 0,
            authoritative: flags & 0x0400 != 0,
            recursion_desired: flags & 0x0100 != 0,
            rcode: Rcode::from_code(flags & 0x000F),
        };
        let mut questions = Vec::with_capacity(qdcount as usize);
        for _ in 0..qdcount {
            let name = decode_name(buf, &mut pos)?;
            let tcode = read_u16(buf, &mut pos)?;
            let class = read_u16(buf, &mut pos)?;
            if class != 1 {
                return Err(WireError::Unsupported(class));
            }
            let qtype = RecordType::from_code(tcode).ok_or(WireError::Unsupported(tcode))?;
            questions.push(Question { name, qtype });
        }
        let mut answers = Vec::with_capacity(ancount as usize);
        for _ in 0..ancount {
            let name = decode_name(buf, &mut pos)?;
            let tcode = read_u16(buf, &mut pos)?;
            let class = read_u16(buf, &mut pos)?;
            if class != 1 {
                return Err(WireError::Unsupported(class));
            }
            let rtype = RecordType::from_code(tcode).ok_or(WireError::Unsupported(tcode))?;
            let ttl = Ttl(read_u32(buf, &mut pos)?);
            let rdlen = read_u16(buf, &mut pos)? as usize;
            let rdata_end = pos.checked_add(rdlen).ok_or(WireError::Truncated)?;
            if rdata_end > buf.len() {
                return Err(WireError::Truncated);
            }
            let data = decode_rdata(buf, &mut pos, rtype, rdata_end)?;
            if pos != rdata_end {
                return Err(WireError::BadRdata("rdlength mismatch"));
            }
            answers.push(Record { name, ttl, data });
        }
        Ok(Message {
            header,
            questions,
            answers,
        })
    }
}

fn read_u16(buf: &[u8], pos: &mut usize) -> Result<u16, WireError> {
    let bytes = buf.get(*pos..*pos + 2).ok_or(WireError::Truncated)?;
    *pos += 2;
    Ok(u16::from_be_bytes(bytes.try_into().expect("2 bytes")))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    let bytes = buf.get(*pos..*pos + 4).ok_or(WireError::Truncated)?;
    *pos += 4;
    Ok(u32::from_be_bytes(bytes.try_into().expect("4 bytes")))
}

/// Encode a name, emitting a compression pointer to any previously encoded
/// suffix.
fn encode_name(buf: &mut Vec<u8>, offsets: &mut HashMap<String, u16>, name: &DomainName) {
    let labels: Vec<&str> = name.labels().collect();
    for i in 0..labels.len() {
        let suffix = labels[i..].join(".");
        if let Some(&off) = offsets.get(&suffix) {
            buf.extend_from_slice(&(0xC000u16 | off).to_be_bytes());
            return;
        }
        if buf.len() < 0x3FFF {
            offsets.insert(suffix, buf.len() as u16);
        }
        let label = labels[i].as_bytes();
        buf.push(label.len() as u8);
        buf.extend_from_slice(label);
    }
    buf.push(0);
}

/// Decode a (possibly compressed) name at `*pos`.
fn decode_name(buf: &[u8], pos: &mut usize) -> Result<DomainName, WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut cursor = *pos;
    let mut jumped = false;
    let mut jumps = 0;
    loop {
        let len = *buf.get(cursor).ok_or(WireError::Truncated)? as usize;
        if len & 0xC0 == 0xC0 {
            let second = *buf.get(cursor + 1).ok_or(WireError::Truncated)? as usize;
            let target = ((len & 0x3F) << 8) | second;
            // Pointers must point strictly backwards; cap jumps to prevent
            // loops.
            if target >= cursor || jumps > 32 {
                return Err(WireError::BadPointer);
            }
            if !jumped {
                *pos = cursor + 2;
                jumped = true;
            }
            cursor = target;
            jumps += 1;
            continue;
        }
        if len & 0xC0 != 0 {
            return Err(WireError::BadName);
        }
        cursor += 1;
        if len == 0 {
            break;
        }
        let label = buf.get(cursor..cursor + len).ok_or(WireError::Truncated)?;
        labels.push(
            std::str::from_utf8(label)
                .map_err(|_| WireError::BadName)?
                .to_string(),
        );
        cursor += len;
        if labels.len() > 64 {
            return Err(WireError::BadName);
        }
    }
    if !jumped {
        *pos = cursor;
    }
    if labels.is_empty() {
        return Err(WireError::BadName);
    }
    DomainName::parse(&labels.join(".")).map_err(|_| WireError::BadName)
}

fn encode_rdata(buf: &mut Vec<u8>, offsets: &mut HashMap<String, u16>, data: &RData) {
    match data {
        RData::A(ip) => buf.extend_from_slice(&ip.0),
        RData::Aaaa(ip) => buf.extend_from_slice(ip),
        RData::Ns(name) | RData::Cname(name) => encode_name(buf, offsets, name),
        RData::Txt(text) => {
            // Character strings of up to 255 bytes each.
            for chunk in text.as_bytes().chunks(255) {
                buf.push(chunk.len() as u8);
                buf.extend_from_slice(chunk);
            }
            if text.is_empty() {
                buf.push(0);
            }
        }
        RData::Soa {
            mname,
            rname,
            serial,
        } => {
            encode_name(buf, offsets, mname);
            encode_name(buf, offsets, rname);
            buf.extend_from_slice(&serial.to_be_bytes());
            // refresh/retry/expire/minimum fixed for the simulation.
            for v in [7200u32, 900, 1209600, 3600] {
                buf.extend_from_slice(&v.to_be_bytes());
            }
        }
        RData::Caa {
            critical,
            tag,
            value,
        } => {
            buf.push(if *critical { 0x80 } else { 0 });
            buf.push(tag.len() as u8);
            buf.extend_from_slice(tag.as_bytes());
            buf.extend_from_slice(value.as_bytes());
        }
        RData::Tlsa {
            usage,
            selector,
            matching_type,
            association,
        } => {
            buf.push(*usage);
            buf.push(*selector);
            buf.push(*matching_type);
            buf.extend_from_slice(association);
        }
    }
}

fn decode_rdata(
    buf: &[u8],
    pos: &mut usize,
    rtype: RecordType,
    end: usize,
) -> Result<RData, WireError> {
    match rtype {
        RecordType::A => {
            let bytes = buf.get(*pos..*pos + 4).ok_or(WireError::Truncated)?;
            *pos += 4;
            Ok(RData::A(Ipv4Addr(bytes.try_into().expect("4 bytes"))))
        }
        RecordType::Aaaa => {
            let bytes = buf.get(*pos..*pos + 16).ok_or(WireError::Truncated)?;
            *pos += 16;
            Ok(RData::Aaaa(bytes.try_into().expect("16 bytes")))
        }
        RecordType::Ns => Ok(RData::Ns(decode_name(buf, pos)?)),
        RecordType::Cname => Ok(RData::Cname(decode_name(buf, pos)?)),
        RecordType::Txt => {
            let mut text = String::new();
            while *pos < end {
                let len = *buf.get(*pos).ok_or(WireError::Truncated)? as usize;
                *pos += 1;
                let chunk = buf.get(*pos..*pos + len).ok_or(WireError::Truncated)?;
                text.push_str(
                    std::str::from_utf8(chunk).map_err(|_| WireError::BadRdata("non-utf8 TXT"))?,
                );
                *pos += len;
            }
            Ok(RData::Txt(text))
        }
        RecordType::Soa => {
            let mname = decode_name(buf, pos)?;
            let rname = decode_name(buf, pos)?;
            let serial = read_u32(buf, pos)?;
            for _ in 0..4 {
                let _ = read_u32(buf, pos)?;
            }
            Ok(RData::Soa {
                mname,
                rname,
                serial,
            })
        }
        RecordType::Tlsa => {
            let header = buf.get(*pos..*pos + 3).ok_or(WireError::Truncated)?;
            let (usage, selector, matching_type) = (header[0], header[1], header[2]);
            *pos += 3;
            let association = buf.get(*pos..end).ok_or(WireError::Truncated)?.to_vec();
            *pos = end;
            Ok(RData::Tlsa {
                usage,
                selector,
                matching_type,
                association,
            })
        }
        RecordType::Caa => {
            let flags = *buf.get(*pos).ok_or(WireError::Truncated)?;
            *pos += 1;
            let tag_len = *buf.get(*pos).ok_or(WireError::Truncated)? as usize;
            *pos += 1;
            let tag = buf.get(*pos..*pos + tag_len).ok_or(WireError::Truncated)?;
            *pos += tag_len;
            let value = buf.get(*pos..end).ok_or(WireError::Truncated)?;
            *pos = end;
            Ok(RData::Caa {
                critical: flags & 0x80 != 0,
                tag: std::str::from_utf8(tag)
                    .map_err(|_| WireError::BadRdata("non-utf8 CAA tag"))?
                    .to_string(),
                value: std::str::from_utf8(value)
                    .map_err(|_| WireError::BadRdata("non-utf8 CAA value"))?
                    .to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn roundtrip(msg: &Message) -> Message {
        Message::decode(&msg.encode()).expect("roundtrip decode")
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, dn("www.foo.com"), RecordType::A);
        let back = roundtrip(&q);
        assert_eq!(back, q);
        assert!(!back.header.response);
    }

    #[test]
    fn response_with_all_rdata_types() {
        let q = Message::query(7, dn("foo.com"), RecordType::A);
        let answers = vec![
            Record::new(dn("foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1))),
            Record::new(
                dn("foo.com"),
                RData::Aaaa(
                    [0x20, 0x01]
                        .iter()
                        .chain([0u8; 14].iter())
                        .copied()
                        .collect::<Vec<_>>()
                        .try_into()
                        .unwrap(),
                ),
            ),
            Record::new(dn("foo.com"), RData::Ns(dn("ns1.foo.com"))),
            Record::new(dn("www.foo.com"), RData::Cname(dn("foo.com"))),
            Record::new(
                dn("_acme-challenge.foo.com"),
                RData::Txt("token-value".into()),
            ),
            Record::new(
                dn("foo.com"),
                RData::Soa {
                    mname: dn("ns1.foo.com"),
                    rname: dn("hostmaster.foo.com"),
                    serial: 42,
                },
            ),
            Record::new(
                dn("foo.com"),
                RData::Caa {
                    critical: false,
                    tag: "issue".into(),
                    value: "letsencrypt.org".into(),
                },
            ),
        ];
        let resp = Message::response(&q, answers, Rcode::NoError);
        let back = roundtrip(&resp);
        assert_eq!(back, resp);
        assert!(back.header.response);
        assert!(back.header.authoritative);
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, dn("foo.com"), RecordType::Ns);
        let answers: Vec<Record> = (1..=4)
            .map(|i| Record::new(dn("foo.com"), RData::Ns(dn(&format!("ns{i}.foo.com")))))
            .collect();
        let resp = Message::response(&q, answers, Rcode::NoError);
        let encoded = resp.encode();
        // Without compression "foo.com" appears 6 times (9 bytes each).
        // With compression every repeat is a 2-byte pointer.
        let uncompressed_estimate = 12 + (9 + 4) + 4 * (9 + 10 + 13);
        assert!(
            encoded.len() < uncompressed_estimate,
            "{} bytes",
            encoded.len()
        );
        assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn nxdomain_response() {
        let q = Message::query(9, dn("gone.example"), RecordType::A);
        let resp = Message::response(&q, vec![], Rcode::NxDomain);
        let back = roundtrip(&resp);
        assert_eq!(back.header.rcode, Rcode::NxDomain);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn truncated_and_corrupt_inputs_error_not_panic() {
        let msg = Message::query(5, dn("foo.com"), RecordType::A);
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            let _ = Message::decode(&bytes[..cut]);
        }
        let mut corrupt = bytes.clone();
        for i in 0..corrupt.len() {
            corrupt[i] ^= 0xFF;
            let _ = Message::decode(&corrupt);
            corrupt[i] ^= 0xFF;
        }
    }

    #[test]
    fn forward_pointer_rejected() {
        // Header + one question whose name is a pointer to itself.
        let mut buf = vec![0u8; 12];
        buf[4] = 0;
        buf[5] = 1; // qdcount = 1
        buf.extend_from_slice(&[0xC0, 12]); // pointer to offset 12 (itself)
        buf.extend_from_slice(&1u16.to_be_bytes());
        buf.extend_from_slice(&1u16.to_be_bytes());
        assert_eq!(Message::decode(&buf), Err(WireError::BadPointer));
    }

    #[test]
    fn tlsa_roundtrip() {
        let q = Message::query(3, dn("_443._tcp.foo.com"), RecordType::Tlsa);
        let resp = Message::response(
            &q,
            vec![Record::new(
                dn("_443._tcp.foo.com"),
                RData::Tlsa {
                    usage: 3,
                    selector: 1,
                    matching_type: 1,
                    association: vec![0xAA; 32],
                },
            )],
            Rcode::NoError,
        );
        assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn long_txt_chunks() {
        let q = Message::query(2, dn("t.example"), RecordType::Txt);
        let text = "x".repeat(600); // spans three character-strings
        let resp = Message::response(
            &q,
            vec![Record::new(dn("t.example"), RData::Txt(text.clone()))],
            Rcode::NoError,
        );
        let back = roundtrip(&resp);
        match &back.answers[0].data {
            RData::Txt(t) => assert_eq!(t, &text),
            other => panic!("wrong rdata {other:?}"),
        }
    }
}
