//! Recursive resolution over a set of authoritative zones.
//!
//! The resolver models what the paper's active scanner does: for each
//! domain, chase NS delegations from the most specific zone and follow
//! CNAME chains to terminal records. Loops and chains longer than the
//! standard limit are detected rather than followed forever.

use crate::record::{RData, RecordType};
use crate::zone::Zone;
use stale_types::DomainName;
use std::collections::BTreeMap;
use std::fmt;

/// Maximum CNAME chain length before giving up (matches common resolver
/// limits).
pub const MAX_CNAME_CHAIN: usize = 8;

/// Resolution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolutionError {
    /// No zone is authoritative for the name.
    NoAuthority(String),
    /// The name exists in a zone but has no records of the requested type
    /// and no CNAME.
    NoRecords(String),
    /// A CNAME chain exceeded [`MAX_CNAME_CHAIN`] or looped.
    CnameLoop(String),
}

impl fmt::Display for ResolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolutionError::NoAuthority(n) => write!(f, "no authority for {n}"),
            ResolutionError::NoRecords(n) => write!(f, "no records at {n}"),
            ResolutionError::CnameLoop(n) => write!(f, "CNAME loop resolving {n}"),
        }
    }
}

impl std::error::Error for ResolutionError {}

/// A resolver over a collection of authoritative zones keyed by apex.
#[derive(Debug, Default)]
pub struct Resolver {
    zones: BTreeMap<DomainName, Zone>,
}

impl Resolver {
    /// Empty resolver.
    pub fn new() -> Self {
        Resolver::default()
    }

    /// Add (or replace) a zone.
    pub fn add_zone(&mut self, zone: Zone) {
        if let Some(apex) = zone.apex().cloned() {
            self.zones.insert(apex, zone);
        }
    }

    /// Mutable access to the zone rooted at `apex`.
    pub fn zone_mut(&mut self, apex: &DomainName) -> Option<&mut Zone> {
        self.zones.get_mut(apex)
    }

    /// The most specific zone authoritative for `name`.
    pub fn authority(&self, name: &DomainName) -> Option<&Zone> {
        let mut cursor = Some(name.clone());
        while let Some(candidate) = cursor {
            if let Some(zone) = self.zones.get(&candidate) {
                return Some(zone);
            }
            cursor = candidate.parent();
        }
        None
    }

    /// Resolve records of `rtype` at `name`, following CNAMEs.
    ///
    /// Returns the terminal records (which live at the end of any CNAME
    /// chain). Asking for `RecordType::Cname` returns the immediate CNAME
    /// without chasing.
    pub fn resolve(
        &self,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<Vec<RData>, ResolutionError> {
        let mut current = name.clone();
        for _ in 0..=MAX_CNAME_CHAIN {
            let zone = self
                .authority(&current)
                .ok_or_else(|| ResolutionError::NoAuthority(current.to_string()))?;
            let direct = zone.lookup(&current, rtype);
            if !direct.is_empty() {
                return Ok(direct.into_iter().map(|r| r.data.clone()).collect());
            }
            if rtype != RecordType::Cname {
                let cnames = zone.lookup(&current, RecordType::Cname);
                if let Some(cname) = cnames.first() {
                    if let RData::Cname(target) = &cname.data {
                        current = target.clone();
                        continue;
                    }
                }
            }
            return Err(ResolutionError::NoRecords(current.to_string()));
        }
        Err(ResolutionError::CnameLoop(name.to_string()))
    }

    /// Convenience: the full CNAME chain starting at `name` (possibly
    /// empty), without the terminal records.
    pub fn cname_chain(&self, name: &DomainName) -> Vec<DomainName> {
        let mut chain = Vec::new();
        let mut current = name.clone();
        while chain.len() <= MAX_CNAME_CHAIN {
            let Some(zone) = self.authority(&current) else {
                break;
            };
            let cnames = zone.lookup(&current, RecordType::Cname);
            let Some(record) = cnames.first() else { break };
            let RData::Cname(target) = &record.data else {
                break;
            };
            if chain.contains(target) {
                break;
            }
            chain.push(target.clone());
            current = target.clone();
        }
        chain
    }

    /// Number of zones loaded.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Ipv4Addr;
    use stale_types::domain::dn;

    fn resolver() -> Resolver {
        let mut r = Resolver::new();
        let mut foo = Zone::new(dn("foo.com"));
        foo.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        foo.add_data(dn("foo.com"), RData::Ns(dn("ns1.foo.com")));
        foo.add_data(dn("www.foo.com"), RData::Cname(dn("foo.com")));
        foo.add_data(dn("cdn.foo.com"), RData::Cname(dn("edge.cdn.example")));
        r.add_zone(foo);
        let mut cdn = Zone::new(dn("cdn.example"));
        cdn.add_data(
            dn("edge.cdn.example"),
            RData::A(Ipv4Addr::new(198, 51, 100, 7)),
        );
        r.add_zone(cdn);
        r
    }

    #[test]
    fn direct_lookup() {
        let r = resolver();
        let a = r.resolve(&dn("foo.com"), RecordType::A).unwrap();
        assert_eq!(a, vec![RData::A(Ipv4Addr::new(192, 0, 2, 1))]);
    }

    #[test]
    fn cname_chase_within_zone() {
        let r = resolver();
        let a = r.resolve(&dn("www.foo.com"), RecordType::A).unwrap();
        assert_eq!(a, vec![RData::A(Ipv4Addr::new(192, 0, 2, 1))]);
    }

    #[test]
    fn cname_chase_across_zones() {
        let r = resolver();
        let a = r.resolve(&dn("cdn.foo.com"), RecordType::A).unwrap();
        assert_eq!(a, vec![RData::A(Ipv4Addr::new(198, 51, 100, 7))]);
        assert_eq!(
            r.cname_chain(&dn("cdn.foo.com")),
            vec![dn("edge.cdn.example")]
        );
    }

    #[test]
    fn asking_for_cname_does_not_chase() {
        let r = resolver();
        let c = r.resolve(&dn("www.foo.com"), RecordType::Cname).unwrap();
        assert_eq!(c, vec![RData::Cname(dn("foo.com"))]);
    }

    #[test]
    fn missing_name_and_authority() {
        let r = resolver();
        assert!(matches!(
            r.resolve(&dn("nothere.foo.com"), RecordType::A),
            Err(ResolutionError::NoRecords(_))
        ));
        assert!(matches!(
            r.resolve(&dn("unknown.test"), RecordType::A),
            Err(ResolutionError::NoAuthority(_))
        ));
    }

    #[test]
    fn cname_loop_detected() {
        let mut r = Resolver::new();
        let mut z = Zone::new(dn("loop.com"));
        z.add_data(dn("a.loop.com"), RData::Cname(dn("b.loop.com")));
        z.add_data(dn("b.loop.com"), RData::Cname(dn("a.loop.com")));
        r.add_zone(z);
        assert!(matches!(
            r.resolve(&dn("a.loop.com"), RecordType::A),
            Err(ResolutionError::CnameLoop(_))
        ));
        // cname_chain terminates too.
        assert!(r.cname_chain(&dn("a.loop.com")).len() <= 9);
    }

    #[test]
    fn most_specific_zone_wins() {
        let mut r = resolver();
        let mut sub = Zone::new(dn("sub.foo.com"));
        sub.add_data(dn("sub.foo.com"), RData::A(Ipv4Addr::new(203, 0, 113, 1)));
        r.add_zone(sub);
        let a = r.resolve(&dn("sub.foo.com"), RecordType::A).unwrap();
        assert_eq!(a, vec![RData::A(Ipv4Addr::new(203, 0, 113, 1))]);
        assert_eq!(r.zone_count(), 3);
    }
}
