//! An authoritative DNS server loop: wire bytes in, wire bytes out.
//!
//! Ties the [`crate::resolver`] to the [`crate::wire`] format the way a
//! real nameserver process does, so scanners and ACME validators can
//! exercise the full query path instead of calling the resolver directly.

use crate::record::Record;
use crate::resolver::{ResolutionError, Resolver};
use crate::wire::{Message, Rcode, WireError};

/// Serve one query: decode, resolve, encode the response.
///
/// Malformed queries get a FORMERR response when the header was readable,
/// or an error when not even that much parsed (a real server would drop
/// the packet).
pub fn serve(resolver: &Resolver, query_bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    let query = match Message::decode(query_bytes) {
        Ok(q) => q,
        Err(e) => {
            // Try to salvage the transaction id for a FORMERR.
            if query_bytes.len() >= 2 {
                let id = u16::from_be_bytes([query_bytes[0], query_bytes[1]]);
                let mut stub = Message::query(
                    id,
                    stale_types::DomainName::parse("invalid.formerr").expect("literal"),
                    crate::record::RecordType::A,
                );
                stub.questions.clear();
                let resp = Message::response(&stub, vec![], Rcode::FormErr);
                return Ok(resp.encode());
            }
            return Err(e);
        }
    };
    let mut answers: Vec<Record> = Vec::new();
    let mut rcode = Rcode::NoError;
    for question in &query.questions {
        match resolver.resolve(&question.name, question.qtype) {
            Ok(data) => {
                answers.extend(
                    data.into_iter()
                        .map(|d| Record::new(question.name.clone(), d)),
                );
            }
            Err(ResolutionError::NoRecords(_)) => {
                // Name may exist with other types; empty NOERROR answer.
            }
            Err(ResolutionError::NoAuthority(_)) => rcode = Rcode::NxDomain,
            Err(ResolutionError::CnameLoop(_)) => rcode = Rcode::ServFail,
        }
    }
    Ok(Message::response(&query, answers, rcode).encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Ipv4Addr, RData, RecordType};
    use crate::zone::Zone;
    use stale_types::domain::dn;

    fn resolver() -> Resolver {
        let mut r = Resolver::new();
        let mut z = Zone::new(dn("foo.com"));
        z.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        z.add_data(dn("www.foo.com"), RData::Cname(dn("foo.com")));
        r.add_zone(z);
        r
    }

    #[test]
    fn answers_a_query_over_the_wire() {
        let r = resolver();
        let query = Message::query(7, dn("foo.com"), RecordType::A);
        let response_bytes = serve(&r, &query.encode()).unwrap();
        let response = Message::decode(&response_bytes).unwrap();
        assert_eq!(response.header.id, 7);
        assert!(response.header.response);
        assert_eq!(response.answers.len(), 1);
        assert_eq!(
            response.answers[0].data,
            RData::A(Ipv4Addr::new(192, 0, 2, 1))
        );
    }

    #[test]
    fn cname_chase_through_server() {
        let r = resolver();
        let query = Message::query(8, dn("www.foo.com"), RecordType::A);
        let response = Message::decode(&serve(&r, &query.encode()).unwrap()).unwrap();
        assert_eq!(response.answers.len(), 1);
    }

    #[test]
    fn nxdomain_for_foreign_names() {
        let r = resolver();
        let query = Message::query(9, dn("other.test"), RecordType::A);
        let response = Message::decode(&serve(&r, &query.encode()).unwrap()).unwrap();
        assert_eq!(response.header.rcode, Rcode::NxDomain);
        assert!(response.answers.is_empty());
    }

    #[test]
    fn empty_noerror_for_missing_type() {
        let r = resolver();
        let query = Message::query(10, dn("foo.com"), RecordType::Txt);
        let response = Message::decode(&serve(&r, &query.encode()).unwrap()).unwrap();
        assert_eq!(response.header.rcode, Rcode::NoError);
        assert!(response.answers.is_empty());
    }

    #[test]
    fn garbage_gets_formerr_with_preserved_id() {
        let r = resolver();
        let mut garbage = vec![0xAB, 0xCD];
        garbage.extend_from_slice(&[0xFF; 20]);
        let response_bytes = serve(&r, &garbage).unwrap();
        let response = Message::decode(&response_bytes).unwrap();
        assert_eq!(response.header.id, 0xABCD);
        assert_eq!(response.header.rcode, Rcode::FormErr);
        // Sub-2-byte input can't even be answered.
        assert!(serve(&r, &[0x01]).is_err());
    }
}
