//! Active DNS scanning: daily snapshots and interval-compressed history.
//!
//! The paper's aDNS dataset resolves every e2LD in the public zones once a
//! day and keeps A/AAAA, NS and CNAME records (§4.3, Table 3). At 300M
//! records/day, materialising each day is infeasible even for the real
//! study; our simulator's equivalent is [`DnsHistory`], a per-domain change
//! log from which any day's view is reconstructed in `O(log changes)`.
//! [`DailyScanner`] iterates a date range exactly the way the departure
//! detector consumes it: pairs of neighbouring days.

use crate::record::{Ipv4Addr, RData, RecordType};
use crate::resolver::Resolver;
use crate::wire::{Message, Rcode};
use serde::{Deserialize, Serialize};
use stale_types::{Date, DomainName};
use std::collections::{BTreeMap, BTreeSet};

/// One domain's resolved view on one day: the record sets the scanner
/// collects.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DnsView {
    /// Nameserver delegation.
    pub ns: BTreeSet<DomainName>,
    /// CNAME targets (of the apex and common web labels).
    pub cname: BTreeSet<DomainName>,
    /// IPv4 addresses.
    pub a: BTreeSet<Ipv4Addr>,
}

impl DnsView {
    /// A view with only NS records.
    pub fn with_ns(ns: impl IntoIterator<Item = DomainName>) -> Self {
        DnsView {
            ns: ns.into_iter().collect(),
            ..Default::default()
        }
    }

    /// A view with only CNAME records.
    pub fn with_cname(cname: impl IntoIterator<Item = DomainName>) -> Self {
        DnsView {
            cname: cname.into_iter().collect(),
            ..Default::default()
        }
    }

    /// Whether any NS or CNAME matches `predicate` — the shape of the
    /// Cloudflare-delegation test in §4.3.
    pub fn any_delegation(&self, mut predicate: impl FnMut(&DomainName) -> bool) -> bool {
        self.ns.iter().any(&mut predicate) || self.cname.iter().any(&mut predicate)
    }
}

/// Interval-compressed DNS history for a population of domains.
///
/// Internally a change log: `(date, view)` entries sorted by date, where an
/// entry means "from this date (inclusive) until the next entry, the domain
/// resolved to this view". A `None`-like removal is represented by an
/// explicit empty view.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsHistory {
    changes: BTreeMap<DomainName, Vec<(Date, DnsView)>>,
}

impl DnsHistory {
    /// Empty history.
    pub fn new() -> Self {
        DnsHistory::default()
    }

    /// Record that `domain` resolves to `view` from `date` onward.
    ///
    /// Changes must be appended in nondecreasing date order per domain; a
    /// same-day change replaces the earlier one (last write wins, like a
    /// scanner that only sees the end-of-day state).
    pub fn record_change(&mut self, domain: DomainName, date: Date, view: DnsView) {
        let log = self.changes.entry(domain).or_default();
        if let Some((last_date, last_view)) = log.last_mut() {
            assert!(*last_date <= date, "changes must be appended in date order");
            if *last_date == date {
                *last_view = view;
                return;
            }
            if *last_view == view {
                return; // no-op change; keep the log minimal
            }
        }
        log.push((date, view));
    }

    /// The view of `domain` on `date`, if the domain existed by then.
    pub fn view_at(&self, domain: &DomainName, date: Date) -> Option<&DnsView> {
        let log = self.changes.get(domain)?;
        let idx = log.partition_point(|(d, _)| *d <= date);
        if idx == 0 {
            None
        } else {
            Some(&log[idx - 1].1)
        }
    }

    /// All domains ever observed.
    pub fn domains(&self) -> impl Iterator<Item = &DomainName> {
        self.changes.keys()
    }

    /// Number of domains tracked.
    pub fn domain_count(&self) -> usize {
        self.changes.len()
    }

    /// Total change-log entries (the compressed size).
    pub fn change_count(&self) -> usize {
        self.changes.values().map(Vec::len).sum()
    }

    /// The raw change log for a domain.
    pub fn change_log(&self, domain: &DomainName) -> &[(Date, DnsView)] {
        self.changes.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Materialise the full snapshot of one day (used by the ablation
    /// bench to compare against interval queries; expensive by design).
    pub fn snapshot(&self, date: Date) -> DnsSnapshot {
        let mut views = BTreeMap::new();
        for domain in self.domains() {
            if let Some(view) = self.view_at(domain, date) {
                views.insert(domain.clone(), view.clone());
            }
        }
        DnsSnapshot { date, views }
    }

    /// Estimated record count on `date` (A + NS + CNAME across domains),
    /// the unit Table 3 reports dataset size in.
    pub fn record_count_at(&self, date: Date) -> usize {
        self.domains()
            .filter_map(|d| self.view_at(d, date))
            .map(|v| v.a.len() + v.ns.len() + v.cname.len())
            .sum()
    }
}

/// A fully materialised one-day scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsSnapshot {
    /// Scan day.
    pub date: Date,
    /// Per-domain views.
    pub views: BTreeMap<DomainName, DnsView>,
}

/// Iterates `(day, next_day)` pairs over a window, the exact access
/// pattern of the §4.3 departure detector ("compared each day's NS and
/// CNAME records with neighbouring days").
pub struct DailyScanner {
    current: Date,
    end: Date,
}

impl DailyScanner {
    /// Scan window `[start, end)`; yields pairs `(d, d+1)` with `d+1 < end`.
    pub fn new(start: Date, end: Date) -> Self {
        DailyScanner {
            current: start,
            end,
        }
    }
}

impl Iterator for DailyScanner {
    type Item = (Date, Date);

    fn next(&mut self) -> Option<(Date, Date)> {
        let next_day = self.current.succ();
        if next_day >= self.end {
            return None;
        }
        let pair = (self.current, next_day);
        self.current = next_day;
        Some(pair)
    }
}

/// Resolve one domain through the wire format against a [`Resolver`],
/// producing the scanner's view. This is the "speak real DNS" path used by
/// examples and integration tests; the bulk simulator writes
/// [`DnsHistory`] directly.
pub fn scan_domain(resolver: &Resolver, domain: &DomainName, txid: u16) -> DnsView {
    let mut view = DnsView::default();
    for (i, rtype) in [RecordType::Ns, RecordType::Cname, RecordType::A]
        .iter()
        .enumerate()
    {
        let query = Message::query(txid.wrapping_add(i as u16), domain.clone(), *rtype);
        // Round-trip through the wire format as a real scanner would.
        let query = Message::decode(&query.encode()).expect("self-encoded query");
        let q = &query.questions[0];
        let answers = match resolver.resolve(&q.name, q.qtype) {
            Ok(data) => data
                .into_iter()
                .map(|d| crate::record::Record::new(q.name.clone(), d))
                .collect(),
            Err(_) => Vec::new(),
        };
        let rcode = if answers.is_empty() {
            Rcode::NxDomain
        } else {
            Rcode::NoError
        };
        let response = Message::response(&query, answers, rcode);
        let response = Message::decode(&response.encode()).expect("self-encoded response");
        for rr in response.answers {
            match rr.data {
                RData::Ns(n) => {
                    view.ns.insert(n);
                }
                RData::Cname(c) => {
                    view.cname.insert(c);
                }
                RData::A(ip) => {
                    view.a.insert(ip);
                }
                _ => {}
            }
        }
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RData;
    use crate::zone::Zone;
    use stale_types::domain::dn;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn cf_view() -> DnsView {
        DnsView::with_ns([dn("anna.ns.cloudflare.com"), dn("bob.ns.cloudflare.com")])
    }

    fn self_view() -> DnsView {
        DnsView::with_ns([dn("ns1.selfhost.net"), dn("ns2.selfhost.net")])
    }

    #[test]
    fn view_at_between_changes() {
        let mut h = DnsHistory::new();
        h.record_change(dn("foo.com"), d("2022-08-01"), cf_view());
        h.record_change(dn("foo.com"), d("2022-09-15"), self_view());
        assert_eq!(h.view_at(&dn("foo.com"), d("2022-07-31")), None);
        assert_eq!(h.view_at(&dn("foo.com"), d("2022-08-01")), Some(&cf_view()));
        assert_eq!(h.view_at(&dn("foo.com"), d("2022-09-14")), Some(&cf_view()));
        assert_eq!(
            h.view_at(&dn("foo.com"), d("2022-09-15")),
            Some(&self_view())
        );
        assert_eq!(
            h.view_at(&dn("foo.com"), d("2023-01-01")),
            Some(&self_view())
        );
    }

    #[test]
    fn same_day_change_replaces() {
        let mut h = DnsHistory::new();
        h.record_change(dn("foo.com"), d("2022-08-01"), cf_view());
        h.record_change(dn("foo.com"), d("2022-08-01"), self_view());
        assert_eq!(
            h.view_at(&dn("foo.com"), d("2022-08-01")),
            Some(&self_view())
        );
        assert_eq!(h.change_count(), 1);
    }

    #[test]
    fn noop_changes_compress() {
        let mut h = DnsHistory::new();
        h.record_change(dn("foo.com"), d("2022-08-01"), cf_view());
        h.record_change(dn("foo.com"), d("2022-08-20"), cf_view());
        assert_eq!(h.change_count(), 1);
    }

    #[test]
    #[should_panic(expected = "date order")]
    fn out_of_order_changes_panic() {
        let mut h = DnsHistory::new();
        h.record_change(dn("foo.com"), d("2022-09-01"), cf_view());
        h.record_change(dn("foo.com"), d("2022-08-01"), self_view());
    }

    #[test]
    fn snapshot_materialises_day() {
        let mut h = DnsHistory::new();
        h.record_change(dn("a.com"), d("2022-08-01"), cf_view());
        h.record_change(dn("b.com"), d("2022-08-05"), self_view());
        let snap = h.snapshot(d("2022-08-03"));
        assert_eq!(snap.views.len(), 1);
        assert!(snap.views.contains_key(&dn("a.com")));
        let snap2 = h.snapshot(d("2022-08-05"));
        assert_eq!(snap2.views.len(), 2);
        assert_eq!(h.record_count_at(d("2022-08-05")), 4);
    }

    #[test]
    fn daily_scanner_pairs() {
        let pairs: Vec<_> = DailyScanner::new(d("2022-08-01"), d("2022-08-05")).collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (d("2022-08-01"), d("2022-08-02")));
        assert_eq!(pairs[2], (d("2022-08-03"), d("2022-08-04")));
        // Empty and single-day windows yield nothing.
        assert_eq!(
            DailyScanner::new(d("2022-08-01"), d("2022-08-01")).count(),
            0
        );
        assert_eq!(
            DailyScanner::new(d("2022-08-01"), d("2022-08-02")).count(),
            0
        );
    }

    #[test]
    fn any_delegation_checks_ns_and_cname() {
        let v = DnsView::with_cname([dn("foo.com.cdn.cloudflare.com")]);
        assert!(v.any_delegation(|n| n.as_str().ends_with("cloudflare.com")));
        assert!(!self_view().any_delegation(|n| n.as_str().ends_with("cloudflare.com")));
    }

    #[test]
    fn scan_domain_through_wire() {
        let mut resolver = Resolver::new();
        let mut z = Zone::new(dn("foo.com"));
        z.add_data(dn("foo.com"), RData::Ns(dn("anna.ns.cloudflare.com")));
        z.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(104, 16, 0, 1)));
        resolver.add_zone(z);
        let view = scan_domain(&resolver, &dn("foo.com"), 1);
        assert!(view.ns.contains(&dn("anna.ns.cloudflare.com")));
        assert!(view.a.contains(&Ipv4Addr::new(104, 16, 0, 1)));
        assert!(view.cname.is_empty());
    }
}
