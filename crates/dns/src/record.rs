//! DNS resource records.

use serde::{Deserialize, Serialize};
use stale_types::DomainName;
use std::fmt;

/// An IPv4 address. `std::net::Ipv4Addr` exists, but a local newtype keeps
/// serde, ordering and wire encoding in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Dotted-quad constructor.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr([a, b, c, d])
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Record time-to-live in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ttl(pub u32);

impl Ttl {
    /// A typical one-hour TTL.
    pub const HOUR: Ttl = Ttl(3600);
    /// A typical one-day TTL.
    pub const DAY: Ttl = Ttl(86400);
}

/// Record types the scanner collects (§4.3: A/AAAA, NS, CNAME) plus the
/// types certificate issuance touches (TXT for dns-01, SOA and CAA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// IPv6 address (stored as 16 bytes).
    Aaaa,
    /// Authoritative nameserver.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Free-form text (ACME dns-01 challenges live here).
    Txt,
    /// Start of authority.
    Soa,
    /// Certification authority authorization.
    Caa,
    /// TLSA certificate/key association (DANE, RFC 6698).
    Tlsa,
}

impl RecordType {
    /// RFC 1035/3596/6844 type codes, used by the wire format.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Tlsa => 52,
            RecordType::Caa => 257,
        }
    }

    /// Parse a type code.
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            52 => RecordType::Tlsa,
            257 => RecordType::Caa,
            _ => return None,
        })
    }
}

/// Record data.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RData {
    /// A record.
    A(Ipv4Addr),
    /// AAAA record.
    Aaaa([u8; 16]),
    /// NS record.
    Ns(DomainName),
    /// CNAME record.
    Cname(DomainName),
    /// TXT record.
    Txt(String),
    /// SOA record (primary NS and admin contact are what issuance checks).
    Soa {
        /// Primary nameserver.
        mname: DomainName,
        /// Administrative contact (encoded as a domain name per RFC 1035).
        rname: DomainName,
        /// Zone serial.
        serial: u32,
    },
    /// CAA record.
    Caa {
        /// Critical flag.
        critical: bool,
        /// Property tag, e.g. `issue`.
        tag: String,
        /// Property value, e.g. a CA domain.
        value: String,
    },
    /// TLSA record (RFC 6698): binds a TLS endpoint to certificate/key
    /// material directly in (ideally DNSSEC-signed) DNS. §7.2 of the
    /// paper: DANE aligns keys with the name's authoritative source and
    /// shrinks the authentication cache from months to the record's TTL.
    Tlsa {
        /// Certificate usage (3 = DANE-EE: match the end entity itself).
        usage: u8,
        /// Selector (1 = SubjectPublicKeyInfo).
        selector: u8,
        /// Matching type (1 = SHA-256).
        matching_type: u8,
        /// The association data, e.g. the SHA-256 of the public key.
        association: Vec<u8>,
    },
}

impl RData {
    /// The type of this data.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa { .. } => RecordType::Soa,
            RData::Caa { .. } => RecordType::Caa,
            RData::Tlsa { .. } => RecordType::Tlsa,
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Time to live.
    pub ttl: Ttl,
    /// Type-specific data.
    pub data: RData,
}

impl Record {
    /// Construct with a default one-hour TTL.
    pub fn new(name: DomainName, data: RData) -> Self {
        Record {
            name,
            ttl: Ttl::HOUR,
            data,
        }
    }

    /// The record type.
    pub fn record_type(&self) -> RecordType {
        self.data.record_type()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    #[test]
    fn type_codes_roundtrip() {
        for rt in [
            RecordType::A,
            RecordType::Aaaa,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Txt,
            RecordType::Soa,
            RecordType::Caa,
        ] {
            assert_eq!(RecordType::from_code(rt.code()), Some(rt));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn rdata_types() {
        assert_eq!(
            RData::A(Ipv4Addr::new(1, 2, 3, 4)).record_type(),
            RecordType::A
        );
        assert_eq!(RData::Ns(dn("ns1.foo.com")).record_type(), RecordType::Ns);
        assert_eq!(
            RData::Caa {
                critical: false,
                tag: "issue".into(),
                value: "letsencrypt.org".into()
            }
            .record_type(),
            RecordType::Caa
        );
    }

    #[test]
    fn ipv4_display() {
        assert_eq!(Ipv4Addr::new(192, 0, 2, 7).to_string(), "192.0.2.7");
    }
}
