//! Authoritative zone storage.
//!
//! A [`Zone`] holds the records below one apex. The simulator mutates
//! zones as registrants change hosting (the delegation changes that the
//! managed-TLS departure detector later observes).

use crate::record::{RData, Record, RecordType, Ttl};
use stale_types::DomainName;
use std::collections::BTreeMap;

/// One authoritative zone.
#[derive(Debug, Clone, Default)]
pub struct Zone {
    /// Apex name, e.g. `foo.com`.
    apex: Option<DomainName>,
    /// Owner name → records at that name.
    records: BTreeMap<DomainName, Vec<Record>>,
}

impl Zone {
    /// Create a zone rooted at `apex` with an SOA record.
    pub fn new(apex: DomainName) -> Self {
        let soa = Record::new(
            apex.clone(),
            RData::Soa {
                mname: apex.prepend("ns1").expect("apex accepts labels"),
                rname: apex.prepend("hostmaster").expect("apex accepts labels"),
                serial: 1,
            },
        );
        let mut records = BTreeMap::new();
        records.insert(apex.clone(), vec![soa]);
        Zone {
            apex: Some(apex),
            records,
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> Option<&DomainName> {
        self.apex.as_ref()
    }

    /// Whether `name` belongs to this zone.
    pub fn contains_name(&self, name: &DomainName) -> bool {
        match &self.apex {
            Some(apex) => name.is_subdomain_of(apex),
            None => true,
        }
    }

    /// Add a record; bumps the SOA serial.
    pub fn add(&mut self, record: Record) {
        debug_assert!(self.contains_name(&record.name), "record outside zone");
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
        self.bump_serial();
    }

    /// Add `data` at `name` with the default TTL.
    pub fn add_data(&mut self, name: DomainName, data: RData) {
        self.add(Record::new(name, data));
    }

    /// Remove all records of `rtype` at `name`. Returns how many were
    /// removed.
    pub fn remove(&mut self, name: &DomainName, rtype: RecordType) -> usize {
        let mut removed = 0;
        if let Some(list) = self.records.get_mut(name) {
            let before = list.len();
            list.retain(|r| r.record_type() != rtype);
            removed = before - list.len();
            if list.is_empty() {
                self.records.remove(name);
            }
        }
        if removed > 0 {
            self.bump_serial();
        }
        removed
    }

    /// Replace all records of `rtype` at `name` with `data`.
    pub fn replace(&mut self, name: &DomainName, rtype: RecordType, data: Vec<RData>) {
        self.remove(name, rtype);
        for d in data {
            debug_assert_eq!(d.record_type(), rtype, "replace data of wrong type");
            self.add(Record {
                name: name.clone(),
                ttl: Ttl::HOUR,
                data: d,
            });
        }
    }

    /// Records of `rtype` at exactly `name`.
    pub fn lookup(&self, name: &DomainName, rtype: RecordType) -> Vec<&Record> {
        self.records
            .get(name)
            .map(|list| list.iter().filter(|r| r.record_type() == rtype).collect())
            .unwrap_or_default()
    }

    /// All records at `name`.
    pub fn lookup_all(&self, name: &DomainName) -> &[Record] {
        self.records.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate all records in the zone.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.values().flatten()
    }

    /// Owner names present in the zone.
    pub fn names(&self) -> impl Iterator<Item = &DomainName> {
        self.records.keys()
    }

    /// Current SOA serial, if the apex has an SOA.
    pub fn soa_serial(&self) -> Option<u32> {
        let apex = self.apex.as_ref()?;
        self.lookup(apex, RecordType::Soa)
            .first()
            .and_then(|r| match &r.data {
                RData::Soa { serial, .. } => Some(*serial),
                _ => None,
            })
    }

    fn bump_serial(&mut self) {
        if let Some(apex) = self.apex.clone() {
            if let Some(list) = self.records.get_mut(&apex) {
                for r in list {
                    if let RData::Soa { serial, .. } = &mut r.data {
                        *serial = serial.wrapping_add(1);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Ipv4Addr;
    use stale_types::domain::dn;

    fn zone() -> Zone {
        let mut z = Zone::new(dn("foo.com"));
        z.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 1)));
        z.add_data(dn("www.foo.com"), RData::Cname(dn("foo.com")));
        z.add_data(dn("foo.com"), RData::Ns(dn("ns1.foo.com")));
        z.add_data(dn("foo.com"), RData::Ns(dn("ns2.foo.com")));
        z
    }

    #[test]
    fn lookup_by_type() {
        let z = zone();
        assert_eq!(z.lookup(&dn("foo.com"), RecordType::Ns).len(), 2);
        assert_eq!(z.lookup(&dn("foo.com"), RecordType::A).len(), 1);
        assert_eq!(z.lookup(&dn("www.foo.com"), RecordType::Cname).len(), 1);
        assert!(z.lookup(&dn("nope.foo.com"), RecordType::A).is_empty());
    }

    #[test]
    fn soa_serial_bumps_on_mutation() {
        let mut z = zone();
        let s0 = z.soa_serial().unwrap();
        z.add_data(dn("api.foo.com"), RData::A(Ipv4Addr::new(192, 0, 2, 9)));
        assert!(z.soa_serial().unwrap() > s0);
    }

    #[test]
    fn remove_and_replace() {
        let mut z = zone();
        assert_eq!(z.remove(&dn("foo.com"), RecordType::Ns), 2);
        assert!(z.lookup(&dn("foo.com"), RecordType::Ns).is_empty());
        // Removing again is a no-op.
        assert_eq!(z.remove(&dn("foo.com"), RecordType::Ns), 0);
        z.replace(
            &dn("foo.com"),
            RecordType::Ns,
            vec![
                RData::Ns(dn("anna.ns.cloudflare.com")),
                RData::Ns(dn("bob.ns.cloudflare.com")),
            ],
        );
        assert_eq!(z.lookup(&dn("foo.com"), RecordType::Ns).len(), 2);
    }

    #[test]
    fn zone_membership() {
        let z = zone();
        assert!(z.contains_name(&dn("deep.sub.foo.com")));
        assert!(!z.contains_name(&dn("bar.com")));
    }

    #[test]
    fn iter_counts_all() {
        let z = zone();
        // SOA + A + CNAME + 2×NS = 5.
        assert_eq!(z.iter().count(), 5);
        assert!(z.names().any(|n| n == &dn("www.foo.com")));
    }
}
