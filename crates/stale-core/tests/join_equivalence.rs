//! Sort-merge vs hash CRL×CT join: byte-equivalence on adversarial
//! inputs.
//!
//! The production join ([`key_compromise::join_shard_audited_with`]) is a
//! sort-merge over the shard's certificate keys and a shared pre-sorted
//! CRL key index; [`key_compromise::join_shard_audited_hash`] is the old
//! hash join, kept only as the equivalence oracle. Both must emit the
//! same matches (CRL-index order), the same audit losers (`(key,
//! cert_id)` order), and the same `detector.kc.*` counters — including on
//! the shapes that historically distinguish merge joins from hash joins:
//! duplicate keys on either side, empty inputs, all-match / none-match
//! extremes, and revocation dates interleaved across key groups.

use ca::scraper::{CrlDataset, RevocationRecord};
use crypto::KeyPair;
use ct::monitor::CtMonitor;
use obs::Registry;
use proptest::prelude::*;
use stale_core::detector::key_compromise::{
    join_shard_audited_hash, join_shard_audited_with, CrlKeyIndex,
};
use stale_types::{Date, Duration, KeyId, SerialNumber};
use x509::revocation::RevocationReason;

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

fn ca_key(seed: u8) -> KeyPair {
    KeyPair::from_seed([seed; 32])
}

/// A leaf with a chosen serial and issuer (the issuer seed selects the
/// AKI, so two seeds give two distinct join keys for the same serial).
fn cert(serial: u128, issuer_seed: u8, nb: &str, days: i64) -> x509::Certificate {
    x509::CertificateBuilder::tls_leaf(KeyPair::from_seed([200; 32]).public())
        .serial(serial)
        .issuer_cn("Join CA")
        .subject_cn("adversarial.example")
        .san(stale_types::domain::dn("adversarial.example"))
        .validity_days(d(nb), Duration::days(days))
        .sign(&ca_key(issuer_seed))
}

fn rev(serial: u128, issuer_seed: u8, date: &str, reason: RevocationReason) -> RevocationRecord {
    RevocationRecord {
        authority_key_id: KeyId::from_bytes(ca_key(issuer_seed).public().key_id()),
        serial: SerialNumber(serial),
        revocation_date: d(date),
        reason,
        observed: d("2022-11-01"),
    }
}

/// Run both joins over the same shard and assert byte-identical output
/// and identical counters.
fn assert_joins_agree(certs: Vec<x509::Certificate>, revs: Vec<RevocationRecord>, cutoff: &str) {
    let mut monitor = CtMonitor::new();
    for c in certs {
        let date = c.tbs.not_before();
        monitor.ingest(c, date);
    }
    let mut crl = CrlDataset::new();
    for r in revs {
        crl.add(r);
    }
    let cutoff = d(cutoff);

    let merge_sink = Registry::new();
    let merge = join_shard_audited_with(
        monitor.corpus_unfiltered(),
        &crl,
        &CrlKeyIndex::build(&crl),
        cutoff,
        &merge_sink,
    );
    let hash_sink = Registry::new();
    let hash = join_shard_audited_hash(monitor.corpus_unfiltered(), &crl, cutoff, &hash_sink);

    let merge_bytes = serde_json::to_string(&merge).expect("join output serialises");
    let hash_bytes = serde_json::to_string(&hash).expect("join output serialises");
    assert_eq!(
        merge_bytes, hash_bytes,
        "sort-merge and hash joins diverged"
    );
    assert_eq!(
        merge_sink.snapshot().counters,
        hash_sink.snapshot().counters,
        "detector.kc.* counters diverged"
    );
}

#[test]
fn duplicate_serials_share_one_winner() {
    // Four certs colliding on (AKI, serial): last-ingested wins, the
    // other three become audit losers — in both joins, in the same order.
    assert_joins_agree(
        vec![
            cert(7, 1, "2022-01-01", 398),
            cert(7, 1, "2022-02-01", 398),
            cert(7, 1, "2022-03-01", 398),
            cert(7, 1, "2022-04-01", 398),
            // Same serial under a different issuer: a separate key group.
            cert(7, 2, "2022-02-15", 398),
        ],
        vec![
            rev(7, 1, "2022-06-01", RevocationReason::KeyCompromise),
            rev(7, 2, "2022-06-02", RevocationReason::Superseded),
        ],
        "2022-11-01",
    );
}

#[test]
fn empty_crl_yields_no_matches_and_no_losers() {
    assert_joins_agree(
        vec![cert(1, 1, "2022-01-01", 398), cert(1, 1, "2022-02-01", 398)],
        vec![],
        "2022-11-01",
    );
}

#[test]
fn empty_shard_yields_nothing() {
    assert_joins_agree(
        vec![],
        vec![rev(1, 1, "2022-06-01", RevocationReason::KeyCompromise)],
        "2022-11-01",
    );
}

#[test]
fn all_match_every_cert_revoked() {
    assert_joins_agree(
        (1..=8).map(|s| cert(s, 1, "2022-01-01", 398)).collect(),
        (1..=8)
            .map(|s| rev(s, 1, "2022-05-01", RevocationReason::KeyCompromise))
            .collect(),
        "2022-11-01",
    );
}

#[test]
fn none_match_disjoint_serials() {
    assert_joins_agree(
        (1..=8).map(|s| cert(s, 1, "2022-01-01", 398)).collect(),
        (101..=108)
            .map(|s| rev(s, 1, "2022-05-01", RevocationReason::KeyCompromise))
            .collect(),
        "2022-11-01",
    );
}

#[test]
fn interleaved_revocation_dates_across_key_groups() {
    // CRL records arrive date-interleaved across serials (so CRL-index
    // order disagrees with key order), with duplicate CRL entries for one
    // key at different dates. Matches must still come back in CRL-index
    // order from both joins.
    assert_joins_agree(
        vec![
            cert(3, 1, "2022-01-01", 398),
            cert(1, 1, "2022-01-05", 200),
            cert(2, 1, "2022-01-10", 90),
        ],
        vec![
            rev(2, 1, "2022-03-01", RevocationReason::KeyCompromise),
            rev(3, 1, "2022-02-01", RevocationReason::Superseded),
            rev(1, 1, "2022-04-01", RevocationReason::KeyCompromise),
            rev(3, 1, "2022-05-01", RevocationReason::KeyCompromise),
            rev(2, 1, "2022-01-15", RevocationReason::CessationOfOperation),
        ],
        "2022-11-01",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random serial multisets on both sides (heavy overlap and heavy
    /// duplication by construction): the joins agree byte-for-byte.
    #[test]
    fn joins_agree_on_random_serial_multisets(
        cert_serials in prop::collection::vec(1u64..12, 0..24),
        rev_serials in prop::collection::vec(1u64..12, 0..24),
    ) {
        let certs = cert_serials
            .iter()
            .enumerate()
            .map(|(i, &s)| cert(s as u128, 1 + (i % 2) as u8, "2022-01-01", 30 + i as i64))
            .collect();
        let revs = rev_serials
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let reason = if i % 2 == 0 {
                    RevocationReason::KeyCompromise
                } else {
                    RevocationReason::Superseded
                };
                rev(s as u128, 1 + (i % 3 % 2) as u8, "2022-06-01", reason)
            })
            .collect();
        assert_joins_agree(certs, revs, "2022-11-01");
    }
}
