//! Survival analysis: how quickly certificates become stale (Figure 8).
//!
//! For each stale certificate, the event time is the number of days from
//! issuance to its invalidation event. The survival function `S(t)` is the
//! proportion of certificates *not yet stale* `t` days after issuance.
//! Under a hypothetical maximum lifetime of `n` days, certificates whose
//! invalidation arrives after day `n` would have expired first — so
//! `1 − S(n)`… inverted: `S(n)` estimates the share of stale certificates
//! a cap of `n` days eliminates (the paper's "up to 56% reduction for
//! domain registrant change at 90 days").

use crate::staleness::StaleCertRecord;
use crate::stats::Cdf;

/// An empirical survival curve over days-to-invalidation.
#[derive(Debug, Clone)]
pub struct SurvivalCurve {
    cdf: Cdf,
}

impl SurvivalCurve {
    /// Build from stale certificate records.
    pub fn from_records<'a>(records: impl IntoIterator<Item = &'a StaleCertRecord>) -> Self {
        let samples: Vec<i64> = records
            .into_iter()
            .map(|r| r.days_to_invalidation().num_days().max(0))
            .collect();
        SurvivalCurve {
            cdf: Cdf::new(samples),
        }
    }

    /// Build from raw day counts.
    pub fn from_days(days: Vec<i64>) -> Self {
        SurvivalCurve {
            cdf: Cdf::new(days),
        }
    }

    /// `S(t) = P(T > t)`: proportion not yet stale after `t` days.
    pub fn survival_at(&self, t: i64) -> f64 {
        1.0 - self.cdf.proportion_at(t)
    }

    /// The share of stale certificates a max lifetime of `n` days would
    /// eliminate (upper bound: assumes no renewal of the capped certs,
    /// exactly the paper's caveat).
    pub fn elimination_at_cap(&self, n: i64) -> f64 {
        self.survival_at(n)
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// `(t, S(t))` plot points.
    pub fn points(&self) -> Vec<(i64, f64)> {
        self.cdf
            .points()
            .into_iter()
            .map(|(t, p)| (t, 1.0 - p))
            .collect()
    }

    /// Median days to invalidation.
    pub fn median_days(&self) -> Option<i64> {
        self.cdf.median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_from_days() {
        // Half the events within 90 days, half after.
        let s = SurvivalCurve::from_days(vec![10, 50, 80, 100, 200, 400]);
        assert!((s.survival_at(90) - 0.5).abs() < 1e-9);
        assert_eq!(s.survival_at(0), 1.0);
        assert_eq!(s.survival_at(400), 0.0);
        assert_eq!(s.elimination_at_cap(90), s.survival_at(90));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn survival_is_monotone_nonincreasing() {
        let s = SurvivalCurve::from_days(vec![5, 17, 17, 80, 300, 700]);
        let mut last = 1.0;
        for t in 0..800 {
            let v = s.survival_at(t);
            assert!(v <= last + 1e-12, "t={t}");
            last = v;
        }
    }

    #[test]
    fn points_match_survival() {
        let s = SurvivalCurve::from_days(vec![10, 20, 30]);
        let pts = s.points();
        assert_eq!(pts.len(), 3);
        for (t, v) in pts {
            assert!((s.survival_at(t) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_curve() {
        let s = SurvivalCurve::from_days(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.survival_at(10), 1.0);
        assert_eq!(s.median_days(), None);
    }

    #[test]
    fn from_records_clamps_negative() {
        use crate::staleness::{StaleCertRecord, StalenessClass};
        use stale_types::{domain::dn, CertId, Date, DateInterval};
        // Invalidation before issuance (possible for registrant change
        // detected against a cert issued later by the *old* owner's CDN):
        // clamp to 0.
        let r = StaleCertRecord {
            cert_id: CertId::from_bytes([0; 32]),
            class: StalenessClass::RegistrantChange,
            domain: dn("foo.com"),
            fqdns: vec![dn("foo.com")],
            issuer: "CA".into(),
            invalidation: Date::parse("2021-01-01").unwrap(),
            validity: DateInterval::new(
                Date::parse("2021-02-01").unwrap(),
                Date::parse("2021-06-01").unwrap(),
            )
            .unwrap(),
        };
        let s = SurvivalCurve::from_records([&r]);
        assert_eq!(s.median_days(), Some(0));
    }
}
