//! Stale certificate records and staleness metrics.
//!
//! A certificate's *staleness period* runs from its invalidation event to
//! its `notAfter` date (§5.4): the window during which a third party holds
//! a valid key it should not have. *Staleness-days* sum those windows —
//! the quantity §6's lifetime-reduction experiment minimises.

use psl::SuffixList;
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, DomainName, Duration};
use std::collections::BTreeSet;

/// Which third-party scenario produced a stale certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StalenessClass {
    /// §5.1 key compromise.
    KeyCompromise,
    /// §5.2 domain registrant change.
    RegistrantChange,
    /// §5.3 managed TLS departure.
    ManagedTlsDeparture,
}

impl StalenessClass {
    /// Human-readable label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            StalenessClass::KeyCompromise => "Key compromise",
            StalenessClass::RegistrantChange => "Domain registrant change",
            StalenessClass::ManagedTlsDeparture => "Managed TLS departure",
        }
    }
}

/// One detected third-party stale certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaleCertRecord {
    /// CT dedup identity.
    pub cert_id: CertId,
    /// Scenario.
    pub class: StalenessClass,
    /// The domain whose control changed (registrant change / departure),
    /// or the certificate's primary name (key compromise).
    pub domain: DomainName,
    /// All DNS names on the certificate relevant to the event.
    pub fqdns: Vec<DomainName>,
    /// Issuer common name.
    pub issuer: String,
    /// Day the invalidation event occurred.
    pub invalidation: Date,
    /// The certificate's validity window.
    pub validity: DateInterval,
}

impl StaleCertRecord {
    /// The staleness window: `[max(invalidation, notBefore), notAfter)`.
    pub fn staleness_window(&self) -> DateInterval {
        self.validity.suffix_from(self.invalidation)
    }

    /// Staleness period length in days.
    pub fn staleness_days(&self) -> Duration {
        self.staleness_window().len()
    }

    /// Days from issuance to the invalidation event (the survival-analysis
    /// variable of Figure 8).
    pub fn days_to_invalidation(&self) -> Duration {
        self.invalidation - self.validity.start
    }

    /// Certificate lifetime.
    pub fn lifetime(&self) -> Duration {
        self.validity.len()
    }

    /// Effective 2LDs of the relevant FQDNs.
    pub fn e2lds(&self, psl: &SuffixList) -> BTreeSet<DomainName> {
        self.fqdns
            .iter()
            .filter_map(|f| psl.e2ld_of_san(f).ok())
            .collect()
    }
}

/// Aggregate statistics for one staleness class over a window (a Table 4
/// row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalenessSummary {
    /// Class label.
    pub label: String,
    /// Window the records fall in.
    pub window: DateInterval,
    /// Total stale certificates.
    pub certs: usize,
    /// Unique stale FQDNs.
    pub fqdns: usize,
    /// Unique stale e2LDs.
    pub e2lds: usize,
    /// Average new stale certificates per day.
    pub daily_certs: f64,
    /// Average new stale FQDNs per day.
    pub daily_fqdns: f64,
    /// Average new stale e2LDs per day.
    pub daily_e2lds: f64,
}

impl StalenessSummary {
    /// Summarise `records` (all of one class) over `window`.
    ///
    /// FQDN/e2LD uniqueness is across the whole window, daily rates divide
    /// totals by window length — matching Table 4's "average daily rates
    /// of *new* stale certificates, domains, and e2LDs".
    pub fn compute(
        label: impl Into<String>,
        records: &[&StaleCertRecord],
        window: DateInterval,
        psl: &SuffixList,
    ) -> StalenessSummary {
        let mut fqdns: BTreeSet<&DomainName> = BTreeSet::new();
        let mut e2lds: BTreeSet<DomainName> = BTreeSet::new();
        for r in records {
            for f in &r.fqdns {
                fqdns.insert(f);
                if let Ok(e) = psl.e2ld_of_san(f) {
                    e2lds.insert(e);
                }
            }
        }
        let days = window.len().num_days().max(1) as f64;
        StalenessSummary {
            label: label.into(),
            window,
            certs: records.len(),
            fqdns: fqdns.len(),
            e2lds: e2lds.len(),
            daily_certs: records.len() as f64 / days,
            daily_fqdns: fqdns.len() as f64 / days,
            daily_e2lds: e2lds.len() as f64 / days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    fn record(inv: &str, nb: &str, na: &str) -> StaleCertRecord {
        StaleCertRecord {
            cert_id: CertId::from_bytes([1; 32]),
            class: StalenessClass::RegistrantChange,
            domain: dn("foo.com"),
            fqdns: vec![dn("foo.com"), dn("www.foo.com")],
            issuer: "Test CA".into(),
            invalidation: Date::parse(inv).unwrap(),
            validity: DateInterval::new(Date::parse(nb).unwrap(), Date::parse(na).unwrap())
                .unwrap(),
        }
    }

    #[test]
    fn staleness_window_clamps() {
        let r = record("2022-06-01", "2022-01-01", "2022-12-01");
        assert_eq!(r.staleness_days(), Duration::days(183));
        assert_eq!(r.days_to_invalidation(), Duration::days(151));
        // Invalidation before issuance: whole lifetime is stale.
        let early = record("2021-06-01", "2022-01-01", "2022-12-01");
        assert_eq!(early.staleness_days(), early.lifetime());
        // Invalidation after expiry: zero staleness.
        let late = record("2023-06-01", "2022-01-01", "2022-12-01");
        assert_eq!(late.staleness_days(), Duration::days(0));
    }

    #[test]
    fn summary_counts_unique_names() {
        let psl = SuffixList::default_list();
        let a = record("2022-06-01", "2022-01-01", "2022-12-01");
        let mut b = record("2022-07-01", "2022-02-01", "2023-01-01");
        b.fqdns = vec![dn("foo.com"), dn("api.foo.com")];
        let window = DateInterval::new(
            Date::parse("2022-01-01").unwrap(),
            Date::parse("2023-01-01").unwrap(),
        )
        .unwrap();
        let refs: Vec<&StaleCertRecord> = vec![&a, &b];
        let s = StalenessSummary::compute("Registrant change", &refs, window, &psl);
        assert_eq!(s.certs, 2);
        assert_eq!(s.fqdns, 3); // foo, www.foo, api.foo
        assert_eq!(s.e2lds, 1); // all foo.com
        assert!((s.daily_certs - 2.0 / 365.0).abs() < 1e-9);
    }

    #[test]
    fn e2lds_strip_wildcards() {
        let psl = SuffixList::default_list();
        let mut r = record("2022-06-01", "2022-01-01", "2022-12-01");
        r.fqdns = vec![dn("*.foo.com"), dn("bar.co.uk")];
        let e2lds = r.e2lds(&psl);
        assert!(e2lds.contains(&dn("foo.com")));
        assert!(e2lds.contains(&dn("bar.co.uk")));
    }

    #[test]
    fn class_labels() {
        assert_eq!(StalenessClass::KeyCompromise.label(), "Key compromise");
        assert_eq!(
            StalenessClass::ManagedTlsDeparture.label(),
            "Managed TLS departure"
        );
    }
}
