//! §4.3: managed TLS departure via daily DNS diffing.
//!
//! Only Cloudflare's managed certificates are identifiable in CT: they
//! carry a `sni….cloudflaressl.com` marker SAN alongside the customer
//! domains. For every domain on such a certificate, the detector walks the
//! daily DNS scans of the measurement window and flags a departure when a
//! Cloudflare nameserver or CNAME is present one day and absent the next.
//! Every unexpired provider-managed certificate naming the domain at that
//! point is stale: the CDN still holds its key.

// Slice indexing here runs over routed-feed indices.
// stale-lint: scope(panic-index)

use crate::staleness::{StaleCertRecord, StalenessClass};
use cdn::provider::ProviderConfig;
use ct::monitor::{CtMonitor, DedupedCert};
use dns::scan::{DailyScanner, DnsHistory};
use psl::SuffixList;
use stale_types::{Date, DateInterval, DomainName};
use std::collections::BTreeMap;

/// The managed-TLS departure detector.
pub struct ManagedTlsDetector<'a> {
    config: &'a ProviderConfig,
    psl: &'a SuffixList,
    /// The marker base, parsed once at construction (the marker test runs
    /// per SAN per certificate on the hot path).
    marker: Option<DomainName>,
}

impl<'a> ManagedTlsDetector<'a> {
    /// Build for one provider's delegation/marker configuration.
    pub fn new(config: &'a ProviderConfig, psl: &'a SuffixList) -> Self {
        let marker = config
            .marker_base
            .as_deref()
            .and_then(|b| DomainName::parse(b).ok());
        ManagedTlsDetector {
            config,
            psl,
            marker,
        }
    }

    /// Whether `san` is the provider's marker name (e.g.
    /// `sni12345.cloudflaressl.com`).
    pub fn is_marker_san(&self, san: &DomainName) -> bool {
        let Some(base) = &self.marker else {
            return false;
        };
        san.is_subdomain_of(base)
            && san != base
            && san.labels().next().is_some_and(|l| l.starts_with("sni"))
    }

    /// Whether a certificate is provider-managed (carries the marker).
    pub fn is_managed_cert(&self, cert: &DedupedCert) -> bool {
        cert.certificate
            .tbs
            .san()
            .iter()
            .any(|s| self.is_marker_san(s))
    }

    /// Customer domains on a managed certificate (everything except the
    /// marker).
    pub fn customer_domains<'c>(&self, cert: &'c DedupedCert) -> Vec<&'c DomainName> {
        cert.certificate
            .tbs
            .san()
            .iter()
            .filter(|s| !self.is_marker_san(s))
            .collect()
    }

    /// Detect departures over `window` and return the stale certificates.
    /// This is the single-shard composition of [`Self::detect_shard`] and
    /// [`merge_shards`].
    pub fn detect(
        &self,
        adns: &DnsHistory,
        monitor: &CtMonitor,
        window: DateInterval,
    ) -> Vec<StaleCertRecord> {
        merge_shards(vec![self.detect_shard(
            adns,
            monitor.corpus_unfiltered(),
            window,
            |_| true,
        )])
    }

    /// Shard-local detection over a subset of the corpus. `owned` decides
    /// which customer domains this shard is responsible for: the
    /// partitioner duplicates a managed certificate into every shard that
    /// owns one of its customer domains, and the predicate stops the
    /// duplicates from double-reporting — each `(customer, departures)`
    /// group is evaluated by exactly one shard.
    pub fn detect_shard<'m>(
        &self,
        adns: &DnsHistory,
        certs: impl IntoIterator<Item = &'m DedupedCert>,
        window: DateInterval,
        owned: impl Fn(&DomainName) -> bool,
    ) -> Vec<StaleCertRecord> {
        self.detect_shard_observed(adns, certs, window, owned, &obs::NullSink)
    }

    /// [`Self::detect_shard`] reporting item counts (`detector.mtd.*`)
    /// through a write-only [`obs::CounterSink`]; the sink has no read
    /// surface, so detection cannot depend on what was recorded.
    pub fn detect_shard_observed<'m>(
        &self,
        adns: &DnsHistory,
        certs: impl IntoIterator<Item = &'m DedupedCert>,
        window: DateInterval,
        owned: impl Fn(&DomainName) -> bool,
        sink: &dyn obs::CounterSink,
    ) -> Vec<StaleCertRecord> {
        self.detect_shard_audited(adns, certs, window, owned, sink, &obs::NullDecisionSink)
    }

    /// [`Self::detect_shard_observed`] also reporting audit decisions
    /// through a write-only [`obs::DecisionSink`]: one per
    /// `(customer, departure, certificate)` triple — kept or dropped
    /// `outside-validity-window` — and, for customers whose delegation
    /// never departed, one `delegation-still-present` drop per
    /// certificate. Wildcard SANs are not candidates: they carry no DNS
    /// signal of their own and are excluded before sharding, so the
    /// candidate universe stays shard-count-invariant.
    pub fn detect_shard_audited<'m>(
        &self,
        adns: &DnsHistory,
        certs: impl IntoIterator<Item = &'m DedupedCert>,
        window: DateInterval,
        owned: impl Fn(&DomainName) -> bool,
        sink: &dyn obs::CounterSink,
        audit: &dyn obs::DecisionSink,
    ) -> Vec<StaleCertRecord> {
        // Customer domain → managed certificates naming it, in sorted
        // customer order so shard output is independent of input order.
        let mut by_customer: BTreeMap<&DomainName, Vec<&DedupedCert>> = BTreeMap::new();
        for cert in certs {
            if !self.is_managed_cert(cert) {
                continue;
            }
            for domain in self.customer_domains(cert) {
                // Wildcard SANs cannot be scanned in DNS; their apex SAN
                // carries the delegation signal.
                if domain.is_wildcard() {
                    continue;
                }
                if !owned(domain) {
                    continue;
                }
                by_customer.entry(domain).or_default().push(cert);
            }
        }
        self.evaluate_customers(adns, by_customer, window, sink, audit)
    }

    /// [`Self::detect_shard_audited`] over a pre-routed zero-copy view:
    /// each item is a managed certificate with its non-wildcard customer
    /// SANs and their precomputed routing hashes (see
    /// [`crate::views::RoutedWorld`]). `owned` tests a routing hash
    /// instead of re-deriving the e2LD per customer; the candidate
    /// universe and output are identical to the owned-slice path.
    // stale-lint: entry(shard)
    pub fn detect_shard_view_audited<'m: 'v, 'v>(
        &self,
        adns: &DnsHistory,
        certs: impl IntoIterator<Item = (&'m DedupedCert, &'v [(&'m DomainName, u64)])>,
        window: DateInterval,
        owned: impl Fn(u64) -> bool,
        sink: &dyn obs::CounterSink,
        audit: &dyn obs::DecisionSink,
    ) -> Vec<StaleCertRecord> {
        let mut by_customer: BTreeMap<&DomainName, Vec<&DedupedCert>> = BTreeMap::new();
        for (cert, customers) in certs {
            for &(domain, hash) in customers {
                if !owned(hash) {
                    continue;
                }
                by_customer.entry(domain).or_default().push(cert);
            }
        }
        self.evaluate_customers(adns, by_customer, window, sink, audit)
    }

    /// The shared evaluation tail of both shard paths: sort each
    /// customer's certificates, walk customers in order, emit decisions
    /// and stale records.
    fn evaluate_customers<'m>(
        &self,
        adns: &DnsHistory,
        mut by_customer: BTreeMap<&'m DomainName, Vec<&'m DedupedCert>>,
        window: DateInterval,
        sink: &dyn obs::CounterSink,
        audit: &dyn obs::DecisionSink,
    ) -> Vec<StaleCertRecord> {
        for certs in by_customer.values_mut() {
            certs.sort_by_key(|c| c.cert_id);
        }
        sink.add("detector.mtd.customers", by_customer.len() as u64);
        sink.add(
            "detector.mtd.cert_refs",
            by_customer.values().map(|v| v.len() as u64).sum(),
        );
        let mut records = Vec::new();
        for (domain, certs) in &by_customer {
            let departures = self.departures_for(adns, domain, window);
            if departures.is_empty() {
                for cert in certs {
                    audit.decision(still_present_decision(domain, cert));
                }
                continue;
            }
            for departure in departures {
                for cert in certs {
                    audit.decision(departure_decision(domain, departure, cert));
                    if let Some(record) = self.stale_record(domain, departure, cert) {
                        records.push(record);
                    }
                }
            }
        }
        sink.add("detector.mtd.records", records.len() as u64);
        records
    }

    /// The §4.3 test for one `(customer, departure, certificate)` triple:
    /// if the certificate was still valid at the departure, build its
    /// stale record. Shared by the batch and incremental paths.
    pub fn stale_record(
        &self,
        domain: &DomainName,
        departure: Date,
        cert: &DedupedCert,
    ) -> Option<StaleCertRecord> {
        let tbs = &cert.certificate.tbs;
        if !tbs.validity.contains(departure) {
            return None;
        }
        Some(StaleCertRecord {
            cert_id: cert.cert_id,
            class: StalenessClass::ManagedTlsDeparture,
            domain: domain.clone(),
            fqdns: tbs
                .san()
                .iter()
                .filter(|s| {
                    self.psl
                        .e2ld_of_san(s)
                        .ok()
                        .and_then(|e| self.psl.e2ld_of_san(domain).ok().map(|d| e == d))
                        .unwrap_or(false)
                })
                .cloned()
                .collect(),
            issuer: tbs.issuer.common_name.clone(),
            invalidation: departure,
            validity: tbs.validity,
        })
    }

    /// Whether a DNS view shows delegation to this provider.
    pub fn is_delegated(&self, view: &dns::scan::DnsView) -> bool {
        view.any_delegation(|n| self.config.is_delegation_target(n))
    }

    /// Days in `window` on which `domain` departed the provider: provider
    /// delegation present on day `d`, absent on day `d+1` (§4.3's
    /// neighbouring-day comparison).
    pub fn departures_for(
        &self,
        adns: &DnsHistory,
        domain: &DomainName,
        window: DateInterval,
    ) -> Vec<Date> {
        let mut departures = Vec::new();
        for (day, next_day) in DailyScanner::new(window.start, window.end) {
            let on_before = adns
                .view_at(domain, day)
                .is_some_and(|v| self.is_delegated(v));
            if !on_before {
                continue;
            }
            let on_after = adns
                .view_at(domain, next_day)
                .is_some_and(|v| self.is_delegated(v));
            if !on_after {
                departures.push(next_day);
            }
        }
        departures
    }
}

/// The audit decision for one `(customer, departure, certificate)`
/// candidate triple. Both the batch shard loop and the incremental
/// finish-time derivation build decisions through this single function,
/// so the two paths cannot disagree. The departure day is the first day
/// the delegation was gone; the day before is the last it was observed
/// (§4.3's neighbouring-day comparison).
pub fn departure_decision(
    domain: &DomainName,
    departure: Date,
    cert: &DedupedCert,
) -> obs::audit::Decision {
    use obs::audit::{Decision, Detector, DropReason, Verdict};
    Decision {
        detector: Detector::Mtd,
        cert: cert.cert_id.to_string(),
        verdict: if cert.certificate.tbs.validity.contains(departure) {
            Verdict::Kept
        } else {
            Verdict::Dropped(DropReason::OutsideValidityWindow)
        },
        provenance: departure_provenance(domain, departure),
    }
}

/// The audit provenance of one departure: the §4.3 neighbouring-day pair
/// (last day delegated, first day gone). Shared by the batch decision
/// builder and the incremental event stream.
pub fn departure_provenance(domain: &DomainName, departure: Date) -> obs::audit::Provenance {
    obs::audit::Provenance::DnsDeparture {
        customer: domain.to_string(),
        last_delegated: (departure - stale_types::Duration::days(1)).to_string(),
        departed: departure.to_string(),
    }
}

/// The audit decision for a certificate of a customer whose delegation
/// never departed in the window: dropped `delegation-still-present`.
pub fn still_present_decision(domain: &DomainName, cert: &DedupedCert) -> obs::audit::Decision {
    use obs::audit::{Decision, Detector, DropReason, Provenance, Verdict};
    Decision {
        detector: Detector::Mtd,
        cert: cert.cert_id.to_string(),
        verdict: Verdict::Dropped(DropReason::DelegationStillPresent),
        provenance: Provenance::DnsDelegated {
            customer: domain.to_string(),
        },
    }
}

/// Deterministic merge: a stable sort by customer domain. Each customer is
/// wholly owned by one shard, so shard-local order (departure-major, then
/// cert id) is preserved within a domain and the result equals the serial
/// sorted-customer iteration.
pub fn merge_shards(shards: Vec<Vec<StaleCertRecord>>) -> Vec<StaleCertRecord> {
    let mut all: Vec<StaleCertRecord> = shards.into_iter().flatten().collect();
    all.sort_by(|a, b| a.domain.cmp(&b.domain));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use dns::scan::DnsView;
    use stale_types::domain::dn;
    use stale_types::Duration;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn window() -> DateInterval {
        DateInterval::new(d("2022-08-01"), d("2022-10-31")).unwrap()
    }

    fn managed_cert(serial: u128, customers: &[&str], nb: &str, days: i64) -> x509::Certificate {
        let mut sans = vec![dn(&format!("sni{serial}.cloudflaressl.com"))];
        sans.extend(customers.iter().map(|s| dn(s)));
        CertificateBuilder::tls_leaf(KeyPair::from_seed([90; 32]).public())
            .serial(serial)
            .issuer_cn("COMODO ECC DV Secure Server CA 2")
            .subject_cn(customers[0])
            .sans(sans)
            .validity_days(d(nb), Duration::days(days))
            .sign(&KeyPair::from_seed([91; 32]))
    }

    fn monitor(certs: Vec<x509::Certificate>) -> CtMonitor {
        let mut m = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            m.ingest(c, date);
        }
        m
    }

    fn cf_view() -> DnsView {
        DnsView::with_ns([dn("anna.ns.cloudflare.com"), dn("bob.ns.cloudflare.com")])
    }

    fn off_view() -> DnsView {
        DnsView::with_ns([dn("ns1.elsewhere.net")])
    }

    #[test]
    fn departure_detected_and_stale_certs_flagged() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(dn("foo.com"), d("2022-01-01"), cf_view());
        adns.record_change(dn("foo.com"), d("2022-09-15"), off_view());
        let m = monitor(vec![
            managed_cert(1, &["foo.com", "bystander.com"], "2022-03-01", 365),
            managed_cert(2, &["foo.com"], "2021-01-01", 365), // expired by departure
        ]);
        let records = detector.detect(&adns, &m, window());
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.class, StalenessClass::ManagedTlsDeparture);
        assert_eq!(r.domain, dn("foo.com"));
        assert_eq!(r.invalidation, d("2022-09-15"));
        assert_eq!(r.fqdns, vec![dn("foo.com")], "bystander + marker excluded");
    }

    #[test]
    fn no_departure_no_records() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(dn("foo.com"), d("2022-01-01"), cf_view());
        let m = monitor(vec![managed_cert(1, &["foo.com"], "2022-03-01", 365)]);
        assert!(detector.detect(&adns, &m, window()).is_empty());
    }

    #[test]
    fn departure_outside_window_ignored() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(dn("foo.com"), d("2022-01-01"), cf_view());
        adns.record_change(dn("foo.com"), d("2022-11-15"), off_view()); // after window
        let m = monitor(vec![managed_cert(1, &["foo.com"], "2022-03-01", 365)]);
        assert!(detector.detect(&adns, &m, window()).is_empty());
    }

    #[test]
    fn cname_departure_detected() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(
            dn("foo.com"),
            d("2022-01-01"),
            DnsView::with_cname([dn("foo.com.cdn.cloudflare.com")]),
        );
        adns.record_change(dn("foo.com"), d("2022-08-20"), off_view());
        let m = monitor(vec![managed_cert(1, &["foo.com"], "2022-03-01", 365)]);
        let records = detector.detect(&adns, &m, window());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].invalidation, d("2022-08-20"));
    }

    #[test]
    fn non_managed_certs_never_flagged() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(dn("foo.com"), d("2022-01-01"), cf_view());
        adns.record_change(dn("foo.com"), d("2022-09-15"), off_view());
        // Customer-uploaded cert without the marker SAN (§4.3: cannot be
        // distinguished as managed; excluded by design).
        let plain = CertificateBuilder::tls_leaf(KeyPair::from_seed([92; 32]).public())
            .serial(9)
            .issuer_cn("Some CA")
            .subject_cn("foo.com")
            .san(dn("foo.com"))
            .validity_days(d("2022-03-01"), Duration::days(365))
            .sign(&KeyPair::from_seed([93; 32]));
        let m = monitor(vec![plain]);
        assert!(detector.detect(&adns, &m, window()).is_empty());
    }

    #[test]
    fn marker_san_rules() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        assert!(detector.is_marker_san(&dn("sni12345.cloudflaressl.com")));
        assert!(!detector.is_marker_san(&dn("cloudflaressl.com")));
        assert!(!detector.is_marker_san(&dn("www.cloudflaressl.com")));
        assert!(!detector.is_marker_san(&dn("sni1.example.com")));
    }

    #[test]
    fn flapping_delegation_counts_each_departure() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let mut adns = DnsHistory::new();
        adns.record_change(dn("foo.com"), d("2022-01-01"), cf_view());
        adns.record_change(dn("foo.com"), d("2022-08-10"), off_view());
        adns.record_change(dn("foo.com"), d("2022-09-01"), cf_view());
        adns.record_change(dn("foo.com"), d("2022-10-01"), off_view());
        let departures = detector.departures_for(&adns, &dn("foo.com"), window());
        assert_eq!(departures, vec![d("2022-08-10"), d("2022-10-01")]);
    }
}
