//! §4.1: key compromise via CRL × CT cross-referencing.
//!
//! CRLs carry only `(authority key id, serial, revocation time, reason)`;
//! the certificate bodies come from joining against the CT corpus. The
//! paper's outlier filters are applied in order:
//!
//! 1. drop revocations with no matching CT certificate;
//! 2. drop certificates revoked before becoming valid (0.0006% in the
//!    paper);
//! 3. drop certificates revoked after expiration (0.037%);
//! 4. drop revocations older than 13 months before CRL collection began
//!    (0.16%) — they "do not represent normal certificate revocation
//!    behaviors".
//!
//! Staleness conservatively assumes the revocation was issued as soon as
//! the invalidation event occurred.

// Slice indexing here runs over routed-feed indices.
// stale-lint: scope(panic-index)

use crate::staleness::{StaleCertRecord, StalenessClass};
use ca::scraper::{CrlDataset, RevocationRecord};
use ct::monitor::{CtMonitor, DedupedCert};
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, Duration, KeyId, SerialNumber};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use x509::revocation::RevocationReason;

/// How many filtered revocations fell to each §4.1 filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationFilterStats {
    /// CRL entries scanned.
    pub total: usize,
    /// No matching certificate in CT.
    pub unmatched: usize,
    /// Revoked before `notBefore`.
    pub revoked_before_valid: usize,
    /// Revoked on/after `notAfter`.
    pub revoked_after_expiry: usize,
    /// Revocation date before the cutoff (13 months before collection).
    pub revoked_too_early: usize,
    /// Survived all filters.
    pub kept: usize,
}

/// One revocation joined with its certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevokedCert {
    /// CT dedup identity.
    pub cert_id: CertId,
    /// Issuing key.
    pub authority_key_id: KeyId,
    /// Serial.
    pub serial: SerialNumber,
    /// Declared reason.
    pub reason: RevocationReason,
    /// Revocation day.
    pub revocation_date: Date,
    /// Certificate validity.
    pub validity: DateInterval,
    /// Issuer common name.
    pub issuer: String,
    /// Certificate SANs.
    pub fqdns: Vec<stale_types::DomainName>,
}

impl RevokedCert {
    /// View this revocation as a key-compromise stale record (invalidation
    /// at the revocation date).
    pub fn stale_record(&self) -> StaleCertRecord {
        StaleCertRecord {
            cert_id: self.cert_id,
            class: StalenessClass::KeyCompromise,
            domain: self
                .fqdns
                .first()
                .cloned()
                .unwrap_or_else(|| stale_types::domain::dn("unknown.invalid")),
            fqdns: self.fqdns.clone(),
            issuer: self.issuer.clone(),
            invalidation: self.revocation_date,
            validity: self.validity,
        }
    }
}

/// The CRL × CT join result.
pub struct RevocationAnalysis {
    /// Joined, filtered revocations (all reasons).
    pub matched: Vec<RevokedCert>,
    /// Filter accounting.
    pub stats: RevocationFilterStats,
    /// The revocation-date cutoff used (13 months before collection).
    pub cutoff: Date,
}

/// Thirteen months, the §4.1 look-back bound.
fn thirteen_months() -> Duration {
    Duration::days(396)
}

/// How a shard classified one `(CRL record, certificate)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinOutcome {
    /// Revoked before `notBefore` (filter 2).
    RevokedBeforeValid,
    /// Revoked on/after `notAfter` (filter 3).
    RevokedAfterExpiry,
    /// Revocation date before the 13-month cutoff (filter 4).
    RevokedTooEarly,
    /// Survived all filters.
    Kept(RevokedCert),
}

/// A shard-local join hit for one CRL record. The merge step keeps, per
/// CRL index, the match whose `cert_id` is largest — the same winner the
/// serial hash join's insert-overwrite produces over a cert-id-ordered
/// corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMatch {
    /// Index of the record in `CrlDataset::records()`.
    pub crl_index: usize,
    /// The certificate this shard matched to the record.
    pub cert_id: CertId,
    /// Filter classification of that pair.
    pub outcome: JoinOutcome,
}

/// Classify one `(CRL record, certificate)` pair through the §4.1 filter
/// chain. Both the batch join and the incremental ingest path go through
/// this single function so they cannot disagree.
pub fn classify(rec: &RevocationRecord, cert: &DedupedCert, cutoff: Date) -> JoinOutcome {
    let tbs = &cert.certificate.tbs;
    if rec.revocation_date < tbs.not_before() {
        JoinOutcome::RevokedBeforeValid
    } else if rec.revocation_date >= tbs.not_after() {
        JoinOutcome::RevokedAfterExpiry
    } else if rec.revocation_date < cutoff {
        JoinOutcome::RevokedTooEarly
    } else {
        JoinOutcome::Kept(RevokedCert {
            cert_id: cert.cert_id,
            authority_key_id: rec.authority_key_id,
            serial: rec.serial,
            reason: rec.reason,
            revocation_date: rec.revocation_date,
            validity: tbs.validity,
            issuer: tbs.issuer.common_name.clone(),
            fqdns: tbs.san().to_vec(),
        })
    }
}

/// A duplicate-fingerprint candidate a shard's join discarded: a
/// certificate that shares its `(AKI, serial)` key with a CRL-matched
/// record but lost the newest-cert tiebreak to the shard's winner.
pub type KcLoser = (KeyId, SerialNumber, CertId);

/// The CRL side of the sort-merge join: every `(AKI, serial)` key with
/// its CRL index, globally sorted. Built once per run and probed
/// read-only by every shard, so no shard ever re-scans (or copies) the
/// CRL — the shard cost is `O(c log c + c log R)` in its own
/// certificates `c`, not `O(R)` in the CRL.
#[derive(Debug, Clone, Default)]
pub struct CrlKeyIndex {
    /// `(AKI, serial, CRL index)` sorted ascending.
    keys: Vec<(KeyId, SerialNumber, usize)>,
}

impl CrlKeyIndex {
    /// Index a full CRL dataset.
    pub fn build(crl: &CrlDataset) -> Self {
        Self::from_entries(crl.records().iter().enumerate())
    }

    /// Index an arbitrary `(CRL index, record)` subset — the incremental
    /// path indexes only the records observed so far.
    pub fn from_entries<'r>(
        entries: impl IntoIterator<Item = (usize, &'r RevocationRecord)>,
    ) -> Self {
        let mut keys: Vec<(KeyId, SerialNumber, usize)> = entries
            .into_iter()
            .map(|(i, r)| (r.authority_key_id, r.serial, i))
            .collect();
        keys.sort_unstable();
        CrlKeyIndex { keys }
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The merge loop both join entry points share: probe sorted certificate
/// keys against the sorted CRL key index. `keyed` must be sorted by
/// `(key, cert_id)`; the group winner is the largest `cert_id` per key
/// and the rest become losers when (and only when) some CRL record
/// carries the key. Matches come back in CRL-index order, losers in
/// `(key, cert_id)` order — exactly the hash join's emission orders.
/// Returns `(matches, losers, distinct key count)`.
fn merge_probe<'r>(
    keyed: &[((KeyId, SerialNumber), &DedupedCert)],
    crl_keys: &CrlKeyIndex,
    rec_of: &dyn Fn(usize) -> Option<&'r RevocationRecord>,
    cutoff: Date,
) -> (Vec<ShardMatch>, Vec<KcLoser>, u64) {
    let keys = crl_keys.keys.as_slice();
    let mut matches = Vec::new();
    let mut losers: Vec<KcLoser> = Vec::new();
    let mut groups: u64 = 0;
    let mut i = 0usize;
    let mut cursor = 0usize; // both sides sorted: never re-scan the prefix
    while let Some(&(key, _)) = keyed.get(i) {
        let mut j = i + 1;
        while keyed.get(j).is_some_and(|&(k, _)| k == key) {
            j += 1;
        }
        groups += 1;
        let tail = keys.get(cursor..).unwrap_or_default();
        let lo = cursor + tail.partition_point(|&(k, s, _)| (k, s) < key);
        let run = keys.get(lo..).unwrap_or_default();
        let hi = lo + run.partition_point(|&(k, s, _)| (k, s) == key);
        cursor = hi;
        if lo < hi {
            let probed = keys.get(lo..hi).unwrap_or_default();
            if let Some((last, rest)) = keyed.get(i..j).and_then(<[_]>::split_last) {
                let winner = last.1;
                for &(_, _, crl_index) in probed {
                    if let Some(rec) = rec_of(crl_index) {
                        matches.push(ShardMatch {
                            crl_index,
                            cert_id: winner.cert_id,
                            outcome: classify(rec, winner, cutoff),
                        });
                    }
                }
                // Only keys a CRL record actually probed yield audit
                // candidates; losers on never-probed keys were never
                // considered by the detector.
                losers.extend(rest.iter().map(|(k, c)| (k.0, k.1, c.cert_id)));
            }
        }
        i = j;
    }
    matches.sort_unstable_by_key(|m| m.crl_index);
    (matches, losers, groups)
}

/// Probe one shard's pre-keyed winners against the CRL key index and
/// return the matches in CRL-index order. This is [`merge_probe`] for
/// callers that already dedup'd their key side (the incremental state's
/// persistent index holds one winner per key).
pub(crate) fn probe_winners<'r>(
    keyed: &[((KeyId, SerialNumber), &DedupedCert)],
    crl_keys: &CrlKeyIndex,
    rec_of: &dyn Fn(usize) -> Option<&'r RevocationRecord>,
    cutoff: Date,
) -> Vec<ShardMatch> {
    merge_probe(keyed, crl_keys, rec_of, cutoff).0
}

/// Shard-local half of the §4.1 join: sort this shard's certificates by
/// `(AKI, serial)` and merge them against the shared sorted CRL key
/// index. CRL records that match no local certificate produce nothing;
/// the merge step accounts them as unmatched.
pub fn join_shard<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
) -> Vec<ShardMatch> {
    join_shard_observed(certs, crl, cutoff, &obs::NullSink)
}

/// [`join_shard`] reporting item counts (`detector.kc.*`) through a
/// write-only [`obs::CounterSink`]. The sink has no read surface, so the
/// join result cannot depend on what was recorded.
pub fn join_shard_observed<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
    sink: &dyn obs::CounterSink,
) -> Vec<ShardMatch> {
    join_shard_audited(certs, crl, cutoff, sink).0
}

/// [`join_shard_observed`] also returning the duplicate-fingerprint
/// losers: for every key some CRL record matched, the shard certificates
/// that lost the newest-cert tiebreak. The loser set is a pure function
/// of which certificates share a key, so summed over any sharding it is
/// `certs_with_key - shards_with_key` per key — [`audit_decisions`] adds
/// the `shards_with_key - 1` losing shard winners back at merge time,
/// which is what makes the audit shard-count-invariant.
///
/// Builds a throwaway [`CrlKeyIndex`]; multi-shard callers should build
/// the index once and use [`join_shard_audited_with`].
pub fn join_shard_audited<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
    sink: &dyn obs::CounterSink,
) -> (Vec<ShardMatch>, Vec<KcLoser>) {
    join_shard_audited_with(certs, crl, &CrlKeyIndex::build(crl), cutoff, sink)
}

/// The production §4.1 shard join: a sort-merge over the shard's
/// certificate keys and a shared, pre-sorted CRL key index. Batch,
/// incremental, and daemon paths all join through this one
/// implementation ([`join_shard_audited_hash`] survives only as the
/// equivalence oracle and ablation baseline).
// stale-lint: entry(shard)
pub fn join_shard_audited_with<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    crl_keys: &CrlKeyIndex,
    cutoff: Date,
    sink: &dyn obs::CounterSink,
) -> (Vec<ShardMatch>, Vec<KcLoser>) {
    let mut scanned: u64 = 0;
    let mut keyed: Vec<((KeyId, SerialNumber), &DedupedCert)> = Vec::new();
    for cert in certs {
        scanned += 1;
        if let Some(aki) = cert.certificate.tbs.authority_key_id() {
            keyed.push(((aki, cert.certificate.tbs.serial), cert));
        }
    }
    // Max cert_id wins ties, so sorting by (key, cert_id) puts each
    // group's winner last and its losers, already id-sorted, before it.
    keyed.sort_unstable_by_key(|a| (a.0, a.1.cert_id));
    let records = crl.records();
    let (matches, losers, groups) = merge_probe(&keyed, crl_keys, &|i| records.get(i), cutoff);
    sink.add("detector.kc.certs", scanned);
    sink.add("detector.kc.index_keys", groups);
    sink.add("detector.kc.crl_records", records.len() as u64);
    sink.add("detector.kc.matches", matches.len() as u64);
    (matches, losers)
}

/// The original hash join, kept as the independent oracle the sort-merge
/// implementation is byte-compared against (and as the ablation
/// baseline): `(AKI, serial)` → certificate with max `cert_id` winning
/// ties, then a full CRL scan probing the map.
pub fn join_shard_audited_hash<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
    sink: &dyn obs::CounterSink,
) -> (Vec<ShardMatch>, Vec<KcLoser>) {
    let mut scanned: u64 = 0;
    let mut index: HashMap<(KeyId, SerialNumber), &DedupedCert> = HashMap::new();
    let mut displaced: BTreeMap<(KeyId, SerialNumber), Vec<CertId>> = BTreeMap::new();
    for cert in certs {
        scanned += 1;
        if let Some(aki) = cert.certificate.tbs.authority_key_id() {
            let key = (aki, cert.certificate.tbs.serial);
            match index.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(cert);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    let loser = if cert.cert_id > slot.get().cert_id {
                        slot.insert(cert).cert_id
                    } else {
                        cert.cert_id
                    };
                    displaced.entry(key).or_default().push(loser);
                }
            }
        }
    }
    sink.add("detector.kc.certs", scanned);
    sink.add("detector.kc.index_keys", index.len() as u64);
    let mut matches = Vec::new();
    let mut matched_keys: BTreeSet<(KeyId, SerialNumber)> = BTreeSet::new();
    for (crl_index, rec) in crl.records().iter().enumerate() {
        let key = (rec.authority_key_id, rec.serial);
        let Some(cert) = index.get(&key) else {
            continue;
        };
        matched_keys.insert(key);
        matches.push(ShardMatch {
            crl_index,
            cert_id: cert.cert_id,
            outcome: classify(rec, cert, cutoff),
        });
    }
    sink.add("detector.kc.crl_records", crl.records().len() as u64);
    sink.add("detector.kc.matches", matches.len() as u64);
    // Only keys a CRL record actually probed yield audit candidates;
    // losers on never-probed keys were never considered by the detector.
    let mut losers: Vec<KcLoser> = Vec::new();
    for (key, mut ids) in displaced {
        if matched_keys.contains(&key) {
            ids.sort();
            losers.extend(ids.into_iter().map(|id| (key.0, key.1, id)));
        }
    }
    (matches, losers)
}

/// The audit provenance of one CRL entry. Shared by the batch decision
/// expansion and the incremental event stream so both stamp identical
/// records.
pub fn crl_provenance(crl_index: usize, rec: &RevocationRecord) -> obs::audit::Provenance {
    obs::audit::Provenance::CrlEntry {
        crl_index: crl_index as u64,
        authority_key_id: rec.authority_key_id.to_string(),
        serial: rec.serial.to_string(),
        revoked: rec.revocation_date.to_string(),
        reason: format!("{:?}", rec.reason),
    }
}

fn kc_decision(
    cert: String,
    verdict: obs::audit::Verdict,
    provenance: obs::audit::Provenance,
) -> obs::audit::Decision {
    obs::audit::Decision {
        detector: obs::audit::Detector::Kc,
        cert,
        verdict,
        provenance,
    }
}

/// Expand the merged §4.1 join into per-candidate audit decisions: one
/// per CRL entry (kept, a date filter, or `crl-unmatched`) plus one
/// `duplicate-fingerprint` drop per corpus certificate that shared a
/// matched key but lost the newest-cert tiebreak — whether it lost
/// inside a shard (`losers`) or its whole shard's winner lost at merge
/// time. The result is a pure function of the corpus, independent of
/// shard count.
pub fn audit_decisions(
    crl: &CrlDataset,
    shards: &[Vec<ShardMatch>],
    losers: &[KcLoser],
) -> Vec<obs::audit::Decision> {
    use obs::audit::{DropReason, Verdict};
    // Per CRL index: the winning match (largest cert_id), as in
    // `merge_shards`. Per key: every shard winner and the smallest
    // matched CRL index (where duplicate drops are attributed).
    let mut best: BTreeMap<usize, &ShardMatch> = BTreeMap::new();
    let mut key_winners: BTreeMap<(KeyId, SerialNumber), BTreeSet<CertId>> = BTreeMap::new();
    let mut key_index: BTreeMap<(KeyId, SerialNumber), usize> = BTreeMap::new();
    for m in shards.iter().flatten() {
        match best.get(&m.crl_index) {
            Some(cur) if cur.cert_id >= m.cert_id => {}
            _ => {
                best.insert(m.crl_index, m);
            }
        }
        if let Some(rec) = crl.records().get(m.crl_index) {
            let key = (rec.authority_key_id, rec.serial);
            key_winners.entry(key).or_default().insert(m.cert_id);
            let slot = key_index.entry(key).or_insert(m.crl_index);
            *slot = (*slot).min(m.crl_index);
        }
    }
    let mut decisions = Vec::new();
    for (crl_index, rec) in crl.records().iter().enumerate() {
        let provenance = crl_provenance(crl_index, rec);
        match best.get(&crl_index) {
            None => decisions.push(kc_decision(
                String::new(),
                Verdict::Dropped(DropReason::CrlUnmatched),
                provenance,
            )),
            Some(m) => {
                let verdict = match &m.outcome {
                    JoinOutcome::RevokedBeforeValid => {
                        Verdict::Dropped(DropReason::RevokedBeforeValid)
                    }
                    JoinOutcome::RevokedAfterExpiry => {
                        Verdict::Dropped(DropReason::RevokedAfterExpiry)
                    }
                    JoinOutcome::RevokedTooEarly => Verdict::Dropped(DropReason::CrlOutlier),
                    JoinOutcome::Kept(_) => Verdict::Kept,
                };
                decisions.push(kc_decision(m.cert_id.to_string(), verdict, provenance));
            }
        }
    }
    // Shard winners that lost the cross-shard tiebreak.
    for (key, winners) in &key_winners {
        let global = winners.iter().max().copied();
        for cert_id in winners {
            if Some(*cert_id) == global {
                continue;
            }
            if let Some((idx, rec)) = key_index
                .get(key)
                .and_then(|&i| crl.records().get(i).map(|r| (i, r)))
            {
                decisions.push(kc_decision(
                    cert_id.to_string(),
                    Verdict::Dropped(DropReason::DuplicateFingerprint),
                    crl_provenance(idx, rec),
                ));
            }
        }
    }
    // Certificates that already lost inside their shard.
    for (aki, serial, cert_id) in losers {
        let key = (*aki, *serial);
        if let Some((idx, rec)) = key_index
            .get(&key)
            .and_then(|&i| crl.records().get(i).map(|r| (i, r)))
        {
            decisions.push(kc_decision(
                cert_id.to_string(),
                Verdict::Dropped(DropReason::DuplicateFingerprint),
                crl_provenance(idx, rec),
            ));
        }
    }
    decisions
}

/// Deterministic merge of shard-local joins: per CRL index keep the match
/// with the largest `cert_id`, tally filter stats, and emit survivors in
/// CRL-record order. `total` is the full CRL length; indexes no shard
/// matched count as unmatched.
pub fn merge_shards(
    total: usize,
    cutoff: Date,
    shards: Vec<Vec<ShardMatch>>,
) -> RevocationAnalysis {
    let mut best: BTreeMap<usize, ShardMatch> = BTreeMap::new();
    for m in shards.into_iter().flatten() {
        match best.get(&m.crl_index) {
            Some(cur) if cur.cert_id >= m.cert_id => {}
            _ => {
                best.insert(m.crl_index, m);
            }
        }
    }
    let mut stats = RevocationFilterStats {
        total,
        ..Default::default()
    };
    stats.unmatched = total - best.len();
    let mut matched = Vec::new();
    for m in best.into_values() {
        match m.outcome {
            JoinOutcome::RevokedBeforeValid => stats.revoked_before_valid += 1,
            JoinOutcome::RevokedAfterExpiry => stats.revoked_after_expiry += 1,
            JoinOutcome::RevokedTooEarly => stats.revoked_too_early += 1,
            JoinOutcome::Kept(cert) => {
                stats.kept += 1;
                matched.push(cert);
            }
        }
    }
    RevocationAnalysis {
        matched,
        stats,
        cutoff,
    }
}

impl RevocationAnalysis {
    /// The revocation-date cutoff for a given first day of CRL collection.
    pub fn cutoff_for(collection_start: Date) -> Date {
        collection_start - thirteen_months()
    }

    /// Join `crl` against `monitor` with the §4.1 filters;
    /// `collection_start` is the first day of CRL collection. This is the
    /// single-shard composition of [`join_shard`] and [`merge_shards`].
    pub fn run(crl: &CrlDataset, monitor: &CtMonitor, collection_start: Date) -> Self {
        let cutoff = Self::cutoff_for(collection_start);
        let matches = join_shard(monitor.corpus_unfiltered(), crl, cutoff);
        merge_shards(crl.records().len(), cutoff, vec![matches])
    }

    /// The key-compromise subset as stale certificate records.
    pub fn stale_records(&self) -> Vec<StaleCertRecord> {
        self.matched
            .iter()
            .filter(|r| r.reason == RevocationReason::KeyCompromise)
            .map(RevokedCert::stale_record)
            .collect()
    }

    /// All matched revocations as records (for the Table 4 "Revoked: all"
    /// row), each treated as an invalidation at its revocation date.
    pub fn all_as_records(&self) -> Vec<StaleCertRecord> {
        self.matched.iter().map(RevokedCert::stale_record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca::scraper::RevocationRecord;
    use crypto::KeyPair;
    use stale_types::domain::dn;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn ca_key() -> KeyPair {
        KeyPair::from_seed([77; 32])
    }

    fn cert(serial: u128, nb: &str, days: i64) -> x509::Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([78; 32]).public())
            .serial(serial)
            .issuer_cn("Join CA")
            .subject_cn("foo.com")
            .san(dn("foo.com"))
            .validity_days(d(nb), Duration::days(days))
            .sign(&ca_key())
    }

    fn rev(serial: u128, date: &str, reason: RevocationReason) -> RevocationRecord {
        RevocationRecord {
            authority_key_id: KeyId::from_bytes(ca_key().public().key_id()),
            serial: SerialNumber(serial),
            revocation_date: d(date),
            reason,
            observed: d("2022-11-01"),
        }
    }

    fn setup(certs: Vec<x509::Certificate>, revs: Vec<RevocationRecord>) -> RevocationAnalysis {
        let mut monitor = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            monitor.ingest(c, date);
        }
        let mut crl = CrlDataset::new();
        for r in revs {
            crl.add(r);
        }
        RevocationAnalysis::run(&crl, &monitor, d("2022-11-01"))
    }

    #[test]
    fn join_matches_and_classifies() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398), cert(2, "2022-06-01", 398)],
            vec![
                rev(1, "2022-08-01", RevocationReason::KeyCompromise),
                rev(2, "2022-08-01", RevocationReason::Superseded),
            ],
        );
        assert_eq!(analysis.stats.kept, 2);
        assert_eq!(analysis.matched.len(), 2);
        let kc = analysis.stale_records();
        assert_eq!(kc.len(), 1);
        assert_eq!(kc[0].class, StalenessClass::KeyCompromise);
        assert_eq!(kc[0].invalidation, d("2022-08-01"));
        // Staleness: 398 - 61 days elapsed.
        assert_eq!(kc[0].staleness_days(), Duration::days(398 - 61));
        assert_eq!(analysis.all_as_records().len(), 2);
    }

    #[test]
    fn unmatched_revocations_filtered() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(99, "2022-08-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.unmatched, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn revoked_before_valid_filtered() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(1, "2022-05-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.revoked_before_valid, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn revoked_after_expiry_filtered() {
        let analysis = setup(
            vec![cert(1, "2020-01-01", 90)],
            vec![rev(1, "2022-08-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.revoked_after_expiry, 1);
    }

    #[test]
    fn too_early_revocations_filtered() {
        // Collection starts 2022-11-01; cutoff is 13 months earlier
        // (2021-10-01). A long-lived cert revoked before that is dropped.
        let analysis = setup(
            vec![cert(1, "2021-01-01", 825)],
            vec![rev(1, "2021-06-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.cutoff, d("2021-10-01"));
        assert_eq!(analysis.stats.revoked_too_early, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn audit_decisions_cover_every_entry_and_are_shard_invariant() {
        use obs::audit::{AuditReport, DropReason, Verdict};
        // Three certs share serial 1's key (duplicate fingerprints), one
        // matches serial 2, serial 99 is unmatched.
        let certs = vec![
            cert(1, "2022-06-01", 398),
            cert(1, "2022-06-02", 398),
            cert(1, "2022-06-03", 398),
            cert(2, "2022-06-01", 398),
        ];
        let revs = vec![
            rev(1, "2022-08-01", RevocationReason::KeyCompromise),
            rev(2, "2022-08-01", RevocationReason::Superseded),
            rev(99, "2022-08-01", RevocationReason::KeyCompromise),
        ];
        let mut monitor = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            monitor.ingest(c, date);
        }
        let mut crl = CrlDataset::new();
        for r in revs {
            crl.add(r);
        }
        let cutoff = RevocationAnalysis::cutoff_for(d("2022-11-01"));
        let corpus: Vec<&DedupedCert> = monitor.corpus_unfiltered().collect();

        let mut reports = Vec::new();
        for split in 1..=3usize {
            let mut shards = Vec::new();
            let mut losers = Vec::new();
            for s in 0..split {
                let part = corpus.iter().copied().skip(s).step_by(split);
                let (m, l) = join_shard_audited(part, &crl, cutoff, &obs::NullSink);
                shards.push(m);
                losers.extend(l);
            }
            let decisions = audit_decisions(&crl, &shards, &losers);
            reports.push(AuditReport::from_decisions(decisions));
        }
        let first = &reports[0];
        for other in &reports[1..] {
            assert_eq!(first, other, "audit differs across shard splits");
        }
        let cov = &first.coverage["kc"];
        assert!(cov.balanced());
        // 3 CRL entries + 2 duplicate-fingerprint cert candidates.
        assert_eq!(cov.candidates, 5);
        assert_eq!(cov.kept, 2);
        assert_eq!(cov.dropped[DropReason::CrlUnmatched.as_str()], 1);
        assert_eq!(cov.dropped[DropReason::DuplicateFingerprint.as_str()], 2);
        // The unmatched entry has no certificate side.
        assert!(first
            .decisions
            .iter()
            .any(|dec| dec.cert.is_empty()
                && dec.verdict == Verdict::Dropped(DropReason::CrlUnmatched)));
    }

    #[test]
    fn boundary_dates() {
        // Revoked exactly on notBefore: kept (not "before valid").
        let a = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(1, "2022-06-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(a.stats.kept, 1);
        // Revoked exactly on notAfter: dropped (cert already expired).
        let b = setup(
            vec![cert(1, "2022-01-01", 90)],
            vec![rev(1, "2022-04-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(b.stats.revoked_after_expiry, 1);
        // Revoked exactly at the cutoff: kept.
        let c = setup(
            vec![cert(1, "2021-09-01", 825)],
            vec![rev(1, "2021-10-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(c.stats.kept, 1);
    }
}
