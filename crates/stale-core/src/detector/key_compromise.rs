//! §4.1: key compromise via CRL × CT cross-referencing.
//!
//! CRLs carry only `(authority key id, serial, revocation time, reason)`;
//! the certificate bodies come from joining against the CT corpus. The
//! paper's outlier filters are applied in order:
//!
//! 1. drop revocations with no matching CT certificate;
//! 2. drop certificates revoked before becoming valid (0.0006% in the
//!    paper);
//! 3. drop certificates revoked after expiration (0.037%);
//! 4. drop revocations older than 13 months before CRL collection began
//!    (0.16%) — they "do not represent normal certificate revocation
//!    behaviors".
//!
//! Staleness conservatively assumes the revocation was issued as soon as
//! the invalidation event occurred.

use crate::staleness::{StaleCertRecord, StalenessClass};
use ca::scraper::{CrlDataset, RevocationRecord};
use ct::monitor::{CtMonitor, DedupedCert};
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, Duration, KeyId, SerialNumber};
use std::collections::{BTreeMap, HashMap};
use x509::revocation::RevocationReason;

/// How many filtered revocations fell to each §4.1 filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationFilterStats {
    /// CRL entries scanned.
    pub total: usize,
    /// No matching certificate in CT.
    pub unmatched: usize,
    /// Revoked before `notBefore`.
    pub revoked_before_valid: usize,
    /// Revoked on/after `notAfter`.
    pub revoked_after_expiry: usize,
    /// Revocation date before the cutoff (13 months before collection).
    pub revoked_too_early: usize,
    /// Survived all filters.
    pub kept: usize,
}

/// One revocation joined with its certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevokedCert {
    /// CT dedup identity.
    pub cert_id: CertId,
    /// Issuing key.
    pub authority_key_id: KeyId,
    /// Serial.
    pub serial: SerialNumber,
    /// Declared reason.
    pub reason: RevocationReason,
    /// Revocation day.
    pub revocation_date: Date,
    /// Certificate validity.
    pub validity: DateInterval,
    /// Issuer common name.
    pub issuer: String,
    /// Certificate SANs.
    pub fqdns: Vec<stale_types::DomainName>,
}

impl RevokedCert {
    /// View this revocation as a key-compromise stale record (invalidation
    /// at the revocation date).
    pub fn stale_record(&self) -> StaleCertRecord {
        StaleCertRecord {
            cert_id: self.cert_id,
            class: StalenessClass::KeyCompromise,
            domain: self
                .fqdns
                .first()
                .cloned()
                .unwrap_or_else(|| stale_types::domain::dn("unknown.invalid")),
            fqdns: self.fqdns.clone(),
            issuer: self.issuer.clone(),
            invalidation: self.revocation_date,
            validity: self.validity,
        }
    }
}

/// The CRL × CT join result.
pub struct RevocationAnalysis {
    /// Joined, filtered revocations (all reasons).
    pub matched: Vec<RevokedCert>,
    /// Filter accounting.
    pub stats: RevocationFilterStats,
    /// The revocation-date cutoff used (13 months before collection).
    pub cutoff: Date,
}

/// Thirteen months, the §4.1 look-back bound.
fn thirteen_months() -> Duration {
    Duration::days(396)
}

/// How a shard classified one `(CRL record, certificate)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinOutcome {
    /// Revoked before `notBefore` (filter 2).
    RevokedBeforeValid,
    /// Revoked on/after `notAfter` (filter 3).
    RevokedAfterExpiry,
    /// Revocation date before the 13-month cutoff (filter 4).
    RevokedTooEarly,
    /// Survived all filters.
    Kept(RevokedCert),
}

/// A shard-local join hit for one CRL record. The merge step keeps, per
/// CRL index, the match whose `cert_id` is largest — the same winner the
/// serial hash join's insert-overwrite produces over a cert-id-ordered
/// corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMatch {
    /// Index of the record in `CrlDataset::records()`.
    pub crl_index: usize,
    /// The certificate this shard matched to the record.
    pub cert_id: CertId,
    /// Filter classification of that pair.
    pub outcome: JoinOutcome,
}

/// Classify one `(CRL record, certificate)` pair through the §4.1 filter
/// chain. Both the batch join and the incremental ingest path go through
/// this single function so they cannot disagree.
pub fn classify(rec: &RevocationRecord, cert: &DedupedCert, cutoff: Date) -> JoinOutcome {
    let tbs = &cert.certificate.tbs;
    if rec.revocation_date < tbs.not_before() {
        JoinOutcome::RevokedBeforeValid
    } else if rec.revocation_date >= tbs.not_after() {
        JoinOutcome::RevokedAfterExpiry
    } else if rec.revocation_date < cutoff {
        JoinOutcome::RevokedTooEarly
    } else {
        JoinOutcome::Kept(RevokedCert {
            cert_id: cert.cert_id,
            authority_key_id: rec.authority_key_id,
            serial: rec.serial,
            reason: rec.reason,
            revocation_date: rec.revocation_date,
            validity: tbs.validity,
            issuer: tbs.issuer.common_name.clone(),
            fqdns: tbs.san().to_vec(),
        })
    }
}

/// Shard-local half of the §4.1 join: index this shard's certificates by
/// `(AKI, serial)` and scan the full CRL against them. CRL records that
/// match no local certificate produce nothing; the merge step accounts
/// them as unmatched.
pub fn join_shard<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
) -> Vec<ShardMatch> {
    join_shard_observed(certs, crl, cutoff, &obs::NullSink)
}

/// [`join_shard`] reporting item counts (`detector.kc.*`) through a
/// write-only [`obs::CounterSink`]. The sink has no read surface, so the
/// join result cannot depend on what was recorded.
pub fn join_shard_observed<'m>(
    certs: impl IntoIterator<Item = &'m DedupedCert>,
    crl: &CrlDataset,
    cutoff: Date,
    sink: &dyn obs::CounterSink,
) -> Vec<ShardMatch> {
    // Hash join: (AKI, serial) → certificate, max cert_id winning ties so
    // shard-local results are independent of input order. The ablation
    // bench compares this against a sort-merge join.
    let mut scanned: u64 = 0;
    let mut index: HashMap<(KeyId, SerialNumber), &DedupedCert> = HashMap::new();
    for cert in certs {
        scanned += 1;
        if let Some(aki) = cert.certificate.tbs.authority_key_id() {
            let slot = index
                .entry((aki, cert.certificate.tbs.serial))
                .or_insert(cert);
            if cert.cert_id > slot.cert_id {
                *slot = cert;
            }
        }
    }
    sink.add("detector.kc.certs", scanned);
    sink.add("detector.kc.index_keys", index.len() as u64);
    let mut matches = Vec::new();
    for (crl_index, rec) in crl.records().iter().enumerate() {
        let Some(cert) = index.get(&(rec.authority_key_id, rec.serial)) else {
            continue;
        };
        matches.push(ShardMatch {
            crl_index,
            cert_id: cert.cert_id,
            outcome: classify(rec, cert, cutoff),
        });
    }
    sink.add("detector.kc.crl_records", crl.records().len() as u64);
    sink.add("detector.kc.matches", matches.len() as u64);
    matches
}

/// Deterministic merge of shard-local joins: per CRL index keep the match
/// with the largest `cert_id`, tally filter stats, and emit survivors in
/// CRL-record order. `total` is the full CRL length; indexes no shard
/// matched count as unmatched.
pub fn merge_shards(
    total: usize,
    cutoff: Date,
    shards: Vec<Vec<ShardMatch>>,
) -> RevocationAnalysis {
    let mut best: BTreeMap<usize, ShardMatch> = BTreeMap::new();
    for m in shards.into_iter().flatten() {
        match best.get(&m.crl_index) {
            Some(cur) if cur.cert_id >= m.cert_id => {}
            _ => {
                best.insert(m.crl_index, m);
            }
        }
    }
    let mut stats = RevocationFilterStats {
        total,
        ..Default::default()
    };
    stats.unmatched = total - best.len();
    let mut matched = Vec::new();
    for m in best.into_values() {
        match m.outcome {
            JoinOutcome::RevokedBeforeValid => stats.revoked_before_valid += 1,
            JoinOutcome::RevokedAfterExpiry => stats.revoked_after_expiry += 1,
            JoinOutcome::RevokedTooEarly => stats.revoked_too_early += 1,
            JoinOutcome::Kept(cert) => {
                stats.kept += 1;
                matched.push(cert);
            }
        }
    }
    RevocationAnalysis {
        matched,
        stats,
        cutoff,
    }
}

impl RevocationAnalysis {
    /// The revocation-date cutoff for a given first day of CRL collection.
    pub fn cutoff_for(collection_start: Date) -> Date {
        collection_start - thirteen_months()
    }

    /// Join `crl` against `monitor` with the §4.1 filters;
    /// `collection_start` is the first day of CRL collection. This is the
    /// single-shard composition of [`join_shard`] and [`merge_shards`].
    pub fn run(crl: &CrlDataset, monitor: &CtMonitor, collection_start: Date) -> Self {
        let cutoff = Self::cutoff_for(collection_start);
        let matches = join_shard(monitor.corpus_unfiltered(), crl, cutoff);
        merge_shards(crl.records().len(), cutoff, vec![matches])
    }

    /// The key-compromise subset as stale certificate records.
    pub fn stale_records(&self) -> Vec<StaleCertRecord> {
        self.matched
            .iter()
            .filter(|r| r.reason == RevocationReason::KeyCompromise)
            .map(RevokedCert::stale_record)
            .collect()
    }

    /// All matched revocations as records (for the Table 4 "Revoked: all"
    /// row), each treated as an invalidation at its revocation date.
    pub fn all_as_records(&self) -> Vec<StaleCertRecord> {
        self.matched.iter().map(RevokedCert::stale_record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca::scraper::RevocationRecord;
    use crypto::KeyPair;
    use stale_types::domain::dn;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn ca_key() -> KeyPair {
        KeyPair::from_seed([77; 32])
    }

    fn cert(serial: u128, nb: &str, days: i64) -> x509::Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([78; 32]).public())
            .serial(serial)
            .issuer_cn("Join CA")
            .subject_cn("foo.com")
            .san(dn("foo.com"))
            .validity_days(d(nb), Duration::days(days))
            .sign(&ca_key())
    }

    fn rev(serial: u128, date: &str, reason: RevocationReason) -> RevocationRecord {
        RevocationRecord {
            authority_key_id: KeyId::from_bytes(ca_key().public().key_id()),
            serial: SerialNumber(serial),
            revocation_date: d(date),
            reason,
            observed: d("2022-11-01"),
        }
    }

    fn setup(certs: Vec<x509::Certificate>, revs: Vec<RevocationRecord>) -> RevocationAnalysis {
        let mut monitor = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            monitor.ingest(c, date);
        }
        let mut crl = CrlDataset::new();
        for r in revs {
            crl.add(r);
        }
        RevocationAnalysis::run(&crl, &monitor, d("2022-11-01"))
    }

    #[test]
    fn join_matches_and_classifies() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398), cert(2, "2022-06-01", 398)],
            vec![
                rev(1, "2022-08-01", RevocationReason::KeyCompromise),
                rev(2, "2022-08-01", RevocationReason::Superseded),
            ],
        );
        assert_eq!(analysis.stats.kept, 2);
        assert_eq!(analysis.matched.len(), 2);
        let kc = analysis.stale_records();
        assert_eq!(kc.len(), 1);
        assert_eq!(kc[0].class, StalenessClass::KeyCompromise);
        assert_eq!(kc[0].invalidation, d("2022-08-01"));
        // Staleness: 398 - 61 days elapsed.
        assert_eq!(kc[0].staleness_days(), Duration::days(398 - 61));
        assert_eq!(analysis.all_as_records().len(), 2);
    }

    #[test]
    fn unmatched_revocations_filtered() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(99, "2022-08-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.unmatched, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn revoked_before_valid_filtered() {
        let analysis = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(1, "2022-05-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.revoked_before_valid, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn revoked_after_expiry_filtered() {
        let analysis = setup(
            vec![cert(1, "2020-01-01", 90)],
            vec![rev(1, "2022-08-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.stats.revoked_after_expiry, 1);
    }

    #[test]
    fn too_early_revocations_filtered() {
        // Collection starts 2022-11-01; cutoff is 13 months earlier
        // (2021-10-01). A long-lived cert revoked before that is dropped.
        let analysis = setup(
            vec![cert(1, "2021-01-01", 825)],
            vec![rev(1, "2021-06-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(analysis.cutoff, d("2021-10-01"));
        assert_eq!(analysis.stats.revoked_too_early, 1);
        assert_eq!(analysis.stats.kept, 0);
    }

    #[test]
    fn boundary_dates() {
        // Revoked exactly on notBefore: kept (not "before valid").
        let a = setup(
            vec![cert(1, "2022-06-01", 398)],
            vec![rev(1, "2022-06-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(a.stats.kept, 1);
        // Revoked exactly on notAfter: dropped (cert already expired).
        let b = setup(
            vec![cert(1, "2022-01-01", 90)],
            vec![rev(1, "2022-04-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(b.stats.revoked_after_expiry, 1);
        // Revoked exactly at the cutoff: kept.
        let c = setup(
            vec![cert(1, "2021-09-01", 825)],
            vec![rev(1, "2021-10-01", RevocationReason::KeyCompromise)],
        );
        assert_eq!(c.stats.kept, 1);
    }
}
