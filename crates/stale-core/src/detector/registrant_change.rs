//! §4.2: domain registrant change via WHOIS creation dates.
//!
//! A new registry creation date means the domain was deleted and
//! re-registered — a new owner. Any certificate whose validity spans the
//! new creation date (`notBefore < creationDate < notAfter`) is stale from
//! the creation date onward: the *previous* owner still holds its key.
//!
//! The method is deliberately conservative (precision over recall): it
//! misses intra/inter-registrar transfers and pre-release re-registrations
//! (§4.4), so its counts are a lower bound.

// Slice indexing here runs over routed-feed indices.
// stale-lint: scope(panic-index)

use crate::staleness::{StaleCertRecord, StalenessClass};
use ct::monitor::{CtMonitor, DedupedCert};
use psl::SuffixList;
use registry::whois::WhoisDataset;
use stale_types::{Date, DomainName};
use std::collections::HashMap;

/// A registrant change with its global position in the sorted
/// `WhoisDataset::registrant_changes()` enumeration. The index is the
/// merge key that restores serial output order across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedChange {
    /// Position in the global change enumeration.
    pub index: usize,
    /// The re-registered domain (an e2LD).
    pub domain: DomainName,
    /// The new registry creation date.
    pub creation: Date,
}

/// The registrant-change detector.
pub struct RegistrantChangeDetector<'a> {
    psl: &'a SuffixList,
}

impl<'a> RegistrantChangeDetector<'a> {
    /// Build with a suffix list for e2LD grouping.
    pub fn new(psl: &'a SuffixList) -> Self {
        RegistrantChangeDetector { psl }
    }

    /// The SAN e2LDs of one certificate, deduplicated in SAN order. This
    /// is also the partitioner's routing key set for the certificate.
    pub fn cert_e2lds(&self, cert: &DedupedCert) -> Vec<DomainName> {
        let mut seen_e2lds: Vec<DomainName> = Vec::new();
        for san in cert.certificate.tbs.san() {
            if let Ok(e2ld) = self.psl.e2ld_of_san(san) {
                if !seen_e2lds.contains(&e2ld) {
                    seen_e2lds.push(e2ld);
                }
            }
        }
        seen_e2lds
    }

    /// Index a set of certificates by SAN e2LD.
    fn index_certs<'m>(
        &self,
        certs: impl IntoIterator<Item = &'m DedupedCert>,
    ) -> HashMap<DomainName, Vec<&'m DedupedCert>> {
        let mut index: HashMap<DomainName, Vec<&DedupedCert>> = HashMap::new();
        for cert in certs {
            for e2ld in self.cert_e2lds(cert) {
                index.entry(e2ld).or_default().push(cert);
            }
        }
        index
    }

    /// Shard-local detection: match this shard's registrant changes
    /// against this shard's certificates. Each change must arrive with
    /// *all* certificates naming its domain (the partitioner duplicates
    /// cruise-liner certificates into every shard owning one of their
    /// e2LDs), so every emitted record is wholly owned by one shard.
    pub fn detect_shard<'m>(
        &self,
        changes: &[IndexedChange],
        certs: impl IntoIterator<Item = &'m DedupedCert>,
    ) -> Vec<(usize, StaleCertRecord)> {
        self.detect_shard_observed(changes, certs, &obs::NullSink)
    }

    /// [`Self::detect_shard`] reporting item counts (`detector.rc.*`)
    /// through a write-only [`obs::CounterSink`]; the sink has no read
    /// surface, so detection cannot depend on what was recorded.
    pub fn detect_shard_observed<'m>(
        &self,
        changes: &[IndexedChange],
        certs: impl IntoIterator<Item = &'m DedupedCert>,
        sink: &dyn obs::CounterSink,
    ) -> Vec<(usize, StaleCertRecord)> {
        self.detect_shard_audited(changes, certs, sink, &obs::NullDecisionSink)
    }

    /// [`Self::detect_shard_observed`] also reporting one audit
    /// [`obs::Decision`] per `(change, certificate)` candidate pair —
    /// kept, or dropped `outside-validity-window` — through a write-only
    /// [`obs::DecisionSink`]. Decisions cannot feed back into results.
    pub fn detect_shard_audited<'m>(
        &self,
        changes: &[IndexedChange],
        certs: impl IntoIterator<Item = &'m DedupedCert>,
        sink: &dyn obs::CounterSink,
        audit: &dyn obs::DecisionSink,
    ) -> Vec<(usize, StaleCertRecord)> {
        let index = self.index_certs(certs);
        sink.add("detector.rc.changes", changes.len() as u64);
        sink.add("detector.rc.indexed_e2lds", index.len() as u64);
        // Summing lengths is order-independent and the sink is write-only,
        // so this HashMap walk cannot leak iteration order into results.
        // stale-lint: allow(nondeterministic-iteration)
        let cert_refs: u64 = index.values().map(|v| v.len() as u64).sum();
        sink.add("detector.rc.cert_refs", cert_refs);
        let mut records = Vec::new();
        for change in changes {
            let Some(certs) = index.get(&change.domain) else {
                continue;
            };
            for cert in certs {
                audit.decision(rc_decision(&change.domain, change.creation, cert));
                if let Some(record) = self.stale_record(&change.domain, change.creation, cert) {
                    records.push((change.index, record));
                }
            }
        }
        sink.add("detector.rc.records", records.len() as u64);
        records
    }

    /// [`Self::detect_shard_audited`] over a pre-routed zero-copy view:
    /// certificates arrive with their interned SAN-e2LD ids and changes
    /// arrive pre-resolved to interned ids (see
    /// [`crate::views::RoutedWorld`]), so the per-shard index is rebuilt
    /// from integers without recomputing any e2LD. A change whose domain
    /// was never interned (no certificate anywhere names it) carries
    /// `u32::MAX`, which matches no index entry — exactly the owned
    /// path's miss. Output and counters are identical to
    /// [`Self::detect_shard_audited`].
    // stale-lint: entry(shard)
    pub fn detect_shard_view_audited<'m, 'v>(
        &self,
        changes: &[(u32, &'v IndexedChange)],
        certs: impl IntoIterator<Item = (&'m DedupedCert, &'v [u32])>,
        sink: &dyn obs::CounterSink,
        audit: &dyn obs::DecisionSink,
    ) -> Vec<(usize, StaleCertRecord)> {
        let mut index: HashMap<u32, Vec<&DedupedCert>> = HashMap::new();
        for (cert, ids) in certs {
            for &id in ids {
                index.entry(id).or_default().push(cert);
            }
        }
        sink.add("detector.rc.changes", changes.len() as u64);
        sink.add("detector.rc.indexed_e2lds", index.len() as u64);
        // Summing lengths is order-independent and the sink is write-only,
        // so this HashMap walk cannot leak iteration order into results.
        // stale-lint: allow(nondeterministic-iteration)
        let cert_refs: u64 = index.values().map(|v| v.len() as u64).sum();
        sink.add("detector.rc.cert_refs", cert_refs);
        let mut records = Vec::new();
        for &(id, change) in changes {
            let Some(certs) = index.get(&id) else {
                continue;
            };
            for cert in certs {
                audit.decision(rc_decision(&change.domain, change.creation, cert));
                if let Some(record) = self.stale_record(&change.domain, change.creation, cert) {
                    records.push((change.index, record));
                }
            }
        }
        sink.add("detector.rc.records", records.len() as u64);
        records
    }

    /// The §4.2 test for one `(change, certificate)` pair: if the
    /// certificate's validity strictly spans the new creation date, build
    /// its stale record. Both the batch and incremental paths call this,
    /// so they cannot disagree on the span test or the record shape.
    pub fn stale_record(
        &self,
        domain: &DomainName,
        creation: Date,
        cert: &DedupedCert,
    ) -> Option<StaleCertRecord> {
        let tbs = &cert.certificate.tbs;
        if !spans(tbs.not_before(), creation, tbs.not_after()) {
            return None;
        }
        // The relevant FQDNs are the SANs under the changed e2LD (a
        // cruise-liner certificate names many other customers that are
        // *not* stale).
        let fqdns: Vec<DomainName> = tbs
            .san()
            .iter()
            .filter(|san| {
                self.psl
                    .e2ld_of_san(san)
                    .map(|e| e == *domain)
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        Some(StaleCertRecord {
            cert_id: cert.cert_id,
            class: StalenessClass::RegistrantChange,
            domain: domain.clone(),
            fqdns,
            issuer: tbs.issuer.common_name.clone(),
            invalidation: creation,
            validity: tbs.validity,
        })
    }

    /// Detect stale certificates for every registrant change in `whois`.
    /// This is the single-shard composition of [`Self::detect_shard`] and
    /// [`merge_shards`].
    pub fn detect(&self, whois: &WhoisDataset, monitor: &CtMonitor) -> Vec<StaleCertRecord> {
        let changes = enumerate_changes(whois);
        merge_shards(vec![
            self.detect_shard(&changes, monitor.corpus_unfiltered())
        ])
    }
}

/// The global, order-defining enumeration of registrant changes (sorted by
/// domain, then chronological within a domain).
pub fn enumerate_changes(whois: &WhoisDataset) -> Vec<IndexedChange> {
    whois
        .registrant_changes()
        .enumerate()
        .map(|(index, (domain, creation))| IndexedChange {
            index,
            domain: domain.clone(),
            creation,
        })
        .collect()
}

/// Deterministic merge: sort by `(global change index, cert_id)`, which is
/// exactly the serial emission order (changes in enumeration order, and
/// within a change the corpus is scanned in cert-id order).
pub fn merge_shards(shards: Vec<Vec<(usize, StaleCertRecord)>>) -> Vec<StaleCertRecord> {
    let mut all: Vec<(usize, StaleCertRecord)> = shards.into_iter().flatten().collect();
    all.sort_by_key(|(index, record)| (*index, record.cert_id));
    all.into_iter().map(|(_, record)| record).collect()
}

/// `notBefore < creation < notAfter`, strictly, per §4.2.
fn spans(not_before: Date, creation: Date, not_after: Date) -> bool {
    not_before < creation && creation < not_after
}

/// Whether a certificate's validity strictly spans a creation date — the
/// §4.2 candidate test as one reusable predicate.
pub fn validity_spans(cert: &DedupedCert, creation: Date) -> bool {
    let tbs = &cert.certificate.tbs;
    spans(tbs.not_before(), creation, tbs.not_after())
}

/// The audit decision for one `(registrant change, certificate)`
/// candidate pair. Both the batch shard loop and the incremental
/// finish-time derivation build decisions through this single function,
/// so the two paths cannot disagree.
pub fn rc_decision(
    domain: &DomainName,
    creation: Date,
    cert: &DedupedCert,
) -> obs::audit::Decision {
    use obs::audit::{Decision, Detector, DropReason, Provenance, Verdict};
    Decision {
        detector: Detector::Rc,
        cert: cert.cert_id.to_string(),
        verdict: if validity_spans(cert, creation) {
            Verdict::Kept
        } else {
            Verdict::Dropped(DropReason::OutsideValidityWindow)
        },
        provenance: Provenance::WhoisCreation {
            domain: domain.to_string(),
            created: creation.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use stale_types::domain::dn;
    use stale_types::Duration;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn cert(serial: u128, sans: &[&str], nb: &str, days: i64) -> x509::Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([81; 32]).public())
            .serial(serial)
            .issuer_cn("RC CA")
            .subject_cn(sans[0])
            .sans(sans.iter().map(|s| dn(s)))
            .validity_days(d(nb), Duration::days(days))
            .sign(&KeyPair::from_seed([80; 32]))
    }

    fn monitor(certs: Vec<x509::Certificate>) -> CtMonitor {
        let mut m = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            m.ingest(c, date);
        }
        m
    }

    fn whois(changes: &[(&str, &str, &str)]) -> WhoisDataset {
        // (domain, first creation, second creation)
        let mut w = WhoisDataset::new();
        for (domain, first, second) in changes {
            w.observe(dn(domain), d(first));
            w.observe(dn(domain), d(second));
        }
        w
    }

    #[test]
    fn spanning_cert_detected() {
        let psl = SuffixList::default_list();
        let m = monitor(vec![cert(
            1,
            &["foo.com", "www.foo.com"],
            "2021-01-01",
            398,
        )]);
        let w = whois(&[("foo.com", "2015-05-05", "2021-06-01")]);
        let records = RegistrantChangeDetector::new(&psl).detect(&w, &m);
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.class, StalenessClass::RegistrantChange);
        assert_eq!(r.domain, dn("foo.com"));
        assert_eq!(r.invalidation, d("2021-06-01"));
        assert_eq!(r.fqdns.len(), 2);
        // Staleness runs from the change to notAfter.
        assert_eq!(
            r.staleness_days(),
            (d("2021-01-01") + Duration::days(398)) - d("2021-06-01")
        );
    }

    #[test]
    fn non_spanning_certs_ignored() {
        let psl = SuffixList::default_list();
        let m = monitor(vec![
            cert(1, &["foo.com"], "2020-01-01", 90), // expired before change
            cert(2, &["foo.com"], "2021-07-01", 90), // issued after change
        ]);
        let w = whois(&[("foo.com", "2015-05-05", "2021-06-01")]);
        assert!(RegistrantChangeDetector::new(&psl)
            .detect(&w, &m)
            .is_empty());
    }

    #[test]
    fn boundary_strictness() {
        let psl = SuffixList::default_list();
        // Cert issued exactly on the change date: not stale (notBefore is
        // not < creation).
        let m = monitor(vec![cert(1, &["foo.com"], "2021-06-01", 90)]);
        let w = whois(&[("foo.com", "2015-05-05", "2021-06-01")]);
        assert!(RegistrantChangeDetector::new(&psl)
            .detect(&w, &m)
            .is_empty());
    }

    #[test]
    fn subdomain_sans_match_by_e2ld() {
        let psl = SuffixList::default_list();
        let m = monitor(vec![cert(1, &["api.foo.com"], "2021-01-01", 398)]);
        let w = whois(&[("foo.com", "2015-05-05", "2021-06-01")]);
        let records = RegistrantChangeDetector::new(&psl).detect(&w, &m);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fqdns, vec![dn("api.foo.com")]);
    }

    #[test]
    fn cruise_liner_keeps_only_changed_domains_fqdns() {
        let psl = SuffixList::default_list();
        let m = monitor(vec![cert(
            1,
            &["sni1.cloudflaressl.com", "foo.com", "other-customer.com"],
            "2021-01-01",
            365,
        )]);
        let w = whois(&[("foo.com", "2015-05-05", "2021-06-01")]);
        let records = RegistrantChangeDetector::new(&psl).detect(&w, &m);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].fqdns, vec![dn("foo.com")]);
    }

    #[test]
    fn multiple_changes_multiple_records() {
        let psl = SuffixList::default_list();
        // One long cert spans two changes of the same domain.
        let m = monitor(vec![cert(1, &["foo.com"], "2017-01-01", 825)]);
        let mut w = WhoisDataset::new();
        w.observe(dn("foo.com"), d("2015-01-01"));
        w.observe(dn("foo.com"), d("2017-06-01"));
        w.observe(dn("foo.com"), d("2018-06-01"));
        let records = RegistrantChangeDetector::new(&psl).detect(&w, &m);
        assert_eq!(records.len(), 2);
        assert_ne!(records[0].invalidation, records[1].invalidation);
    }

    #[test]
    fn first_registration_never_matches() {
        let psl = SuffixList::default_list();
        // Only one creation date → no registrant change.
        let m = monitor(vec![cert(1, &["foo.com"], "2021-01-01", 398)]);
        let mut w = WhoisDataset::new();
        w.observe(dn("foo.com"), d("2021-02-01"));
        assert!(RegistrantChangeDetector::new(&psl)
            .detect(&w, &m)
            .is_empty());
    }
}
