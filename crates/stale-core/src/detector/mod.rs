//! The three third-party stale certificate detectors (§4.1–§4.3), plus a
//! [`DetectionSuite`] that runs all of them over a simulated world's
//! datasets.

pub mod key_compromise;
pub mod managed_tls;
pub mod registrant_change;

use crate::staleness::{StaleCertRecord, StalenessClass};
use psl::SuffixList;
use worldsim::WorldDatasets;

/// All detector outputs over one dataset bundle.
pub struct DetectionSuite {
    /// The CRL × CT join with §4.1 filters (all revocation reasons).
    pub revocations: key_compromise::RevocationAnalysis,
    /// Key-compromise stale certificates (the §5.1 subset).
    pub key_compromise: Vec<StaleCertRecord>,
    /// Registrant-change stale certificates (§5.2).
    pub registrant_change: Vec<StaleCertRecord>,
    /// Managed-TLS departure stale certificates (§5.3).
    pub managed_tls: Vec<StaleCertRecord>,
}

impl DetectionSuite {
    /// Run every detector over `data`.
    pub fn run(data: &WorldDatasets, psl: &SuffixList) -> DetectionSuite {
        let revocations = key_compromise::RevocationAnalysis::run(
            &data.crl,
            &data.monitor,
            data.crl_window.start,
        );
        let key_compromise = revocations.stale_records();
        let registrant_change = registrant_change::RegistrantChangeDetector::new(psl)
            .detect(&data.whois, &data.monitor);
        let managed_tls = managed_tls::ManagedTlsDetector::new(&data.cdn_config, psl).detect(
            &data.adns,
            &data.monitor,
            data.adns_window,
        );
        DetectionSuite {
            revocations,
            key_compromise,
            registrant_change,
            managed_tls,
        }
    }

    /// Records of one class.
    pub fn records(&self, class: StalenessClass) -> &[StaleCertRecord] {
        match class {
            StalenessClass::KeyCompromise => &self.key_compromise,
            StalenessClass::RegistrantChange => &self.registrant_change,
            StalenessClass::ManagedTlsDeparture => &self.managed_tls,
        }
    }

    /// All records across classes.
    pub fn all_records(&self) -> impl Iterator<Item = &StaleCertRecord> {
        self.key_compromise
            .iter()
            .chain(self.registrant_change.iter())
            .chain(self.managed_tls.iter())
    }
}
