//! `stale-core` — the paper's primary contribution: detection and analysis
//! of third-party stale TLS certificates.
//!
//! A *stale certificate* is a valid, unexpired certificate whose attested
//! facts no longer reflect reality. Three invalidation scenarios hand a
//! third party a valid TLS key for a domain it does not control:
//!
//! 1. **Key compromise** (§5.1) — detected by joining CRL revocations
//!    (`reasonCode = keyCompromise`) against the CT corpus;
//! 2. **Domain registrant change** (§5.2) — detected by intersecting
//!    registry creation dates with certificate validity windows;
//! 3. **Managed TLS departure** (§5.3) — detected by diffing neighbouring
//!    days of active-DNS scans for disappearing CDN delegation.
//!
//! On top of the detectors ([`detector`]) sit the analyses that produce
//! every figure and table of the evaluation: staleness distributions
//! ([`staleness`], [`stats`]), survival analysis ([`survival`]), the
//! certificate-lifetime-reduction simulation of §6 ([`lifetime_sim`]),
//! domain popularity (Table 6, [`popularity`]) and reputation (Table 5,
//! [`reputation`]). [`taxonomy`] encodes the invalidation-event taxonomy
//! of Tables 1–2. [`report`] renders results as text tables and CSV.

pub mod detector;
pub mod first_party;
pub mod incremental;
pub mod lifetime_sim;
pub mod mitigation;
pub mod popularity;
pub mod report;
pub mod reputation;
pub mod staleness;
pub mod stats;
pub mod survival;
pub mod tables;
pub mod taxonomy;
pub mod timeline;
pub mod views;

pub use detector::key_compromise::{RevocationAnalysis, RevocationFilterStats, RevokedCert};
pub use detector::managed_tls::ManagedTlsDetector;
pub use detector::registrant_change::RegistrantChangeDetector;
pub use detector::DetectionSuite;
pub use incremental::{DomainInterner, KcIncremental, MtdIncremental, RcIncremental, StaleEvent};
pub use lifetime_sim::{CapResult, LifetimeSimulation};
pub use staleness::{StaleCertRecord, StalenessClass, StalenessSummary};
pub use survival::SurvivalCurve;
pub use tables::TableView;
pub use taxonomy::{CertInfoCategory, ControlChange, InvalidationEvent, SecurityImpact};
