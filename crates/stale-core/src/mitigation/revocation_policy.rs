//! Client revocation-checking policies and the interception experiment.
//!
//! §2.4: Chrome and Edge don't check subscriber revocation at all; Firefox
//! and Safari check but *soft-fail* — if no OCSP answer arrives, the
//! connection proceeds. The stale-certificate adversary is on-path by
//! assumption (that's what makes the stolen key useful), so it can drop
//! the OCSP traffic. Only OCSP Must-Staple hard-fails: the attacker must
//! present a fresh, signed, `Good` response it cannot forge.

use ca::ocsp::{CertStatus, OcspResponse};
use crypto::PublicKey;
use stale_types::Date;
use x509::cert::Extension;
use x509::Certificate;

/// What a client does about revocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevocationPolicy {
    /// Never check (Chrome/Edge subscriber certificates).
    NoCheck,
    /// Check OCSP; proceed if the check cannot complete (Firefox/Safari
    /// default).
    SoftFail,
    /// Check OCSP; abort if the check cannot complete.
    HardFail,
}

/// The network between client and OCSP responder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkCondition {
    /// OCSP traffic flows normally.
    Normal,
    /// An on-path attacker drops revocation traffic (the stale-cert
    /// threat model's adversary position).
    OcspBlocked,
}

/// Result of the revocation-checking step of a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionOutcome {
    /// Handshake proceeds.
    Accepted,
    /// Aborted because the certificate is known revoked.
    RejectedRevoked,
    /// Aborted because required revocation information was missing.
    RejectedNoStatus,
}

/// Whether the certificate demands stapling (RFC 7633).
pub fn requires_staple(cert: &Certificate) -> bool {
    cert.tbs
        .extensions
        .iter()
        .any(|e| matches!(e, Extension::MustStaple))
}

/// Evaluate the revocation step of a TLS handshake.
///
/// `stapled` is the OCSP response the *server* presented (which an
/// attacker can only replay while fresh — it cannot forge one);
/// `network` governs whether a client-side OCSP fetch can succeed;
/// `fetch` produces the responder's answer when the network allows.
pub fn connection_outcome(
    cert: &Certificate,
    policy: RevocationPolicy,
    network: NetworkCondition,
    stapled: Option<&OcspResponse>,
    responder_key: &PublicKey,
    today: Date,
    fetch: impl Fn() -> OcspResponse,
) -> ConnectionOutcome {
    let staple_required = requires_staple(cert);
    // A usable staple: verifies, fresh, matches the certificate.
    let usable_staple = stapled.filter(|r| {
        r.verify(responder_key)
            && r.fresh_at(today)
            && r.serial == cert.tbs.serial
            && Some(r.authority_key_id) == cert.tbs.authority_key_id()
    });
    if staple_required {
        // Must-Staple hard-fails on a missing staple regardless of
        // policy (this is the Firefox behaviour the paper footnotes).
        return match usable_staple {
            None => ConnectionOutcome::RejectedNoStatus,
            Some(r) => match r.status {
                CertStatus::Good => ConnectionOutcome::Accepted,
                _ => ConnectionOutcome::RejectedRevoked,
            },
        };
    }
    match policy {
        RevocationPolicy::NoCheck => ConnectionOutcome::Accepted,
        RevocationPolicy::SoftFail | RevocationPolicy::HardFail => {
            // Prefer a stapled response; otherwise fetch if the network
            // allows.
            let status = match usable_staple {
                Some(r) => Some(r.status),
                None => match network {
                    NetworkCondition::Normal => Some(fetch().status),
                    NetworkCondition::OcspBlocked => None,
                },
            };
            match (status, policy) {
                (Some(CertStatus::Revoked { .. }), _) => ConnectionOutcome::RejectedRevoked,
                (Some(_), _) => ConnectionOutcome::Accepted,
                (None, RevocationPolicy::HardFail) => ConnectionOutcome::RejectedNoStatus,
                // SoftFail (NoCheck is unreachable in this branch).
                (None, _) => ConnectionOutcome::Accepted,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca::authority::{CertificateAuthority, IssuanceRequest};
    use ca::ocsp::respond;
    use ca::policy::CaPolicy;
    use crypto::KeyPair;
    use ct::log::LogPool;
    use stale_types::{domain::dn, CaId};
    use x509::revocation::RevocationReason;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    struct Fixture {
        ca: CertificateAuthority,
        cert: Certificate,
        stapled_cert: Certificate,
    }

    fn fixture() -> Fixture {
        let mut ct = LogPool::with_yearly_shards("pol", 13, 2021, 2025);
        let mut ca = CertificateAuthority::new(
            CaId(33),
            "Policy CA",
            KeyPair::from_seed([33; 32]),
            CaPolicy::commercial(),
        );
        let cert = ca
            .issue(
                &IssuanceRequest {
                    domains: vec![dn("victim.com")],
                    public_key: KeyPair::from_seed([34; 32]).public(),
                    requested_lifetime: None,
                },
                d("2022-01-01"),
                &mut ct,
            )
            .unwrap();
        // A second subscriber opted into Must-Staple.
        let stapled_cert = {
            let key = KeyPair::from_seed([35; 32]);
            ca.sign_certificate(
                x509::CertificateBuilder::tls_leaf(key.public())
                    .subject_cn("stapler.com")
                    .san(dn("stapler.com"))
                    .validity_days(d("2022-01-01"), stale_types::Duration::days(398))
                    .must_staple(),
            )
        };
        Fixture {
            ca,
            cert,
            stapled_cert,
        }
    }

    #[test]
    fn revoked_cert_blocked_only_when_check_completes() {
        let mut f = fixture();
        f.ca.revoke(
            f.cert.tbs.serial,
            d("2022-03-01"),
            RevocationReason::KeyCompromise,
        )
        .unwrap();
        let today = d("2022-03-10");
        let fetch = || respond(&f.ca, f.cert.tbs.serial, today);
        let key = f.ca.public_key();
        // Chrome-style: accepted, revocation never consulted.
        assert_eq!(
            connection_outcome(
                &f.cert,
                RevocationPolicy::NoCheck,
                NetworkCondition::Normal,
                None,
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::Accepted
        );
        // Soft-fail with working network: rejected.
        assert_eq!(
            connection_outcome(
                &f.cert,
                RevocationPolicy::SoftFail,
                NetworkCondition::Normal,
                None,
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::RejectedRevoked
        );
        // Soft-fail with an on-path attacker dropping OCSP: ACCEPTED —
        // the §2.4 circumvention.
        assert_eq!(
            connection_outcome(
                &f.cert,
                RevocationPolicy::SoftFail,
                NetworkCondition::OcspBlocked,
                None,
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::Accepted
        );
        // Hard-fail resists the same attacker.
        assert_eq!(
            connection_outcome(
                &f.cert,
                RevocationPolicy::HardFail,
                NetworkCondition::OcspBlocked,
                None,
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::RejectedNoStatus
        );
    }

    #[test]
    fn must_staple_hard_fails_without_staple() {
        let f = fixture();
        let today = d("2022-02-01");
        let key = f.ca.public_key();
        let fetch = || respond(&f.ca, f.stapled_cert.tbs.serial, today);
        assert!(requires_staple(&f.stapled_cert));
        assert!(!requires_staple(&f.cert));
        // No staple presented: rejected even under the laxest policy.
        assert_eq!(
            connection_outcome(
                &f.stapled_cert,
                RevocationPolicy::NoCheck,
                NetworkCondition::OcspBlocked,
                None,
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::RejectedNoStatus
        );
        // Fresh Good staple: accepted.
        let staple = respond(&f.ca, f.stapled_cert.tbs.serial, today);
        assert_eq!(
            connection_outcome(
                &f.stapled_cert,
                RevocationPolicy::NoCheck,
                NetworkCondition::OcspBlocked,
                Some(&staple),
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::Accepted
        );
    }

    #[test]
    fn stale_staple_rejected() {
        let f = fixture();
        let key = f.ca.public_key();
        let staple = respond(&f.ca, f.stapled_cert.tbs.serial, d("2022-02-01"));
        // Attacker replays the old staple after it expired.
        let later = d("2022-02-20");
        let fetch = || respond(&f.ca, f.stapled_cert.tbs.serial, later);
        assert_eq!(
            connection_outcome(
                &f.stapled_cert,
                RevocationPolicy::NoCheck,
                NetworkCondition::OcspBlocked,
                Some(&staple),
                &key,
                later,
                fetch
            ),
            ConnectionOutcome::RejectedNoStatus
        );
    }

    #[test]
    fn revoked_staple_rejected() {
        let mut f = fixture();
        f.ca.revoke(
            f.stapled_cert.tbs.serial,
            d("2022-03-01"),
            RevocationReason::KeyCompromise,
        )
        .unwrap();
        let today = d("2022-03-05");
        let key = f.ca.public_key();
        let staple = respond(&f.ca, f.stapled_cert.tbs.serial, today);
        let fetch = || respond(&f.ca, f.stapled_cert.tbs.serial, today);
        assert_eq!(
            connection_outcome(
                &f.stapled_cert,
                RevocationPolicy::SoftFail,
                NetworkCondition::Normal,
                Some(&staple),
                &key,
                today,
                fetch
            ),
            ConnectionOutcome::RejectedRevoked
        );
    }
}
