//! A CRLite-style revocation filter cascade (§7.2's "if new proposals
//! such as CRLite gain adoption").
//!
//! CRLite pushes the *entire* revocation set to every client as a cascade
//! of Bloom filters, so revocation checking needs no network fetch — the
//! soft-fail bypass disappears. The cascade construction guarantees
//! exactness over the enrolled population: level 0 holds the revoked set;
//! any unrevoked certificate that level 0 falsely matches goes into level
//! 1; revoked certificates falsely matched by level 1 go into level 2; and
//! so on until a level has no false positives. A lookup walks the levels
//! and the parity of the last matching level decides.

use crypto::sha256::Sha256;
use stale_types::CertId;

/// A fixed-size Bloom filter over [`CertId`]s.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    bit_count: u64,
    hashes: u32,
    /// Level salt so cascade levels hash independently.
    salt: u32,
}

impl BloomFilter {
    /// Size a filter for `expected` entries at roughly 1% false-positive
    /// rate (m ≈ 9.6·n, k = 7), with a floor for tiny sets.
    pub fn sized_for(expected: usize, salt: u32) -> BloomFilter {
        let bit_count = (expected.max(8) as u64) * 10;
        BloomFilter {
            bits: vec![0u64; bit_count.div_ceil(64) as usize],
            bit_count,
            hashes: 7,
            salt,
        }
    }

    fn positions(&self, id: &CertId) -> impl Iterator<Item = u64> + '_ {
        // Double hashing over SHA-256(salt || id).
        let mut h = Sha256::new();
        h.update(&self.salt.to_be_bytes()).update(id.as_bytes());
        let digest = h.finalize();
        // Big-endian fold of digest[0..8] and digest[8..16] without the
        // slice-length dance.
        let (mut h1, mut h2) = (0u64, 0u64);
        for (i, b) in digest.iter().enumerate().take(16) {
            if i < 8 {
                h1 = (h1 << 8) | u64::from(*b);
            } else {
                h2 = (h2 << 8) | u64::from(*b);
            }
        }
        let h2 = h2 | 1;
        let m = self.bit_count;
        (0..self.hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Insert an id.
    pub fn insert(&mut self, id: &CertId) {
        let positions: Vec<u64> = self.positions(id).collect();
        for p in positions {
            self.bits[(p / 64) as usize] |= 1 << (p % 64);
        }
    }

    /// Probabilistic membership: false positives possible, false
    /// negatives impossible.
    pub fn contains(&self, id: &CertId) -> bool {
        self.positions(id)
            .all(|p| self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0)
    }

    /// Size in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

/// The filter cascade: exact over the population it was built from.
#[derive(Debug, Clone)]
pub struct CrliteFilter {
    levels: Vec<BloomFilter>,
    revoked_count: usize,
    population_count: usize,
}

impl CrliteFilter {
    /// Build from the full enrolled population and the revoked subset.
    ///
    /// Every id in `revoked` must be drawn from `population`.
    pub fn build(population: &[CertId], revoked: &[CertId]) -> CrliteFilter {
        let mut levels: Vec<BloomFilter> = Vec::new();
        // include[i] = ids the current level must match;
        // exclude = ids it must (eventually) not match.
        let mut include: Vec<CertId> = revoked.to_vec();
        let mut exclude: Vec<CertId> = population
            .iter()
            .filter(|id| !revoked.contains(id))
            .cloned()
            .collect();
        let mut salt = 0u32;
        while !include.is_empty() {
            let mut filter = BloomFilter::sized_for(include.len(), salt);
            for id in &include {
                filter.insert(id);
            }
            // False positives among the excluded set become the next
            // level's include set.
            let false_positives: Vec<CertId> = exclude
                .iter()
                .filter(|id| filter.contains(id))
                .cloned()
                .collect();
            levels.push(filter);
            exclude = include;
            include = false_positives;
            salt += 1;
            if salt > 64 {
                // Pathological input; the cascade always terminates in
                // practice because each level shrinks ~100-fold.
                break;
            }
        }
        CrliteFilter {
            levels,
            revoked_count: revoked.len(),
            population_count: population.len(),
        }
    }

    /// Is `id` revoked? Exact for ids in the build population.
    pub fn is_revoked(&self, id: &CertId) -> bool {
        let mut verdict = false;
        for (depth, level) in self.levels.iter().enumerate() {
            if !level.contains(id) {
                break;
            }
            // Matching an even level asserts "revoked", odd asserts
            // "exception".
            verdict = depth % 2 == 0;
        }
        verdict
    }

    /// Number of cascade levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Total size in bytes — the quantity that makes CRLite shippable
    /// compared to full CRLs.
    pub fn byte_size(&self) -> usize {
        self.levels.iter().map(BloomFilter::byte_size).sum()
    }

    /// Build-population statistics `(revoked, total)`.
    pub fn stats(&self) -> (usize, usize) {
        (self.revoked_count, self.population_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> CertId {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&n.to_be_bytes());
        CertId::from_bytes(bytes)
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut filter = BloomFilter::sized_for(100, 0);
        for n in 0..100 {
            filter.insert(&id(n));
        }
        for n in 0..100 {
            assert!(filter.contains(&id(n)));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low() {
        let mut filter = BloomFilter::sized_for(1000, 0);
        for n in 0..1000 {
            filter.insert(&id(n));
        }
        let fps = (1000..21_000).filter(|&n| filter.contains(&id(n))).count();
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn cascade_is_exact_over_population() {
        let population: Vec<CertId> = (0..5_000).map(id).collect();
        let revoked: Vec<CertId> = (0..5_000).step_by(40).map(id).collect();
        let filter = CrliteFilter::build(&population, &revoked);
        for cert in &population {
            let truth = revoked.contains(cert);
            assert_eq!(filter.is_revoked(cert), truth, "{cert}");
        }
        assert_eq!(filter.stats(), (125, 5_000));
        assert!(filter.level_count() >= 1);
    }

    #[test]
    fn cascade_much_smaller_than_id_list() {
        let population: Vec<CertId> = (0..20_000).map(id).collect();
        let revoked: Vec<CertId> = (0..20_000).step_by(50).map(id).collect();
        let filter = CrliteFilter::build(&population, &revoked);
        // Shipping raw 32-byte ids for the whole population would cost
        // 640 KB; the cascade should be far below even the revoked list.
        let raw_population = population.len() * 32;
        assert!(
            filter.byte_size() * 20 < raw_population,
            "{} bytes",
            filter.byte_size()
        );
    }

    #[test]
    fn empty_revocation_set() {
        let population: Vec<CertId> = (0..100).map(id).collect();
        let filter = CrliteFilter::build(&population, &[]);
        assert!(population.iter().all(|c| !filter.is_revoked(c)));
        assert_eq!(filter.level_count(), 0);
        assert_eq!(filter.byte_size(), 0);
    }

    #[test]
    fn everything_revoked() {
        let population: Vec<CertId> = (0..100).map(id).collect();
        let filter = CrliteFilter::build(&population, &population);
        assert!(population.iter().all(|c| filter.is_revoked(c)));
    }
}
