//! Mitigations against third-party stale certificates (§7.2).
//!
//! The paper's discussion evaluates three directions beyond shorter
//! lifetimes, all implemented here so their effect on the measured stale
//! populations can be quantified:
//!
//! * [`revocation_policy`] — client-side revocation checking as browsers
//!   actually deploy it (no-check / soft-fail / hard-fail / Must-Staple),
//!   with the on-path interception experiment that shows why soft-fail
//!   fails against exactly the adversary who holds a stale key;
//! * [`crlite`] — a CRLite-style filter cascade (Bloom filters, no
//!   network fetch at handshake time) pushing *all* revocations to
//!   clients; the §7.2 "if CRLite gains adoption" scenario;
//! * [`dane`] — DANE/TLSA: replacing the months-long certificate cache
//!   with DNS-TTL-scale key pinning, quantifying the staleness-window
//!   collapse the paper projects.

pub mod crlite;
pub mod dane;
pub mod revocation_policy;

pub use crlite::{BloomFilter, CrliteFilter};
pub use dane::{dane_staleness_days, DaneDeployment};
pub use revocation_policy::{
    connection_outcome, ConnectionOutcome, NetworkCondition, RevocationPolicy,
};
