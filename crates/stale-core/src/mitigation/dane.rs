//! DANE/TLSA analysis (§7.2).
//!
//! "Proposals such as DANE … align cryptographic keys with the
//! authoritative source for name information … likely reducing
//! authentication cache durations (hours-scale TTLs for DANE)." Under
//! DANE-EE, the key a client will accept for a name is pinned by a TLSA
//! record whose staleness is bounded by its DNS TTL: once the record
//! changes, old keys stop authenticating within one TTL. This module
//! quantifies that collapse against the certificate-lifetime staleness the
//! detectors measured.

use crate::staleness::StaleCertRecord;
use crypto::sha256::sha256;
use crypto::PublicKey;
use dns::record::{RData, Ttl};
use stale_types::DomainName;

/// A DANE deployment model for a population of domains.
#[derive(Debug, Clone, Copy)]
pub struct DaneDeployment {
    /// TLSA record TTL.
    pub ttl: Ttl,
}

impl DaneDeployment {
    /// A typical hours-scale deployment (1-hour TTL).
    pub fn typical() -> Self {
        DaneDeployment { ttl: Ttl::HOUR }
    }

    /// The TLSA record pinning `key` for `_443._tcp.<domain>` (DANE-EE,
    /// SPKI, SHA-256).
    pub fn tlsa_record(&self, _domain: &DomainName, key: &PublicKey) -> RData {
        RData::Tlsa {
            usage: 3,
            selector: 1,
            matching_type: 1,
            association: sha256(key.as_bytes()).to_vec(),
        }
    }

    /// Whether a presented key matches a TLSA record.
    pub fn matches(&self, record: &RData, key: &PublicKey) -> bool {
        match record {
            RData::Tlsa {
                usage: 3,
                selector: 1,
                matching_type: 1,
                association,
            } => association.as_slice() == sha256(key.as_bytes()),
            _ => false,
        }
    }

    /// Residual staleness in days under DANE: the old key keeps
    /// authenticating only until cached TLSA records expire.
    pub fn staleness_days(&self) -> f64 {
        self.ttl.0 as f64 / 86_400.0
    }
}

/// Total staleness-days a record population would retain under DANE vs
/// what it has under certificate caching: `(pki_days, dane_days)`.
///
/// Each stale certificate's months-long window collapses to (at most) one
/// TTL per affected domain.
pub fn dane_staleness_days(records: &[StaleCertRecord], deployment: DaneDeployment) -> (f64, f64) {
    let pki: i64 = records.iter().map(|r| r.staleness_days().num_days()).sum();
    let dane = records.len() as f64 * deployment.staleness_days();
    (pki as f64, dane)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::StalenessClass;
    use crypto::KeyPair;
    use stale_types::{domain::dn, CertId, Date, DateInterval, Duration};

    #[test]
    fn tlsa_pin_matches_only_its_key() {
        let deployment = DaneDeployment::typical();
        let key = KeyPair::from_seed([1; 32]);
        let other = KeyPair::from_seed([2; 32]);
        let record = deployment.tlsa_record(&dn("foo.com"), &key.public());
        assert!(deployment.matches(&record, &key.public()));
        assert!(!deployment.matches(&record, &other.public()));
        // Non-TLSA records never match.
        assert!(!deployment.matches(&RData::Txt("x".into()), &key.public()));
    }

    #[test]
    fn staleness_collapses_to_ttl_scale() {
        let start = Date::parse("2022-01-01").unwrap();
        let records: Vec<StaleCertRecord> = (0..10)
            .map(|i| StaleCertRecord {
                cert_id: CertId::from_bytes([i as u8; 32]),
                class: StalenessClass::ManagedTlsDeparture,
                domain: dn("foo.com"),
                fqdns: vec![dn("foo.com")],
                issuer: "CA".into(),
                invalidation: start + Duration::days(30),
                validity: DateInterval::from_start(start, Duration::days(365)).unwrap(),
            })
            .collect();
        let (pki, dane) = dane_staleness_days(&records, DaneDeployment::typical());
        assert_eq!(pki, 3350.0); // 10 × 335 days
        assert!((dane - 10.0 / 24.0).abs() < 1e-9); // 10 × one hour
        assert!(dane / pki < 0.001, "DANE removes >99.9% of staleness-days");
    }
}
