//! First-party staleness: key rotation (Table 2, "Key disuse: e.g.,
//! rotation").
//!
//! When a subscriber rotates keys before the old certificate expires, the
//! old certificate is stale — but only the *first party* holds it, so the
//! paper classifies the risk as minimal. Measuring it from CT alone is
//! still useful: it sizes the ambient population of valid-but-disused
//! keys and is the control group against which the three third-party
//! classes stand out. The detector groups certificates by exact SAN set
//! and flags each succession where the subject key changes while the
//! predecessor is still unexpired.

use ct::monitor::CtMonitor;
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, Duration, KeyId};
use std::collections::BTreeMap;

/// One detected rotation: the old certificate outlives its key's use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyRotationEvent {
    /// The superseded certificate.
    pub old_cert: CertId,
    /// The replacing certificate.
    pub new_cert: CertId,
    /// SAN-set label (first SAN, for reporting).
    pub label: String,
    /// Old subject key.
    pub old_key: KeyId,
    /// New subject key.
    pub new_key: KeyId,
    /// Rotation day (issuance of the replacement).
    pub rotated: Date,
    /// The old certificate's validity.
    pub old_validity: DateInterval,
}

impl KeyRotationEvent {
    /// First-party staleness window of the superseded certificate.
    pub fn staleness_days(&self) -> Duration {
        self.old_validity.suffix_from(self.rotated).len()
    }
}

/// Detect key rotations across a CT corpus.
///
/// Certificates are grouped by their full SAN set; within each group,
/// consecutive issuances (by `notBefore`) with differing subject keys,
/// where the older certificate is unexpired at the newer one's issuance,
/// are rotations.
pub fn detect_key_rotations(monitor: &CtMonitor) -> Vec<KeyRotationEvent> {
    // SAN-set key → (notBefore, cert).
    let mut groups: BTreeMap<String, Vec<&ct::monitor::DedupedCert>> = BTreeMap::new();
    for cert in monitor.corpus_unfiltered() {
        let tbs = &cert.certificate.tbs;
        if tbs.san().is_empty() {
            continue;
        }
        let mut names: Vec<&str> = tbs.san().iter().map(|s| s.as_str()).collect();
        names.sort_unstable();
        groups.entry(names.join(",")).or_default().push(cert);
    }
    let mut events = Vec::new();
    for (_, mut certs) in groups {
        certs.sort_by_key(|c| (c.certificate.tbs.not_before(), c.cert_id));
        for pair in certs.windows(2) {
            let (old, new) = (&pair[0], &pair[1]);
            let old_tbs = &old.certificate.tbs;
            let new_tbs = &new.certificate.tbs;
            let (Some(old_key), Some(new_key)) =
                (old_tbs.subject_key_id(), new_tbs.subject_key_id())
            else {
                continue;
            };
            if old_key == new_key {
                continue; // same key: plain renewal, nothing disused
            }
            if !old_tbs.validity.contains(new_tbs.not_before()) {
                continue; // old cert already expired: no overlap
            }
            events.push(KeyRotationEvent {
                old_cert: old.cert_id,
                new_cert: new.cert_id,
                label: old_tbs.san()[0].to_string(),
                old_key,
                new_key,
                rotated: new_tbs.not_before(),
                old_validity: old_tbs.validity,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crypto::KeyPair;
    use stale_types::domain::dn;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn cert(serial: u128, key_seed: u8, nb: &str, days: i64, sans: &[&str]) -> x509::Certificate {
        CertificateBuilder::tls_leaf(KeyPair::from_seed([key_seed; 32]).public())
            .serial(serial)
            .issuer_cn("Rot CA")
            .subject_cn(sans[0])
            .sans(sans.iter().map(|s| dn(s)))
            .validity_days(d(nb), Duration::days(days))
            .sign(&KeyPair::from_seed([200; 32]))
    }

    fn monitor(certs: Vec<x509::Certificate>) -> CtMonitor {
        let mut m = CtMonitor::new();
        for c in certs {
            let date = c.tbs.not_before();
            m.ingest(c, date);
        }
        m
    }

    #[test]
    fn rotation_with_overlap_detected() {
        let m = monitor(vec![
            cert(1, 10, "2022-01-01", 398, &["foo.com"]),
            cert(2, 11, "2022-06-01", 398, &["foo.com"]), // new key, old unexpired
        ]);
        let events = detect_key_rotations(&m);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.rotated, d("2022-06-01"));
        // Old cert has 398-151 days left.
        assert_eq!(e.staleness_days(), Duration::days(398 - 151));
        assert_ne!(e.old_key, e.new_key);
    }

    #[test]
    fn same_key_renewal_is_not_rotation() {
        let m = monitor(vec![
            cert(1, 10, "2022-01-01", 90, &["foo.com"]),
            cert(2, 10, "2022-03-20", 90, &["foo.com"]),
        ]);
        assert!(detect_key_rotations(&m).is_empty());
    }

    #[test]
    fn expired_predecessor_is_not_rotation() {
        let m = monitor(vec![
            cert(1, 10, "2022-01-01", 90, &["foo.com"]),
            cert(2, 11, "2022-06-01", 90, &["foo.com"]), // old expired in April
        ]);
        assert!(detect_key_rotations(&m).is_empty());
    }

    #[test]
    fn groups_are_by_exact_san_set() {
        let m = monitor(vec![
            cert(1, 10, "2022-01-01", 398, &["foo.com"]),
            cert(2, 11, "2022-06-01", 398, &["foo.com", "www.foo.com"]), // different set
        ]);
        assert!(detect_key_rotations(&m).is_empty());
        // Order of SANs does not matter.
        let m2 = monitor(vec![
            cert(1, 10, "2022-01-01", 398, &["foo.com", "www.foo.com"]),
            cert(2, 11, "2022-06-01", 398, &["www.foo.com", "foo.com"]),
        ]);
        assert_eq!(detect_key_rotations(&m2).len(), 1);
    }

    #[test]
    fn chains_of_rotations_counted_pairwise() {
        let m = monitor(vec![
            cert(1, 10, "2022-01-01", 398, &["foo.com"]),
            cert(2, 11, "2022-05-01", 398, &["foo.com"]),
            cert(3, 12, "2022-09-01", 398, &["foo.com"]),
        ]);
        assert_eq!(detect_key_rotations(&m).len(), 2);
    }
}
