//! Domain popularity analysis (Table 6).
//!
//! For each staleness class, count how many affected e2LDs ever appeared
//! in the Top 1K / 10K / 100K / 1M of the biannual popularity samples,
//! using each domain's best (lowest) rank across all samples.

use crate::staleness::StaleCertRecord;
use psl::SuffixList;
use serde::{Deserialize, Serialize};
use stale_types::DomainName;
use std::collections::BTreeSet;
use worldsim::PopularityArchive;

/// Table 6's rank buckets.
pub const RANK_BUCKETS: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Popularity bucket counts for one staleness class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityBreakdown {
    /// Class label.
    pub label: String,
    /// Cumulative counts per bucket, aligned with [`RANK_BUCKETS`].
    pub bucket_counts: [usize; 4],
    /// Total distinct e2LDs in the class.
    pub total_domains: usize,
}

impl PopularityBreakdown {
    /// Fraction of stale e2LDs that ever ranked in the Top 1M.
    pub fn pct_in_top_1m(&self) -> f64 {
        if self.total_domains == 0 {
            return 0.0;
        }
        self.bucket_counts[3] as f64 / self.total_domains as f64
    }
}

/// Compute the Table 6 row for one class of records.
pub fn popularity_breakdown(
    label: impl Into<String>,
    records: &[StaleCertRecord],
    archive: &PopularityArchive,
    psl: &SuffixList,
) -> PopularityBreakdown {
    // Alexa lists contain e2LDs only, so matching is by e2LD (§5.4).
    let mut e2lds: BTreeSet<DomainName> = BTreeSet::new();
    for r in records {
        e2lds.extend(r.e2lds(psl));
    }
    let mut bucket_counts = [0usize; 4];
    for domain in &e2lds {
        if let Some(rank) = archive.best_rank(domain) {
            for (i, &cut) in RANK_BUCKETS.iter().enumerate() {
                if rank <= cut {
                    bucket_counts[i] += 1;
                }
            }
        }
    }
    PopularityBreakdown {
        label: label.into(),
        bucket_counts,
        total_domains: e2lds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::StalenessClass;
    use stale_types::{domain::dn, CertId, Date, DateInterval, Duration};
    use std::collections::HashMap;
    use worldsim::popularity::RankSample;

    fn record(domain: &str) -> StaleCertRecord {
        let start = Date::parse("2022-01-01").unwrap();
        StaleCertRecord {
            cert_id: CertId::from_bytes([3; 32]),
            class: StalenessClass::RegistrantChange,
            domain: dn(domain),
            fqdns: vec![dn(domain)],
            issuer: "CA".into(),
            invalidation: start + Duration::days(30),
            validity: DateInterval::from_start(start, Duration::days(90)).unwrap(),
        }
    }

    fn archive(entries: &[(&str, u32)]) -> PopularityArchive {
        let mut a = PopularityArchive::new();
        let ranks: HashMap<_, _> = entries.iter().map(|(d, r)| (dn(d), *r)).collect();
        a.add_sample(RankSample {
            date: Date::parse("2020-01-01").unwrap(),
            ranks,
        });
        a
    }

    #[test]
    fn buckets_are_cumulative() {
        let archive = archive(&[
            ("a.com", 500),
            ("b.com", 5_000),
            ("c.com", 50_000),
            ("d.com", 500_000),
        ]);
        let psl = SuffixList::default_list();
        let records: Vec<StaleCertRecord> = ["a.com", "b.com", "c.com", "d.com", "unranked.com"]
            .iter()
            .map(|d| record(d))
            .collect();
        let breakdown = popularity_breakdown("Test", &records, &archive, &psl);
        assert_eq!(breakdown.bucket_counts, [1, 2, 3, 4]);
        assert_eq!(breakdown.total_domains, 5);
        assert!((breakdown.pct_in_top_1m() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn subdomains_match_by_e2ld() {
        let archive = archive(&[("foo.com", 900)]);
        let psl = SuffixList::default_list();
        // Certificate names a subdomain; the popularity list has the e2LD.
        let records = vec![record("cp8.foo.com")];
        let breakdown = popularity_breakdown("Test", &records, &archive, &psl);
        assert_eq!(breakdown.bucket_counts[0], 1);
    }

    #[test]
    fn empty_records() {
        let archive = archive(&[]);
        let psl = SuffixList::default_list();
        let breakdown = popularity_breakdown("Empty", &[], &archive, &psl);
        assert_eq!(breakdown.total_domains, 0);
        assert_eq!(breakdown.pct_in_top_1m(), 0.0);
    }
}
