//! Domain reputation analysis (Table 5).
//!
//! §5.2: sample registrant-change stale domains, query the reputation feed
//! (VirusTotal analogue), keep detections flagged by ≥5 vendors whose
//! first-submission date falls within the prior owner's plausible activity
//! window, and tally malware families vs URL verdict labels — including
//! the malware-only / both / URL-only split the table footnotes.

use crate::staleness::StaleCertRecord;
use serde::{Deserialize, Serialize};
use stale_types::DomainName;
use std::collections::{BTreeMap, BTreeSet};
use worldsim::reputation::{ReputationFeed, VENDOR_THRESHOLD};

/// Table 5's aggregate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReputationReport {
    /// Domains sampled (the paper samples 100K).
    pub sampled: usize,
    /// Domains with any above-threshold verdict.
    pub flagged: usize,
    /// Malware family → domain count.
    pub malware_families: BTreeMap<String, usize>,
    /// URL label → domain count.
    pub url_labels: BTreeMap<String, usize>,
    /// Domains with malware-file associations only.
    pub malware_only: usize,
    /// Domains with both malware and URL verdicts.
    pub both: usize,
    /// Domains with URL verdicts only.
    pub url_only: usize,
}

impl ReputationReport {
    /// Fraction of the sample that is flagged (the paper's ≈1%).
    pub fn flagged_rate(&self) -> f64 {
        if self.sampled == 0 {
            return 0.0;
        }
        self.flagged as f64 / self.sampled as f64
    }

    /// Domains associated with malware files.
    pub fn malware_domains(&self) -> usize {
        self.malware_only + self.both
    }

    /// Domains associated with malicious URLs.
    pub fn url_domains(&self) -> usize {
        self.url_only + self.both
    }
}

/// Run the Table 5 analysis over registrant-change records.
///
/// `sample_cap` bounds the number of distinct domains queried (the paper
/// samples 100K of its 3.6M); pass `usize::MAX` to query everything.
pub fn reputation_report(
    records: &[StaleCertRecord],
    feed: &ReputationFeed,
    sample_cap: usize,
) -> ReputationReport {
    let mut domains: BTreeSet<&DomainName> = BTreeSet::new();
    for r in records {
        domains.insert(&r.domain);
    }
    let mut report = ReputationReport::default();
    for domain in domains.into_iter().take(sample_cap) {
        report.sampled += 1;
        let Some(rep) = feed.query(domain) else {
            continue;
        };
        if rep.vendor_count < VENDOR_THRESHOLD {
            continue;
        }
        // Temporal correlation: the malicious activity must have been
        // first seen before the registrant change (i.e. attributable to
        // the prior owner, whose key access the stale cert extends).
        let Some(change) = records
            .iter()
            .filter(|r| r.domain == *domain)
            .map(|r| r.invalidation)
            .min()
        else {
            continue; // domain set is drawn from records
        };
        if rep.first_submission > change {
            continue;
        }
        report.flagged += 1;
        for family in &rep.malware_families {
            *report.malware_families.entry(family.clone()).or_insert(0) += 1;
        }
        for label in &rep.url_labels {
            *report.url_labels.entry(label.clone()).or_insert(0) += 1;
        }
        match (rep.has_malware(), rep.has_url_verdict()) {
            (true, true) => report.both += 1,
            (true, false) => report.malware_only += 1,
            (false, true) => report.url_only += 1,
            (false, false) => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::StalenessClass;
    use stale_types::{domain::dn, CertId, Date, DateInterval, Duration};
    use worldsim::reputation::DomainReputation;

    fn record(domain: &str, invalidation: &str) -> StaleCertRecord {
        let inv = Date::parse(invalidation).unwrap();
        StaleCertRecord {
            cert_id: CertId::from_bytes([4; 32]),
            class: StalenessClass::RegistrantChange,
            domain: dn(domain),
            fqdns: vec![dn(domain)],
            issuer: "CA".into(),
            invalidation: inv,
            validity: DateInterval::from_start(inv - Duration::days(100), Duration::days(365))
                .unwrap(),
        }
    }

    fn rep(families: &[&str], urls: &[&str], first: &str, vendors: u8) -> DomainReputation {
        DomainReputation {
            malware_families: families.iter().map(|s| s.to_string()).collect(),
            url_labels: urls.iter().map(|s| s.to_string()).collect(),
            first_submission: Date::parse(first).unwrap(),
            vendor_count: vendors,
        }
    }

    #[test]
    fn flags_above_threshold_with_prior_activity() {
        let mut feed = ReputationFeed::new();
        feed.insert(
            dn("evil.com"),
            rep(&["backdoor"], &["phishing"], "2020-06-01", 9),
        );
        feed.insert(dn("meh.com"), rep(&[], &["malicious"], "2020-06-01", 3)); // below bar
        feed.insert(dn("late.com"), rep(&[], &["malware"], "2022-06-01", 9)); // after change
        let records = vec![
            record("evil.com", "2021-01-01"),
            record("meh.com", "2021-01-01"),
            record("late.com", "2021-01-01"),
            record("clean.com", "2021-01-01"),
        ];
        let report = reputation_report(&records, &feed, usize::MAX);
        assert_eq!(report.sampled, 4);
        assert_eq!(report.flagged, 1);
        assert_eq!(report.both, 1);
        assert_eq!(report.malware_families["backdoor"], 1);
        assert_eq!(report.url_labels["phishing"], 1);
        assert!((report.flagged_rate() - 0.25).abs() < 1e-9);
        assert_eq!(report.malware_domains(), 1);
        assert_eq!(report.url_domains(), 1);
    }

    #[test]
    fn sample_cap_limits_queries() {
        let feed = ReputationFeed::new();
        let records: Vec<StaleCertRecord> = (0..10)
            .map(|i| record(&format!("d{i}.com"), "2021-01-01"))
            .collect();
        let report = reputation_report(&records, &feed, 3);
        assert_eq!(report.sampled, 3);
    }

    #[test]
    fn splits_malware_url_only() {
        let mut feed = ReputationFeed::new();
        feed.insert(dn("mw.com"), rep(&["virus"], &[], "2020-01-01", 6));
        feed.insert(dn("url.com"), rep(&[], &["phishing"], "2020-01-01", 6));
        let records = vec![
            record("mw.com", "2021-01-01"),
            record("url.com", "2021-01-01"),
        ];
        let report = reputation_report(&records, &feed, usize::MAX);
        assert_eq!(report.malware_only, 1);
        assert_eq!(report.url_only, 1);
        assert_eq!(report.both, 0);
    }

    #[test]
    fn duplicate_records_sample_once() {
        let mut feed = ReputationFeed::new();
        feed.insert(dn("evil.com"), rep(&["spyware"], &[], "2020-01-01", 6));
        let records = vec![
            record("evil.com", "2021-01-01"),
            record("evil.com", "2021-03-01"), // second stale cert, same domain
        ];
        let report = reputation_report(&records, &feed, usize::MAX);
        assert_eq!(report.sampled, 1);
        assert_eq!(report.flagged, 1);
    }
}
