//! Time-travel `timeline`: one chronological view per certificate,
//! joining all three layers of the audit model.
//!
//! Layer 1 is the world-fact log ([`worldsim::WorldLog`]): the events
//! that created the candidate — its CT issuance, the CRL entry that
//! revoked it, the WHOIS and delegation history of the domains it
//! names. Layer 2 is the decision audit ([`obs::AuditReport`]): what
//! each detector decided about the fingerprint and why. Layer 3 is
//! operational telemetry (the trace JSONL of the runs that touched
//! it). `stale-bench timeline` renders this view from exported files;
//! `stale-served` serves the same rendering from resident state over
//! the `timeline` frame command and `GET /timeline?fp=`.
//!
//! The join keys are facts of the certificate itself, recovered from
//! the hex DER carried by its `cert-issued` event: CRL entries join on
//! (authority key id, serial), domain lifecycle and delegation events
//! join on the SAN list (exact match or parent of a SAN).

use obs::audit::{render_provenance, AuditReport, AMBIGUOUS_LIST_MAX};
use obs::trace::TRACE_SCHEMA;
use obs::{SpanRecord, TraceHeader};
use std::collections::BTreeSet;
use worldsim::bundle::decode_hex;
use worldsim::{WorldEvent, WorldLog};
use x509::cert::Certificate;
use x509::revocation::RevocationReason;

/// Resolve a fingerprint prefix against the `cert-issued` events of a
/// world log. Mirrors [`AuditReport::decisions_for`]'s prefix
/// semantics: unique prefixes resolve, ambiguous ones error with the
/// candidates listed (capped at [`AMBIGUOUS_LIST_MAX`]).
pub fn resolve_fingerprint(log: &WorldLog, prefix: &str) -> Result<String, String> {
    if prefix.is_empty() {
        return Err("empty fingerprint".to_string());
    }
    let matching: BTreeSet<&str> = log
        .events
        .iter()
        .filter_map(|ev| match ev {
            WorldEvent::CertIssued { cert, .. } if cert.starts_with(prefix) => Some(cert.as_str()),
            _ => None,
        })
        .collect();
    let mut certs = matching.iter();
    match (certs.next(), certs.next()) {
        (None, _) => Err(format!(
            "no cert-issued event mentions fingerprint {prefix:?}"
        )),
        (Some(cert), None) => Ok(cert.to_string()),
        (Some(_), Some(_)) => {
            let mut msg = format!(
                "fingerprint prefix {prefix:?} is ambiguous ({} matches):",
                matching.len()
            );
            for cert in matching.iter().take(AMBIGUOUS_LIST_MAX) {
                msg.push_str(&format!("\n  {cert}"));
            }
            if matching.len() > AMBIGUOUS_LIST_MAX {
                msg.push_str(&format!(
                    "\n  ... and {} more",
                    matching.len() - AMBIGUOUS_LIST_MAX
                ));
            }
            Err(msg)
        }
    }
}

/// Whether a world-log domain event concerns one of the certificate's
/// SANs: the event domain is a SAN, or a SAN sits under it.
fn concerns_sans(sans: &[String], domain: &str) -> bool {
    sans.iter()
        .any(|san| san == domain || san.ends_with(&format!(".{domain}")))
}

fn reason_name(code: u8) -> String {
    match RevocationReason::from_code(code) {
        Some(r) => format!("{r:?}"),
        None => format!("code-{code}"),
    }
}

fn list(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.join(",")
    }
}

/// Render the joined timeline for one certificate.
///
/// `audit` and `trace_jsonl` are optional layers: `None` renders a
/// `(not loaded)` placeholder so the world-fact section is always
/// available on its own. Errors on unknown or ambiguous prefixes
/// (byte-compatible shape with `stale-bench explain` errors) and on
/// logs whose DER does not decode.
pub fn render_timeline(
    log: &WorldLog,
    audit: Option<&AuditReport>,
    trace_jsonl: Option<&str>,
    prefix: &str,
) -> Result<String, String> {
    let cert = resolve_fingerprint(log, prefix)?;
    let issued = log
        .events
        .iter()
        .find_map(|ev| match ev {
            WorldEvent::CertIssued { cert: c, der, .. } if *c == cert => Some(der),
            _ => None,
        })
        .ok_or_else(|| format!("no cert-issued event for {cert}"))?;
    let bytes = decode_hex(issued).ok_or_else(|| format!("cert-issued {cert}: der is not hex"))?;
    let parsed =
        Certificate::decode(&bytes).map_err(|e| format!("cert-issued {cert}: bad DER: {e:?}"))?;
    let serial = parsed.tbs.serial.to_string();
    let aki = parsed.tbs.authority_key_id().map(|k| k.to_string());
    let sans: Vec<String> = parsed.tbs.san().iter().map(|d| d.to_string()).collect();

    let mut out = format!("timeline fingerprint {cert}\n");
    out.push_str(&format!(
        "  serial {serial} aki {}\n",
        aki.as_deref().unwrap_or("-")
    ));
    out.push_str(&format!("  sans   {}\n", list(&sans)));

    // Layer 1: world facts, in canonical (chronological) log order.
    let mut rows = Vec::new();
    for ev in &log.events {
        let row = match ev {
            WorldEvent::CertIssued {
                day,
                cert: c,
                entry_count,
                ..
            } if *c == cert => Some(format!(
                "{day}  cert-issued           ct-entries={entry_count}"
            )),
            WorldEvent::CertExpired { day, cert: c } if *c == cert => {
                Some(format!("{day}  cert-expired          validity ends"))
            }
            WorldEvent::CrlEntryAdded {
                day,
                crl_index,
                authority_key_id,
                serial: s,
                revoked,
                reason,
            } if Some(authority_key_id.as_str()) == aki.as_deref() && *s == serial => {
                Some(format!(
                    "{day}  crl-entry-added       crl #{crl_index} revoked={revoked} reason={}",
                    reason_name(*reason)
                ))
            }
            WorldEvent::DomainRegistered { day, domain }
            | WorldEvent::DomainReRegistered { day, domain }
            | WorldEvent::DomainDropped { day, domain }
                if concerns_sans(&sans, domain) =>
            {
                Some(format!("{day}  {:20}  {domain}", ev.kind()))
            }
            WorldEvent::DelegationAdded {
                day,
                domain,
                ns,
                cname,
                ..
            }
            | WorldEvent::DelegationDropped {
                day,
                domain,
                ns,
                cname,
                ..
            } if concerns_sans(&sans, domain) => Some(format!(
                "{day}  {:20}  {domain} ns={} cname={}",
                ev.kind(),
                list(ns),
                list(cname)
            )),
            _ => None,
        };
        if let Some(row) = row {
            rows.push(row);
        }
    }
    out.push_str(&format!("world events ({})\n", rows.len()));
    for row in &rows {
        out.push_str(&format!("  {row}\n"));
    }

    // Layer 2: audit decisions about this fingerprint.
    match audit {
        None => out.push_str("audit decisions (not loaded)\n"),
        Some(report) => match report.decisions_for(&cert) {
            Ok((_, chain)) => {
                out.push_str(&format!("audit decisions ({})\n", chain.len()));
                for d in chain {
                    out.push_str(&format!(
                        "  [{}] {:24} {}\n",
                        d.detector.as_str(),
                        d.verdict.as_str(),
                        render_provenance(&d.provenance)
                    ));
                }
            }
            Err(e) if e.starts_with("no decision") => {
                out.push_str("audit decisions (0)\n");
            }
            Err(e) => return Err(e),
        },
    }

    // Layer 3: telemetry of the runs that touched the store. Spans are
    // per-run, not per-cert; the root spans situate the decision chain
    // in the pipeline that produced it.
    match trace_jsonl {
        None => out.push_str("telemetry (not loaded)\n"),
        Some(text) => {
            let mut lines = text.lines();
            let first = lines.next().ok_or("empty trace file")?;
            let header: TraceHeader =
                serde_json::from_str(first).map_err(|e| format!("trace header: {e}"))?;
            if header.schema != TRACE_SCHEMA {
                return Err(format!(
                    "schema {:?} is not {TRACE_SCHEMA:?}",
                    header.schema
                ));
            }
            let mut roots = Vec::new();
            let mut total = 0usize;
            for (lineno, line) in lines.enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let span: SpanRecord = serde_json::from_str(line)
                    .map_err(|e| format!("trace line {}: {e}", lineno + 2))?;
                total += 1;
                if span.parent.is_none() {
                    roots.push(span);
                }
            }
            out.push_str(&format!("telemetry spans ({total})\n"));
            for span in roots {
                out.push_str(&format!("  {} {}us\n", span.name, span.wall_us));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Trace;
    use worldsim::{ScenarioConfig, World, WorldLog};

    fn tiny_log() -> WorldLog {
        WorldLog::from_datasets(&World::run(ScenarioConfig::tiny()))
    }

    #[test]
    fn prefix_resolution_matches_explain_semantics() {
        let log = tiny_log();
        assert!(resolve_fingerprint(&log, "").is_err());
        assert!(resolve_fingerprint(&log, "zzzz")
            .unwrap_err()
            .contains("no cert-issued event"));
        let full = log
            .events
            .iter()
            .find_map(|ev| match ev {
                WorldEvent::CertIssued { cert, .. } => Some(cert.clone()),
                _ => None,
            })
            .expect("tiny world issues certs");
        assert_eq!(resolve_fingerprint(&log, &full).unwrap(), full);
        // The shortest ambiguous prefix errors with candidates listed.
        let err = resolve_fingerprint(&log, "").unwrap_err();
        assert_eq!(err, "empty fingerprint");
    }

    #[test]
    fn timeline_renders_all_three_layers() {
        let log = tiny_log();
        let full = log
            .events
            .iter()
            .find_map(|ev| match ev {
                WorldEvent::CertIssued { cert, .. } => Some(cert.clone()),
                _ => None,
            })
            .expect("tiny world issues certs");
        // World-only view.
        let body = render_timeline(&log, None, None, &full).expect("renders");
        assert!(
            body.starts_with(&format!("timeline fingerprint {full}\n")),
            "{body}"
        );
        assert!(body.contains("cert-issued"), "{body}");
        assert!(body.contains("cert-expired"), "{body}");
        assert!(body.contains("audit decisions (not loaded)"), "{body}");
        assert!(body.contains("telemetry (not loaded)"), "{body}");
        // With an (empty) audit layer: renders a zero-decision section
        // instead of failing.
        let audit = AuditReport::from_decisions(Vec::new());
        let body = render_timeline(&log, Some(&audit), None, &full).expect("renders");
        assert!(body.contains("audit decisions (0)"), "{body}");
        // With a trace layer: span totals and root spans render.
        let trace = Trace::enabled();
        {
            let _root = trace.span("detect");
        }
        let jsonl = trace.to_jsonl();
        let body = render_timeline(&log, None, Some(&jsonl), &full).expect("renders");
        assert!(body.contains("telemetry spans (1)"), "{body}");
        assert!(body.contains("  detect "), "{body}");
        // Garbage trace input errors instead of rendering nonsense.
        assert!(render_timeline(&log, None, Some("not json"), &full).is_err());
    }

    #[test]
    fn timeline_is_deterministic() {
        let log = tiny_log();
        let full = log
            .events
            .iter()
            .find_map(|ev| match ev {
                WorldEvent::CertIssued { cert, .. } => Some(cert.clone()),
                _ => None,
            })
            .expect("tiny world issues certs");
        let a = render_timeline(&log, None, None, &full).expect("renders");
        let b = render_timeline(&log, None, None, &full).expect("renders");
        assert_eq!(a, b);
    }
}
