//! Shared renderers for the paper tables that are served live.
//!
//! `Table 3` (dataset inventory) and `Table 4` (stale-certificate
//! detection rates) are rendered both by the batch experiment runner
//! (`stale-bench`) and by the resident daemon (`stale-served`). One
//! implementation lives here, below both crates, so the daemon's answers
//! are **byte-identical** to the batch runner's over the same suite —
//! the equivalence the daemon's tests assert — instead of two render
//! paths drifting apart.

use crate::detector::DetectionSuite;
use crate::report::render_table;
use crate::staleness::{StaleCertRecord, StalenessSummary};
use psl::SuffixList;
use stale_types::DateInterval;
use worldsim::WorldDatasets;

/// Table 4: the paper's average daily (certs, FQDNs, e2LDs) per detector
/// row — printed alongside the measured rates for shape comparison.
pub const TABLE4_DAILY: [(&str, f64, f64, f64); 4] = [
    ("Revoked: all", 20_327.0, 28_035.0, 7_125.0),
    ("Revoked: key compromise", 493.0, 787.0, 347.0),
    ("Domain registrant change", 2_593.0, 2_807.0, 1_214.0),
    (
        "Cloudflare managed TLS departure",
        9_495.0,
        18_833.0,
        7_722.0,
    ),
];

/// A borrowed view over one run's world + detection results — just
/// enough to render the served tables. Both `stale-bench`'s owned
/// `Experiments` and `stale-served`'s state actor can produce one.
pub struct TableView<'a> {
    /// The dataset bundle.
    pub data: &'a WorldDatasets,
    /// Public suffix list.
    pub psl: &'a SuffixList,
    /// Detector outputs.
    pub suite: &'a DetectionSuite,
}

impl TableView<'_> {
    fn revocation_window(&self) -> DateInterval {
        // The cutoff is derived from the collection window, so the
        // interval is valid by construction.
        DateInterval::new(self.suite.revocations.cutoff, self.data.crl_window.end)
            .expect("cutoff precedes collection end") // stale-lint: allow(panic-in-shard)
    }

    fn rc_window(&self) -> DateInterval {
        let end = self
            .data
            .whois
            .window_end
            .unwrap_or(self.data.sim_window.end);
        // `end` is at or after the simulation start by construction.
        // stale-lint: allow(panic-in-shard)
        DateInterval::new(self.data.sim_window.start, end.succ()).expect("valid window")
    }

    /// Table 3: dataset inventory.
    // stale-lint: entry(serial)
    pub fn table3(&self) -> String {
        let summary = self.data.summary();
        let rows: Vec<Vec<String>> = summary
            .rows
            .into_iter()
            .map(|(name, range, size)| vec![name, range, size])
            .collect();
        format!(
            "Table 3 — Datasets (simulated stand-ins for the paper's feeds)\n{}",
            render_table(&["Dataset", "Date range", "Size"], &rows)
        )
    }

    /// Table 4: daily rates of stale certs / FQDNs / e2LDs per detector.
    // stale-lint: entry(serial)
    pub fn table4(&self) -> String {
        let all_records = self.suite.revocations.all_as_records();
        let all_refs: Vec<&StaleCertRecord> = all_records.iter().collect();
        let kc: Vec<&StaleCertRecord> = self.suite.key_compromise.iter().collect();
        let rc: Vec<&StaleCertRecord> = self.suite.registrant_change.iter().collect();
        let mtd: Vec<&StaleCertRecord> = self.suite.managed_tls.iter().collect();
        let rev_win = self.revocation_window();
        let summaries = [
            StalenessSummary::compute("Revoked: all", &all_refs, rev_win, self.psl),
            StalenessSummary::compute("Revoked: key compromise", &kc, rev_win, self.psl),
            StalenessSummary::compute("Domain registrant change", &rc, self.rc_window(), self.psl),
            StalenessSummary::compute(
                "Cloudflare managed TLS departure",
                &mtd,
                self.data.adns_window,
                self.psl,
            ),
        ];
        let mut rows = Vec::new();
        for (s, (_, p_certs, p_fqdns, p_e2lds)) in summaries.iter().zip(TABLE4_DAILY) {
            rows.push(vec![
                s.label.clone(),
                format!("{} – {}", s.window.start, s.window.end),
                format!("{} ({:.2}/day)", s.certs, s.daily_certs),
                format!("{} ({:.2}/day)", s.fqdns, s.daily_fqdns),
                format!("{} ({:.2}/day)", s.e2lds, s.daily_e2lds),
                format!("{:.0}:{:.0}:{:.0}", p_certs, p_fqdns, p_e2lds),
            ]);
        }
        // Shape check: relative daily-cert rates across the three
        // third-party classes, paper vs measured.
        let measured_ratio = ratio3(
            summaries[3].daily_certs,
            summaries[2].daily_certs,
            summaries[1].daily_certs,
        );
        let paper_ratio = ratio3(9_495.0, 2_593.0, 493.0);
        format!(
            "Table 4 — Stale certificate detection (totals with daily rates)\n{}\nShape: MTD:RC:KC daily-cert ratio — paper {} / measured {}\n",
            render_table(
                &["Method", "Window", "# certs", "# FQDNs", "# e2LDs", "paper daily c:f:e"],
                &rows
            ),
            paper_ratio,
            measured_ratio,
        )
    }
}

/// Normalise three rates to the smallest.
pub fn ratio3(a: f64, b: f64, c: f64) -> String {
    let min = c.max(1e-9);
    format!("{:.1}:{:.1}:1", a / min, b / min)
}
