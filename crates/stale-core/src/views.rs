//! Zero-copy shard views over a single shared immutable world.
//!
//! The sharded engine's partitioner used to clone owned per-shard copies
//! of every routed certificate list. This module replaces the data plane
//! of that design: the world is flattened once into a [`WorldArena`], one
//! routing pass computes — per certificate, shard-count-independently —
//! everything the partitioner needs (the key-compromise routing hash, the
//! interned SAN-e2LD id set, the managed-TLS customer routing hashes),
//! and shard "inputs" become plain index lists into the shared arrays.
//! Cutting views for `n` shards is then a single linear pass of modulo
//! tests; re-sharding the same world costs no re-routing and no copying.
//!
//! The routing hash is FNV-1a over the routing domain — the same function
//! the owned partitioner used, so view-based shard assignment is
//! bit-identical to the historical one (the partition-view coverage
//! proptest pins this).

use crate::detector::key_compromise::{CrlKeyIndex, RevocationAnalysis};
use crate::detector::managed_tls::ManagedTlsDetector;
use crate::detector::registrant_change::{enumerate_changes, IndexedChange};
use psl::SuffixList;
use stale_types::{Date, DomainName};
use std::collections::HashMap;
use worldsim::{WorldArena, WorldDatasets};

/// FNV-1a over a byte string — the engine's stable routing hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The routing hash of a routing-domain string. Shard assignment is
/// `route_hash(key) % shards` everywhere.
pub fn route_hash(key: &str) -> u64 {
    fnv1a64(key.as_bytes())
}

/// One provider-managed certificate with its pre-routed customers: every
/// non-wildcard, non-marker SAN alongside the routing hash of its e2LD
/// (falling back to the SAN itself when the PSL cannot split it).
pub struct MtdCandidate<'w> {
    /// Arena index of the managed certificate.
    pub cert: u32,
    /// Customer SANs with routing hashes, in SAN order.
    pub customers: Vec<(&'w DomainName, u64)>,
}

/// A world routed once, shard-count-independently. All per-candidate
/// routing work (e2LD extraction, hashing, interning, marker tests, CRL
/// key sorting) happens here exactly once; cutting `n` shard views out of
/// a `RoutedWorld` is pure integer arithmetic.
pub struct RoutedWorld<'w> {
    /// The shared immutable world.
    pub arena: WorldArena<'w>,
    /// Per-certificate key-compromise routing hash. Certificates with no
    /// SAN carry `0`, which lands on shard 0 for every shard count —
    /// exactly the owned partitioner's rule.
    pub kc_hash: Vec<u64>,
    /// Per-certificate offsets into `rc_ids` (length `arena.len() + 1`).
    rc_offsets: Vec<u32>,
    /// Interned SAN-e2LD ids per certificate, deduplicated in SAN order.
    rc_ids: Vec<u32>,
    /// Routing hash per interned e2LD id.
    pub rc_hash: Vec<u64>,
    /// e2LD string → interned id (registrant-change domain resolution).
    pub rc_lookup: HashMap<String, u32>,
    /// Provider-managed certificates with pre-routed customers, in arena
    /// order.
    pub mtd: Vec<MtdCandidate<'w>>,
    /// The global registrant-change enumeration (the rc merge order).
    pub changes: Vec<IndexedChange>,
    /// Interned e2LD id per change; `u32::MAX` when no certificate
    /// anywhere names the changed domain (such a change can never match).
    pub change_id: Vec<u32>,
    /// Routing hash per change domain.
    pub change_hash: Vec<u64>,
    /// The CRL key index, sorted once and shared by every shard's
    /// sort-merge join.
    pub crl_keys: CrlKeyIndex,
    /// The key-compromise reporting cutoff for this world's CRL window.
    pub cutoff: Date,
}

impl<'w> RoutedWorld<'w> {
    /// Route `data` once. The pass is `O(corpus + changes + crl)` and
    /// independent of any shard count.
    pub fn build(data: &'w WorldDatasets, psl: &SuffixList) -> Self {
        let arena = WorldArena::new(data);
        let mtd_detector = ManagedTlsDetector::new(&data.cdn_config, psl);
        let certs = arena.len();
        let mut kc_hash = Vec::with_capacity(certs);
        let mut rc_offsets = Vec::with_capacity(certs + 1);
        rc_offsets.push(0u32);
        let mut rc_ids: Vec<u32> = Vec::new();
        let mut rc_hash: Vec<u64> = Vec::new();
        let mut rc_lookup: HashMap<String, u32> = HashMap::new();
        let mut mtd = Vec::new();

        for (i, cert) in arena.certs().iter().enumerate() {
            let sans = cert.certificate.tbs.san();

            // Key compromise: routed by the first SAN's e2LD, falling
            // back to the SAN itself; SAN-less certificates go to shard 0.
            kc_hash.push(match sans.first() {
                Some(first) => route_hash(psl.e2ld_of_san_str(first).unwrap_or(first.as_str())),
                None => 0,
            });

            // Registrant change: intern every SAN e2LD, deduplicated in
            // SAN order (the cert's routing key set).
            let mark = rc_ids.len();
            for san in sans {
                let Ok(e2ld) = psl.e2ld_of_san_str(san) else {
                    continue;
                };
                let id = match rc_lookup.get(e2ld) {
                    Some(&id) => id,
                    None => {
                        let id = rc_hash.len() as u32;
                        rc_hash.push(route_hash(e2ld));
                        rc_lookup.insert(e2ld.to_string(), id);
                        id
                    }
                };
                if !rc_ids[mark..].contains(&id) {
                    rc_ids.push(id);
                }
            }
            rc_offsets.push(rc_ids.len() as u32);

            // Managed TLS: marker-carrying certificates, with customers
            // pre-filtered (no marker, no wildcard) and pre-hashed.
            if mtd_detector.is_managed_cert(cert) {
                let customers: Vec<(&DomainName, u64)> = sans
                    .iter()
                    .filter(|s| !mtd_detector.is_marker_san(s) && !s.is_wildcard())
                    .map(|d| {
                        let key = psl.e2ld_of_san_str(d).unwrap_or(d.as_str());
                        (d, route_hash(key))
                    })
                    .collect();
                mtd.push(MtdCandidate {
                    cert: i as u32,
                    customers,
                });
            }
        }

        let changes = enumerate_changes(&data.whois);
        let change_id: Vec<u32> = changes
            .iter()
            .map(|c| {
                rc_lookup
                    .get(c.domain.as_str())
                    .copied()
                    .unwrap_or(u32::MAX)
            })
            .collect();
        let change_hash: Vec<u64> = changes
            .iter()
            .map(|c| route_hash(c.domain.as_str()))
            .collect();

        RoutedWorld {
            arena,
            kc_hash,
            rc_offsets,
            rc_ids,
            rc_hash,
            rc_lookup,
            mtd,
            changes,
            change_id,
            change_hash,
            crl_keys: CrlKeyIndex::build(&data.crl),
            cutoff: RevocationAnalysis::cutoff_for(data.crl_window.start),
        }
    }

    /// The interned SAN-e2LD ids of the certificate at arena index `i`,
    /// deduplicated in SAN order.
    pub fn rc_ids_of(&self, i: u32) -> &[u32] {
        let lo = self.rc_offsets[i as usize] as usize;
        let hi = self.rc_offsets[i as usize + 1] as usize;
        &self.rc_ids[lo..hi]
    }

    /// Number of distinct interned e2LDs across the corpus.
    pub fn interned_e2lds(&self) -> usize {
        self.rc_hash.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::registrant_change::RegistrantChangeDetector;
    use worldsim::{ScenarioConfig, World};

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64-bit.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn routed_world_matches_detector_routing_keys() {
        let data = World::run(ScenarioConfig::tiny());
        let psl = SuffixList::default_list();
        let routed = RoutedWorld::build(&data, &psl);
        let rc = RegistrantChangeDetector::new(&psl);
        assert_eq!(routed.kc_hash.len(), routed.arena.len());
        for (i, cert) in routed.arena.certs().iter().enumerate() {
            // The interned id list reproduces cert_e2lds exactly (same
            // set, same order, same hashes).
            let expected = rc.cert_e2lds(cert);
            let ids = routed.rc_ids_of(i as u32);
            assert_eq!(ids.len(), expected.len());
            for (id, e2ld) in ids.iter().zip(&expected) {
                assert_eq!(routed.rc_lookup[e2ld.as_str()], *id);
                assert_eq!(routed.rc_hash[*id as usize], route_hash(e2ld.as_str()));
            }
        }
        // Every change resolves consistently with the interner.
        for (c, id) in routed.changes.iter().zip(&routed.change_id) {
            match routed.rc_lookup.get(c.domain.as_str()) {
                Some(&interned) => assert_eq!(*id, interned),
                None => assert_eq!(*id, u32::MAX),
            }
        }
    }
}
