//! §6: simulating shorter maximum certificate lifetimes (Figure 9).
//!
//! The experiment: "take all stale certificates with lifetime greater than
//! n and decrease their certificate expiration date to achieve a total
//! lifetime of n. We do not modify certificates with lifetimes less than
//! n." Two quantities follow:
//!
//! * **staleness-days reduction** — how much of the aggregate staleness
//!   window disappears (Figure 9's per-class percentages);
//! * **stale-cert elimination** — certificates whose invalidation event
//!   lands after the capped expiry stop being stale at all (the Figure 8
//!   survival view provides its upper-bound variant).

use crate::staleness::StaleCertRecord;
use serde::{Deserialize, Serialize};
use stale_types::Duration;

/// The lifetime caps the paper evaluates (§6).
pub const PAPER_CAPS: [i64; 3] = [45, 90, 215];

/// Result of applying one cap to one class of stale certificates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapResult {
    /// The cap in days.
    pub cap_days: i64,
    /// Certificates examined.
    pub total_certs: usize,
    /// Certificates whose lifetime exceeded the cap (modified by the
    /// experiment).
    pub capped_certs: usize,
    /// Certificates that stop being stale entirely (invalidation falls
    /// after the new expiry).
    pub eliminated_certs: usize,
    /// Aggregate staleness-days before capping.
    pub staleness_days_before: i64,
    /// Aggregate staleness-days after capping.
    pub staleness_days_after: i64,
}

impl CapResult {
    /// Relative staleness-days reduction in `[0, 1]`.
    pub fn staleness_reduction(&self) -> f64 {
        if self.staleness_days_before == 0 {
            return 0.0;
        }
        1.0 - self.staleness_days_after as f64 / self.staleness_days_before as f64
    }

    /// Fraction of stale certificates eliminated outright.
    pub fn elimination_rate(&self) -> f64 {
        if self.total_certs == 0 {
            return 0.0;
        }
        self.eliminated_certs as f64 / self.total_certs as f64
    }
}

/// The §6 experiment over one set of records.
pub struct LifetimeSimulation<'a> {
    records: Vec<&'a StaleCertRecord>,
}

impl<'a> LifetimeSimulation<'a> {
    /// Build over the records of one staleness class.
    pub fn new(records: impl IntoIterator<Item = &'a StaleCertRecord>) -> Self {
        LifetimeSimulation {
            records: records.into_iter().collect(),
        }
    }

    /// Apply a hypothetical maximum lifetime of `cap_days`.
    pub fn apply_cap(&self, cap_days: i64) -> CapResult {
        let cap = Duration::days(cap_days);
        let mut result = CapResult {
            cap_days,
            total_certs: self.records.len(),
            capped_certs: 0,
            eliminated_certs: 0,
            staleness_days_before: 0,
            staleness_days_after: 0,
        };
        for r in &self.records {
            let before = r.staleness_days().num_days();
            result.staleness_days_before += before;
            let capped_validity = r.validity.cap_len(cap);
            if capped_validity != r.validity {
                result.capped_certs += 1;
            }
            let after = capped_validity.suffix_from(r.invalidation).len().num_days();
            result.staleness_days_after += after;
            if before > 0 && after == 0 {
                result.eliminated_certs += 1;
            }
        }
        result
    }

    /// Apply all the paper's caps.
    pub fn paper_caps(&self) -> Vec<CapResult> {
        PAPER_CAPS.iter().map(|&n| self.apply_cap(n)).collect()
    }

    /// Number of records under simulation.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staleness::StalenessClass;
    use stale_types::{domain::dn, CertId, Date, DateInterval};

    fn record(nb: &str, lifetime: i64, invalidation_offset: i64) -> StaleCertRecord {
        let start = Date::parse(nb).unwrap();
        StaleCertRecord {
            cert_id: CertId::from_bytes([2; 32]),
            class: StalenessClass::RegistrantChange,
            domain: dn("foo.com"),
            fqdns: vec![dn("foo.com")],
            issuer: "CA".into(),
            invalidation: start + Duration::days(invalidation_offset),
            validity: DateInterval::from_start(start, Duration::days(lifetime)).unwrap(),
        }
    }

    #[test]
    fn capping_shortens_staleness() {
        // 398-day cert invalidated on day 10: staleness 388.
        let r = record("2022-01-01", 398, 10);
        let sim = LifetimeSimulation::new([&r]);
        let result = sim.apply_cap(90);
        assert_eq!(result.staleness_days_before, 388);
        // Capped to 90 days: staleness becomes 80.
        assert_eq!(result.staleness_days_after, 80);
        assert_eq!(result.capped_certs, 1);
        assert_eq!(result.eliminated_certs, 0);
        let red = result.staleness_reduction();
        assert!((red - (1.0 - 80.0 / 388.0)).abs() < 1e-9);
    }

    #[test]
    fn short_certs_untouched() {
        let r = record("2022-01-01", 60, 10);
        let sim = LifetimeSimulation::new([&r]);
        let result = sim.apply_cap(90);
        assert_eq!(result.capped_certs, 0);
        assert_eq!(result.staleness_days_before, result.staleness_days_after);
        assert_eq!(result.staleness_reduction(), 0.0);
    }

    #[test]
    fn late_invalidation_eliminated() {
        // 398-day cert invalidated on day 200: with a 90-day cap the cert
        // would have expired 110 days before the event.
        let r = record("2022-01-01", 398, 200);
        let sim = LifetimeSimulation::new([&r]);
        let result = sim.apply_cap(90);
        assert_eq!(result.staleness_days_after, 0);
        assert_eq!(result.eliminated_certs, 1);
        assert_eq!(result.elimination_rate(), 1.0);
    }

    #[test]
    fn aggregate_over_mixed_population() {
        let records = [
            record("2022-01-01", 398, 10),  // capped, still stale
            record("2022-01-01", 398, 200), // capped, eliminated
            record("2022-01-01", 90, 30),   // untouched
        ];
        let sim = LifetimeSimulation::new(records.iter());
        let result = sim.apply_cap(90);
        assert_eq!(result.total_certs, 3);
        assert_eq!(result.capped_certs, 2);
        assert_eq!(result.eliminated_certs, 1);
        assert_eq!(result.staleness_days_before, 388 + 198 + 60);
        // 80 (capped), 0 (eliminated), 60 (untouched).
        assert_eq!(result.staleness_days_after, 80 + 60);
    }

    #[test]
    fn smaller_caps_reduce_more() {
        let records: Vec<StaleCertRecord> = (0..50)
            .map(|i| record("2022-01-01", 398, (i * 7) % 350))
            .collect();
        let sim = LifetimeSimulation::new(records.iter());
        let results = sim.paper_caps();
        assert_eq!(results.len(), 3);
        // Reductions are monotone: 45-day cap ≥ 90-day cap ≥ 215-day cap.
        assert!(results[0].staleness_reduction() >= results[1].staleness_reduction());
        assert!(results[1].staleness_reduction() >= results[2].staleness_reduction());
        assert!(results[0].elimination_rate() >= results[2].elimination_rate());
    }

    #[test]
    fn empty_simulation() {
        let sim = LifetimeSimulation::new(std::iter::empty());
        assert!(sim.is_empty());
        let result = sim.apply_cap(90);
        assert_eq!(result.staleness_reduction(), 0.0);
        assert_eq!(result.elimination_rate(), 0.0);
    }
}
