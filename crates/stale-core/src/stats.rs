//! Distribution and time-series statistics used by the figures.
//!
//! [`Cdf`] backs the staleness CDFs of Figures 6 and 7; monthly bucketing
//! backs the time series of Figures 4, 5a and 5b.

use serde::{Deserialize, Serialize};
use stale_types::{Date, YearMonth};
use std::collections::BTreeMap;

/// An empirical cumulative distribution over integer day counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted samples.
    samples: Vec<i64>,
}

impl Cdf {
    /// Build from samples (order irrelevant).
    pub fn new(mut samples: Vec<i64>) -> Cdf {
        samples.sort_unstable();
        Cdf { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn proportion_at(&self, x: i64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&s| s <= x);
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() as f64 - 1.0) * q).round() as usize;
        Some(self.samples[idx])
    }

    /// The median.
    pub fn median(&self) -> Option<i64> {
        self.quantile(0.5)
    }

    /// `(x, P(X ≤ x))` points for plotting; one point per distinct value.
    pub fn points(&self) -> Vec<(i64, f64)> {
        let n = self.samples.len() as f64;
        let mut points = Vec::new();
        for (i, &x) in self.samples.iter().enumerate() {
            if i + 1 == self.samples.len() || self.samples[i + 1] != x {
                points.push((x, (i + 1) as f64 / n));
            }
        }
        points
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<i64> {
        self.samples.last().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<i64>() as f64 / self.samples.len() as f64)
    }
}

/// A monthly-bucketed count series (Figures 4 / 5a / 5b).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonthlySeries {
    counts: BTreeMap<YearMonth, u64>,
}

impl MonthlySeries {
    /// Empty series.
    pub fn new() -> Self {
        MonthlySeries::default()
    }

    /// Count an event at `date`.
    pub fn add(&mut self, date: Date) {
        *self.counts.entry(date.year_month()).or_insert(0) += 1;
    }

    /// Count `n` events at `date`.
    pub fn add_n(&mut self, date: Date, n: u64) {
        *self.counts.entry(date.year_month()).or_insert(0) += n;
    }

    /// The count for one month.
    pub fn get(&self, ym: YearMonth) -> u64 {
        self.counts.get(&ym).copied().unwrap_or(0)
    }

    /// `(month, count)` rows in order, including empty months between the
    /// first and last.
    pub fn rows(&self) -> Vec<(YearMonth, u64)> {
        let (Some((&first, _)), Some((&last, _))) =
            (self.counts.iter().next(), self.counts.iter().next_back())
        else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        let mut ym = first;
        loop {
            rows.push((ym, self.get(ym)));
            if ym == last {
                break;
            }
            ym = ym.next();
        }
        rows
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// The month with the highest count.
    pub fn peak(&self) -> Option<(YearMonth, u64)> {
        self.counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&ym, &c)| (ym, c))
    }
}

/// Group events into monthly series by a string key (issuer name for
/// Figures 4 and 5b).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroupedMonthlySeries {
    /// Key → series.
    pub groups: BTreeMap<String, MonthlySeries>,
}

impl GroupedMonthlySeries {
    /// Empty.
    pub fn new() -> Self {
        GroupedMonthlySeries::default()
    }

    /// Count an event for `key` at `date`.
    pub fn add(&mut self, key: &str, date: Date) {
        self.groups.entry(key.to_string()).or_default().add(date);
    }

    /// Collapse groups below `min_total` into an "Other" bucket, as the
    /// figures do.
    pub fn with_other_bucket(mut self, min_total: u64) -> GroupedMonthlySeries {
        let small: Vec<String> = self
            .groups
            .iter()
            .filter(|(_, s)| s.total() < min_total)
            .map(|(k, _)| k.clone())
            .collect();
        if small.is_empty() {
            return self;
        }
        let mut other = self.groups.remove("Other").unwrap_or_default();
        for key in small {
            let Some(series) = self.groups.remove(&key) else {
                continue; // keys were just enumerated from the map
            };
            for (ym, count) in series.rows() {
                if count > 0 {
                    other.add_n(ym.first_day(), count);
                }
            }
        }
        self.groups.insert("Other".to_string(), other);
        self
    }

    /// Totals per group, descending.
    pub fn totals(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = self
            .groups
            .iter()
            .map(|(k, s)| (k.clone(), s.total()))
            .collect();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![10, 90, 50, 30, 70]);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.median(), Some(50));
        assert_eq!(cdf.proportion_at(9), 0.0);
        assert_eq!(cdf.proportion_at(10), 0.2);
        assert_eq!(cdf.proportion_at(90), 1.0);
        assert_eq!(cdf.max(), Some(90));
        assert_eq!(cdf.mean(), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(10));
        assert_eq!(cdf.quantile(1.0), Some(90));
    }

    #[test]
    fn cdf_empty() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.median(), None);
        assert_eq!(cdf.proportion_at(100), 0.0);
    }

    #[test]
    fn cdf_points_dedup() {
        let cdf = Cdf::new(vec![5, 5, 5, 10]);
        assert_eq!(cdf.points(), vec![(5, 0.75), (10, 1.0)]);
    }

    #[test]
    fn monthly_series_fills_gaps() {
        let mut s = MonthlySeries::new();
        s.add(Date::parse("2021-11-05").unwrap());
        s.add(Date::parse("2021-11-20").unwrap());
        s.add(Date::parse("2022-01-10").unwrap());
        let rows = s.rows();
        assert_eq!(rows.len(), 3); // Nov, Dec (0), Jan
        assert_eq!(rows[0].1, 2);
        assert_eq!(rows[1].1, 0);
        assert_eq!(rows[2].1, 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.peak().unwrap().1, 2);
    }

    #[test]
    fn grouped_series_other_bucket() {
        let mut g = GroupedMonthlySeries::new();
        for _ in 0..10 {
            g.add("GoDaddy", Date::parse("2021-11-17").unwrap());
        }
        g.add("Tiny CA 1", Date::parse("2021-12-01").unwrap());
        g.add("Tiny CA 2", Date::parse("2022-01-01").unwrap());
        let g = g.with_other_bucket(5);
        assert_eq!(g.groups.len(), 2);
        assert_eq!(g.groups["Other"].total(), 2);
        let totals = g.totals();
        assert_eq!(totals[0], ("GoDaddy".to_string(), 10));
    }
}
