//! The certificate-information and invalidation-event taxonomy
//! (Tables 1 and 2 of the paper).
//!
//! RFC 5280's revocation reason codes are a poor basis for classifying
//! invalidation events (§3): they are outdated, ambiguous and misaligned
//! with security severity. The paper instead classifies by *which attested
//! information changed* and *who ends up holding the key*.

use serde::{Deserialize, Serialize};
use x509::cert::Extension;
use x509::revocation::RevocationReason;

/// Table 1: the four higher-level roles of certificate information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CertInfoCategory {
    /// Subscriber identifiers: domain names + cryptographic keys.
    SubscriberAuthentication,
    /// Permissions and constraints on key utilisation.
    KeyAuthorization,
    /// Details of the issuing CA.
    IssuerInformation,
    /// Meta-information about the certificate itself.
    CertificateMetadata,
}

impl CertInfoCategory {
    /// Classify a certificate extension into its Table 1 category.
    pub fn of_extension(ext: &Extension) -> CertInfoCategory {
        match ext {
            Extension::SubjectAltName(_) | Extension::SubjectKeyId(_) => {
                CertInfoCategory::SubscriberAuthentication
            }
            Extension::BasicConstraints { .. }
            | Extension::KeyUsage(_)
            | Extension::ExtendedKeyUsage(_)
            | Extension::MustStaple => CertInfoCategory::KeyAuthorization,
            Extension::AuthorityKeyId(_)
            | Extension::CrlDistributionPoint(_)
            | Extension::AuthorityInfoAccess(_)
            | Extension::CertificatePolicies(_) => CertInfoCategory::IssuerInformation,
            Extension::PrecertPoison | Extension::SctList(_) => {
                CertInfoCategory::CertificateMetadata
            }
        }
    }
}

/// Whether a change is to *ownership* of the resource or to its *use*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlChange {
    /// The controlling party changed.
    Ownership,
    /// The same party changed how (or whether) the resource is used.
    Use,
}

/// Who can abuse the resulting stale certificate, and how badly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityImpact {
    /// A third party can impersonate the domain (TLS interception given
    /// network position). The severe class the paper measures.
    ThirdPartyImpersonation,
    /// Only the first party is affected; minimal risk.
    FirstPartyMinimal,
    /// Over-permissioned usage by the first party (key scope reduction).
    FirstPartyOverPermissioned,
}

/// Table 2: the certificate invalidation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvalidationEvent {
    /// Domain registrant change (§5.2).
    DomainOwnershipChange,
    /// Domain falls out of use (expires with no new owner).
    DomainUseChange,
    /// Key compromise (§5.1).
    KeyOwnershipChange,
    /// Key disuse, e.g. rotation.
    KeyUseChange,
    /// Managed TLS departure (§5.3) — the starred special case of key
    /// disuse where the "first party" holding the key is a third party
    /// to the domain.
    ManagedTlsDeparture,
    /// Key authorization scope reduction.
    KeyAuthorizationChange,
    /// CA revocation-infrastructure change.
    RevocationInfoChange,
}

impl InvalidationEvent {
    /// Which information category the event invalidates (Table 2 column
    /// 2).
    pub fn category(self) -> CertInfoCategory {
        match self {
            InvalidationEvent::DomainOwnershipChange
            | InvalidationEvent::DomainUseChange
            | InvalidationEvent::KeyOwnershipChange
            | InvalidationEvent::KeyUseChange
            | InvalidationEvent::ManagedTlsDeparture => CertInfoCategory::SubscriberAuthentication,
            InvalidationEvent::KeyAuthorizationChange => CertInfoCategory::KeyAuthorization,
            InvalidationEvent::RevocationInfoChange => CertInfoCategory::IssuerInformation,
        }
    }

    /// Ownership vs use (Table 2 row structure).
    pub fn control_change(self) -> Option<ControlChange> {
        match self {
            InvalidationEvent::DomainOwnershipChange | InvalidationEvent::KeyOwnershipChange => {
                Some(ControlChange::Ownership)
            }
            InvalidationEvent::DomainUseChange
            | InvalidationEvent::KeyUseChange
            | InvalidationEvent::ManagedTlsDeparture => Some(ControlChange::Use),
            _ => None,
        }
    }

    /// Security implications (Table 2 column 4).
    pub fn impact(self) -> SecurityImpact {
        match self {
            InvalidationEvent::DomainOwnershipChange
            | InvalidationEvent::KeyOwnershipChange
            | InvalidationEvent::ManagedTlsDeparture => SecurityImpact::ThirdPartyImpersonation,
            InvalidationEvent::KeyAuthorizationChange => SecurityImpact::FirstPartyOverPermissioned,
            _ => SecurityImpact::FirstPartyMinimal,
        }
    }

    /// The three events the paper measures (third-party impersonation).
    pub fn third_party_events() -> [InvalidationEvent; 3] {
        [
            InvalidationEvent::KeyOwnershipChange,
            InvalidationEvent::DomainOwnershipChange,
            InvalidationEvent::ManagedTlsDeparture,
        ]
    }

    /// Map an RFC 5280 reason code to the closest taxonomy event, where
    /// one exists. Illustrates §3's point: the mapping is lossy.
    pub fn from_revocation_reason(reason: RevocationReason) -> Option<InvalidationEvent> {
        match reason {
            RevocationReason::KeyCompromise => Some(InvalidationEvent::KeyOwnershipChange),
            RevocationReason::Superseded => Some(InvalidationEvent::KeyUseChange),
            RevocationReason::CessationOfOperation => Some(InvalidationEvent::DomainUseChange),
            RevocationReason::AffiliationChanged => Some(InvalidationEvent::DomainOwnershipChange),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    #[test]
    fn third_party_events_are_exactly_the_measured_three() {
        let events = InvalidationEvent::third_party_events();
        assert!(events
            .iter()
            .all(|e| e.impact() == SecurityImpact::ThirdPartyImpersonation));
        // And no other event has third-party impact.
        for e in [
            InvalidationEvent::DomainUseChange,
            InvalidationEvent::KeyUseChange,
            InvalidationEvent::KeyAuthorizationChange,
            InvalidationEvent::RevocationInfoChange,
        ] {
            assert_ne!(e.impact(), SecurityImpact::ThirdPartyImpersonation);
        }
    }

    #[test]
    fn categories_match_table_2() {
        assert_eq!(
            InvalidationEvent::DomainOwnershipChange.category(),
            CertInfoCategory::SubscriberAuthentication
        );
        assert_eq!(
            InvalidationEvent::KeyAuthorizationChange.category(),
            CertInfoCategory::KeyAuthorization
        );
        assert_eq!(
            InvalidationEvent::RevocationInfoChange.category(),
            CertInfoCategory::IssuerInformation
        );
    }

    #[test]
    fn control_changes() {
        use ControlChange::*;
        assert_eq!(
            InvalidationEvent::DomainOwnershipChange.control_change(),
            Some(Ownership)
        );
        assert_eq!(
            InvalidationEvent::ManagedTlsDeparture.control_change(),
            Some(Use)
        );
        assert_eq!(
            InvalidationEvent::RevocationInfoChange.control_change(),
            None
        );
    }

    #[test]
    fn extension_classification_covers_table_1() {
        use x509::cert::KeyUsage;
        assert_eq!(
            CertInfoCategory::of_extension(&Extension::SubjectAltName(vec![dn("foo.com")])),
            CertInfoCategory::SubscriberAuthentication
        );
        assert_eq!(
            CertInfoCategory::of_extension(&Extension::KeyUsage(KeyUsage::tls_leaf())),
            CertInfoCategory::KeyAuthorization
        );
        assert_eq!(
            CertInfoCategory::of_extension(&Extension::CrlDistributionPoint("u".into())),
            CertInfoCategory::IssuerInformation
        );
        assert_eq!(
            CertInfoCategory::of_extension(&Extension::PrecertPoison),
            CertInfoCategory::CertificateMetadata
        );
    }

    #[test]
    fn reason_code_mapping_is_lossy() {
        assert_eq!(
            InvalidationEvent::from_revocation_reason(RevocationReason::KeyCompromise),
            Some(InvalidationEvent::KeyOwnershipChange)
        );
        assert_eq!(
            InvalidationEvent::from_revocation_reason(RevocationReason::Unspecified),
            None
        );
    }
}
