//! Persistent per-shard detector state for incremental (daily) ingestion.
//!
//! The batch detectors re-scan the full ten-year corpus on every run. The
//! types here let each detector instead *accumulate* state day by day —
//! the way the paper's feeds actually arrive (daily CRL downloads, WHOIS
//! snapshots, neighbouring-day aDNS diffs) — and emit [`StaleEvent`]s as
//! soon as a staleness period opens:
//!
//! * [`KcIncremental`] — the §4.1 CRL × CT join as a symmetric hash join:
//!   an `(AKI, serial)` → certificate index on one side, the CRL records
//!   seen so far on the other, each new arrival probing the opposite side.
//! * [`RcIncremental`] — §4.2 with an interned e2LD table: per-domain
//!   creation-date ledgers detect re-registrations locally, and late
//!   arrivals on either side (change or certificate) re-probe the other.
//! * [`MtdIncremental`] — §4.3 as a delegation status machine per scan
//!   target plus an open departure ledger per customer; certificates and
//!   departures pair up regardless of arrival order.
//!
//! Each state's `finish()` reconstructs **exactly** the batch detector's
//! shard output, so the engine's existing deterministic merges produce
//! byte-identical reports (`tests/incremental_equivalence.rs` asserts
//! this). Each state also round-trips through a compact `Saved*` form
//! (certificate bodies are re-resolved from the CT monitor by id) — the
//! engine's checkpoint schema v2.

// Slice indexing here runs over routed-feed and snapshot indices.
// stale-lint: scope(panic-index)

use crate::detector::key_compromise::{self, JoinOutcome, KcLoser, ShardMatch};
use crate::detector::managed_tls::{self, ManagedTlsDetector};
use crate::detector::registrant_change::{self, RegistrantChangeDetector};
use crate::staleness::StaleCertRecord;
use ca::scraper::{CrlDataset, RevocationRecord};
use ct::monitor::{CtMonitor, DedupedCert};
use dns::scan::DnsView;
use obs::audit::Provenance;
use serde::{Deserialize, Serialize};
use stale_types::{CertId, Date, DateInterval, DomainName, KeyId, SerialNumber};
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use x509::revocation::RevocationReason;

/// A staleness period opening, discovered during incremental ingestion.
///
/// Events are the streaming mode's notification surface: one per
/// newly-discovered (or improved) stale pairing, stamped with the feed day
/// that revealed it. The authoritative report is still `finish()` + merge;
/// events may be revised (key compromise re-pairs a CRL record when a
/// higher `cert_id` duplicate arrives later, exactly like the batch join's
/// insert-overwrite).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaleEvent {
    /// Feed day on which the pairing became visible.
    pub discovered: Date,
    /// The stale certificate record it opens.
    pub record: StaleCertRecord,
    /// The source record that revealed the pairing (CRL entry, WHOIS
    /// creation, DNS departure) — the same provenance the decision-audit
    /// layer attaches. `Option` only for checkpoint/serde compatibility
    /// with pre-audit event streams; new emissions always stamp it.
    pub provenance: Option<Provenance>,
}

/// An interning table for domain names: dense `u32` ids for hash-heavy
/// per-domain state, with the original names recoverable for output.
#[derive(Debug, Default, Clone)]
pub struct DomainInterner {
    ids: HashMap<DomainName, u32>,
    names: Vec<DomainName>,
}

impl DomainInterner {
    /// Empty table.
    pub fn new() -> Self {
        DomainInterner::default()
    }

    /// Id for `domain`, allocating on first sight.
    pub fn intern(&mut self, domain: &DomainName) -> u32 {
        if let Some(id) = self.ids.get(domain) {
            return *id;
        }
        let id = self.names.len() as u32;
        self.names.push(domain.clone());
        self.ids.insert(domain.clone(), id);
        id
    }

    /// Id for `domain` if already interned.
    pub fn get(&self, domain: &DomainName) -> Option<u32> {
        self.ids.get(domain).copied()
    }

    /// The name behind an id, if the id was ever allocated.
    pub fn name(&self, id: u32) -> Option<&DomainName> {
        self.names.get(id as usize)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

// ---------------------------------------------------------------------------
// §4.1 key compromise
// ---------------------------------------------------------------------------

/// Incremental CRL × CT join state for one shard.
#[derive(Clone)]
pub struct KcIncremental<'w> {
    cutoff: Date,
    /// `(AKI, serial)` → certificate, max `cert_id` winning ties (the
    /// batch join's insert-overwrite winner over a cert-id-ordered corpus).
    /// Ordered so `save()` iterates deterministically.
    index: BTreeMap<(KeyId, SerialNumber), &'w DedupedCert>,
    /// CRL records seen so far, by global CRL index.
    seen: BTreeMap<usize, &'w RevocationRecord>,
    /// Join key → CRL indexes seen under it (probe side for late certs).
    seen_by_key: HashMap<(KeyId, SerialNumber), Vec<usize>>,
    /// Join key → certificate ids that lost the newest-cert tiebreak
    /// (every key, whether or not a CRL record ever probed it; the
    /// [`KcIncremental::losers`] accessor filters to probed keys).
    losers: BTreeMap<(KeyId, SerialNumber), BTreeSet<CertId>>,
}

/// Compact checkpoint form of [`KcIncremental`]: the certificate index
/// only. The CRL side is rebuilt from the dataset (records observed on or
/// before the checkpoint day), which is cheap relative to re-routing and
/// re-indexing the certificate corpus.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SavedKc {
    /// `(AKI, serial, winning cert id)` rows of the join index.
    pub index: Vec<(KeyId, SerialNumber, CertId)>,
    /// `(AKI, serial, displaced cert id)` duplicate-fingerprint losers,
    /// unfiltered. `None` in checkpoints written before the decision
    /// audit existed; restoring such a checkpoint loses only audit
    /// coverage (duplicate accounting), never detection results.
    pub losers: Option<Vec<(KeyId, SerialNumber, CertId)>>,
}

impl<'w> KcIncremental<'w> {
    /// Fresh state with the §4.1 revocation-date cutoff.
    pub fn new(cutoff: Date) -> Self {
        KcIncremental {
            cutoff,
            index: BTreeMap::new(),
            seen: BTreeMap::new(),
            seen_by_key: HashMap::new(),
            losers: BTreeMap::new(),
        }
    }

    /// Ingest one day-delta slice: certificates first seen and CRL records
    /// first observed in the range. Emits an event per kept key-compromise
    /// pairing discovered (or improved) by this delta.
    // stale-lint: entry(shard)
    pub fn ingest_day(
        &mut self,
        discovered: Date,
        certs: &[&'w DedupedCert],
        crl: &[(usize, &'w RevocationRecord)],
    ) -> Vec<StaleEvent> {
        self.ingest_day_observed(discovered, certs, crl, &obs::NullSink)
    }

    /// [`Self::ingest_day`] reporting item counts
    /// (`detector.kc.ingest.*`) through a write-only
    /// [`obs::CounterSink`]; the sink has no read surface, so ingestion
    /// cannot depend on what was recorded.
    pub fn ingest_day_observed(
        &mut self,
        discovered: Date,
        certs: &[&'w DedupedCert],
        crl: &[(usize, &'w RevocationRecord)],
        sink: &dyn obs::CounterSink,
    ) -> Vec<StaleEvent> {
        sink.add("detector.kc.ingest.certs", certs.len() as u64);
        sink.add("detector.kc.ingest.crl", crl.len() as u64);
        let mut events = Vec::new();
        for cert in certs {
            let Some(aki) = cert.certificate.tbs.authority_key_id() else {
                continue;
            };
            let key = (aki, cert.certificate.tbs.serial);
            match self.index.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert(cert);
                }
                Entry::Occupied(mut slot) => {
                    if slot.get().cert_id > cert.cert_id {
                        // An earlier arrival already wins: this one is a
                        // duplicate-fingerprint loser.
                        self.losers.entry(key).or_default().insert(cert.cert_id);
                        continue;
                    }
                    if slot.get().cert_id < cert.cert_id {
                        self.losers
                            .entry(key)
                            .or_default()
                            .insert(slot.get().cert_id);
                    }
                    slot.insert(cert);
                }
            }
            // This certificate is now the winner: re-probe every CRL
            // record already seen under the key.
            if let Some(indexes) = self.seen_by_key.get(&key) {
                for idx in indexes {
                    let Some(rec) = self.seen.get(idx) else {
                        continue; // seen_by_key and seen are kept in lockstep
                    };
                    push_kc_event(&mut events, discovered, *idx, rec, cert, self.cutoff);
                }
            }
        }
        for (idx, rec) in crl {
            self.seen.insert(*idx, rec);
            self.seen_by_key
                .entry((rec.authority_key_id, rec.serial))
                .or_default()
                .push(*idx);
            if let Some(cert) = self.index.get(&(rec.authority_key_id, rec.serial)) {
                push_kc_event(&mut events, discovered, *idx, rec, cert, self.cutoff);
            }
        }
        sink.add("detector.kc.ingest.events", events.len() as u64);
        events
    }

    /// Retained-state size: join-index entries plus CRL records seen.
    /// Observability only (ledger-growth histograms).
    pub fn footprint(&self) -> usize {
        self.index.len() + self.seen.len()
    }

    /// The shard's join matches so far — exactly what the batch
    /// [`key_compromise::join_shard`] returns over the same certificates
    /// and the CRL records seen so far, in CRL-index order.
    // stale-lint: entry(shard)
    pub fn finish(&self) -> Vec<ShardMatch> {
        // The same sort-merge probe the batch shard join runs: the
        // persistent index is already one winner per key in key order,
        // and the records seen so far form the CRL key index.
        let keyed: Vec<((KeyId, SerialNumber), &DedupedCert)> =
            self.index.iter().map(|(&key, &cert)| (key, cert)).collect();
        let crl_keys =
            key_compromise::CrlKeyIndex::from_entries(self.seen.iter().map(|(&i, &r)| (i, r)));
        key_compromise::probe_winners(
            &keyed,
            &crl_keys,
            &|i| self.seen.get(&i).copied(),
            self.cutoff,
        )
    }

    /// Duplicate-fingerprint losers under CRL-probed keys so far, sorted
    /// by key then certificate id — exactly what the batch
    /// [`key_compromise::join_shard_audited`] returns over the same
    /// certificates and the CRL records seen so far. Losers under keys no
    /// CRL record ever probed are not candidates and are withheld the
    /// same way the batch join withholds them.
    pub fn losers(&self) -> Vec<KcLoser> {
        let mut out = Vec::new();
        for ((aki, serial), dup_ids) in &self.losers {
            if !self.seen_by_key.contains_key(&(*aki, *serial)) {
                continue;
            }
            out.extend(dup_ids.iter().map(|id| (*aki, *serial, *id)));
        }
        out
    }

    /// Checkpoint form (certificate index plus the duplicate ledger; see
    /// [`SavedKc`]).
    pub fn save(&self) -> SavedKc {
        let mut index: Vec<(KeyId, SerialNumber, CertId)> = self
            .index
            .iter()
            .map(|((aki, serial), cert)| (*aki, *serial, cert.cert_id))
            .collect();
        index.sort_by_key(|(_, _, id)| *id);
        let mut losers = Vec::new();
        for ((aki, serial), dup_ids) in &self.losers {
            losers.extend(dup_ids.iter().map(|id| (*aki, *serial, *id)));
        }
        SavedKc {
            index,
            losers: Some(losers),
        }
    }

    /// Rebuild from a checkpoint: certificates are re-resolved from the
    /// monitor by id, and the CRL side is re-seeded with every record
    /// observed on or before `through`. `None` if the checkpoint names a
    /// certificate the monitor does not hold — it belongs to a different
    /// world, and stale state is discarded rather than trusted.
    pub fn restore(
        saved: &SavedKc,
        monitor: &'w CtMonitor,
        crl: &'w CrlDataset,
        through: Date,
        cutoff: Date,
    ) -> Option<Self> {
        let mut state = KcIncremental::new(cutoff);
        for (aki, serial, cert_id) in &saved.index {
            let cert = monitor.get(cert_id)?;
            state.index.insert((*aki, *serial), cert);
        }
        for (aki, serial, cert_id) in saved.losers.iter().flatten() {
            state
                .losers
                .entry((*aki, *serial))
                .or_default()
                .insert(*cert_id);
        }
        for (idx, rec) in crl.records().iter().enumerate() {
            if rec.observed <= through {
                state.seen.insert(idx, rec);
                state
                    .seen_by_key
                    .entry((rec.authority_key_id, rec.serial))
                    .or_default()
                    .push(idx);
            }
        }
        Some(state)
    }
}

fn push_kc_event(
    events: &mut Vec<StaleEvent>,
    discovered: Date,
    crl_index: usize,
    rec: &RevocationRecord,
    cert: &DedupedCert,
    cutoff: Date,
) {
    if rec.reason != RevocationReason::KeyCompromise {
        return;
    }
    if let JoinOutcome::Kept(revoked) = key_compromise::classify(rec, cert, cutoff) {
        events.push(StaleEvent {
            discovered,
            record: revoked.stale_record(),
            provenance: Some(key_compromise::crl_provenance(crl_index, rec)),
        });
    }
}

// ---------------------------------------------------------------------------
// §4.2 registrant change
// ---------------------------------------------------------------------------

/// Incremental registrant-change state for one shard.
#[derive(Clone)]
pub struct RcIncremental<'w> {
    /// Interned e2LD table shared by both sides of the join.
    interner: DomainInterner,
    /// e2LD id → certificates naming it (arrival order; the merge sorts).
    /// Ordered so `save()` and `restore()` iterate deterministically.
    certs_by_e2ld: BTreeMap<u32, Vec<&'w DedupedCert>>,
    /// e2LD id → every creation date observed, chronological. Entries
    /// after the first are registrant changes.
    creations: BTreeMap<u32, Vec<Date>>,
    /// Open staleness ledger: every spanning `(change, certificate)` match
    /// discovered so far, appended as the symmetric join finds it. Keeping
    /// the ledger online makes [`RcIncremental::finish`] an O(matches)
    /// copy instead of a full re-derivation.
    matches: Vec<(u32, Date, StaleCertRecord)>,
}

/// Compact checkpoint form of [`RcIncremental`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SavedRc {
    /// e2LD → certificate ids naming it, in arrival order.
    pub certs_by_e2ld: Vec<(DomainName, Vec<CertId>)>,
    /// Domain → creation dates observed, chronological.
    pub creations: Vec<(DomainName, Vec<Date>)>,
}

impl<'w> RcIncremental<'w> {
    /// Fresh state.
    pub fn new() -> Self {
        RcIncremental {
            interner: DomainInterner::new(),
            certs_by_e2ld: BTreeMap::new(),
            creations: BTreeMap::new(),
            matches: Vec::new(),
        }
    }

    /// The interned e2LD table (shared statistics surface).
    pub fn interner(&self) -> &DomainInterner {
        &self.interner
    }

    /// Ingest one day-delta slice: certificates and WHOIS `(domain,
    /// creation)` observations. A second (or later) creation date for a
    /// domain is a registrant change; each new arrival on either side
    /// probes the other, so every spanning `(change, certificate)` pair is
    /// discovered exactly once.
    // stale-lint: entry(shard)
    pub fn ingest_day(
        &mut self,
        discovered: Date,
        detector: &RegistrantChangeDetector<'_>,
        certs: &[&'w DedupedCert],
        whois: &[(&DomainName, Date)],
    ) -> Vec<StaleEvent> {
        self.ingest_day_observed(discovered, detector, certs, whois, &obs::NullSink)
    }

    /// [`Self::ingest_day`] reporting item counts
    /// (`detector.rc.ingest.*`) through a write-only
    /// [`obs::CounterSink`]; the sink has no read surface, so ingestion
    /// cannot depend on what was recorded.
    pub fn ingest_day_observed(
        &mut self,
        discovered: Date,
        detector: &RegistrantChangeDetector<'_>,
        certs: &[&'w DedupedCert],
        whois: &[(&DomainName, Date)],
        sink: &dyn obs::CounterSink,
    ) -> Vec<StaleEvent> {
        sink.add("detector.rc.ingest.certs", certs.len() as u64);
        sink.add("detector.rc.ingest.whois", whois.len() as u64);
        let mut events = Vec::new();
        for cert in certs {
            for e2ld in detector.cert_e2lds(cert) {
                let id = self.interner.intern(&e2ld);
                self.certs_by_e2ld.entry(id).or_default().push(cert);
                if let Some(dates) = self.creations.get(&id) {
                    for creation in dates.iter().skip(1) {
                        if let Some(record) = detector.stale_record(&e2ld, *creation, cert) {
                            self.matches.push((id, *creation, record.clone()));
                            events.push(StaleEvent {
                                discovered,
                                record,
                                provenance: Some(Provenance::WhoisCreation {
                                    domain: e2ld.to_string(),
                                    created: creation.to_string(),
                                }),
                            });
                        }
                    }
                }
            }
        }
        for (domain, creation) in whois {
            let id = self.interner.intern(domain);
            let dates = self.creations.entry(id).or_default();
            debug_assert!(
                dates.last().is_none_or(|last| last < creation),
                "whois feed must be chronological per domain"
            );
            dates.push(*creation);
            if dates.len() < 2 {
                continue; // first registration, not a change
            }
            if let Some(certs) = self.certs_by_e2ld.get(&id) {
                for cert in certs {
                    if let Some(record) = detector.stale_record(domain, *creation, cert) {
                        self.matches.push((id, *creation, record.clone()));
                        events.push(StaleEvent {
                            discovered,
                            record,
                            provenance: Some(Provenance::WhoisCreation {
                                domain: domain.to_string(),
                                created: creation.to_string(),
                            }),
                        });
                    }
                }
            }
        }
        sink.add("detector.rc.ingest.events", events.len() as u64);
        events
    }

    /// Retained-state size: indexed e2LD cert lists, creation ledgers and
    /// open matches. Observability only (ledger-growth histograms).
    pub fn footprint(&self) -> usize {
        self.certs_by_e2ld.len() + self.creations.len() + self.matches.len()
    }

    /// All stale records so far, keyed by their `(domain, creation)`
    /// change. The engine maps each key to its global change index (the
    /// batch enumeration order) and reuses the batch merge (which sorts,
    /// so ledger order is irrelevant). O(matches): the ledger is
    /// maintained online by [`RcIncremental::ingest_day`].
    // stale-lint: entry(shard)
    pub fn finish(&self) -> Vec<(DomainName, Date, StaleCertRecord)> {
        self.matches
            .iter()
            .filter_map(|(id, creation, record)| {
                let name = self.interner.name(*id)?;
                Some((name.clone(), *creation, record.clone()))
            })
            .collect()
    }

    /// Per-candidate audit decisions for everything ingested so far: one
    /// per `(change, certificate)` pair — the same candidate universe the
    /// batch [`registrant_change::detect_shard_audited`] reports over
    /// this shard's certificates, built through the shared
    /// [`registrant_change::rc_decision`] so the two paths cannot
    /// disagree. Emission order is irrelevant; the engine's audit merge
    /// sorts canonically.
    pub fn decisions(&self) -> Vec<obs::audit::Decision> {
        let mut out = Vec::new();
        for (id, dates) in &self.creations {
            if dates.len() < 2 {
                continue;
            }
            let Some(domain) = self.interner.name(*id) else {
                continue;
            };
            let Some(certs) = self.certs_by_e2ld.get(id) else {
                continue;
            };
            for creation in dates.iter().skip(1) {
                for cert in certs {
                    out.push(registrant_change::rc_decision(domain, *creation, cert));
                }
            }
        }
        out
    }

    /// Checkpoint form.
    pub fn save(&self) -> SavedRc {
        let mut certs_by_e2ld: Vec<(DomainName, Vec<CertId>)> = self
            .certs_by_e2ld
            .iter()
            .filter_map(|(id, certs)| {
                let name = self.interner.name(*id)?;
                Some((name.clone(), certs.iter().map(|c| c.cert_id).collect()))
            })
            .collect();
        certs_by_e2ld.sort_by(|a, b| a.0.cmp(&b.0));
        let mut creations: Vec<(DomainName, Vec<Date>)> = self
            .creations
            .iter()
            .filter_map(|(id, dates)| {
                let name = self.interner.name(*id)?;
                Some((name.clone(), dates.clone()))
            })
            .collect();
        creations.sort_by(|a, b| a.0.cmp(&b.0));
        SavedRc {
            certs_by_e2ld,
            creations,
        }
    }

    /// Rebuild from a checkpoint, re-resolving certificates by id. The
    /// match ledger is not checkpointed; it is re-derived here, once, from
    /// the restored join state (the full cross product of changes and
    /// certificates, exactly the pairs ingestion would have discovered).
    /// `None` if the checkpoint names a certificate the monitor does not
    /// hold — stale state from a different world is discarded.
    pub fn restore(
        saved: &SavedRc,
        monitor: &'w CtMonitor,
        detector: &RegistrantChangeDetector<'_>,
    ) -> Option<Self> {
        let mut state = RcIncremental::new();
        for (domain, cert_ids) in &saved.certs_by_e2ld {
            let id = state.interner.intern(domain);
            let certs = cert_ids
                .iter()
                .map(|cid| monitor.get(cid))
                .collect::<Option<Vec<_>>>()?;
            state.certs_by_e2ld.insert(id, certs);
        }
        for (domain, dates) in &saved.creations {
            let id = state.interner.intern(domain);
            state.creations.insert(id, dates.clone());
        }
        let mut matches = Vec::new();
        for (id, dates) in &state.creations {
            if dates.len() < 2 {
                continue;
            }
            let Some(domain) = state.interner.name(*id) else {
                continue;
            };
            let Some(certs) = state.certs_by_e2ld.get(id) else {
                continue;
            };
            for creation in dates.iter().skip(1) {
                for cert in certs {
                    if let Some(record) = detector.stale_record(domain, *creation, cert) {
                        matches.push((*id, *creation, record));
                    }
                }
            }
        }
        state.matches = matches;
        Some(state)
    }
}

impl Default for RcIncremental<'_> {
    fn default() -> Self {
        RcIncremental::new()
    }
}

// ---------------------------------------------------------------------------
// §4.3 managed TLS departure
// ---------------------------------------------------------------------------

/// Incremental managed-TLS-departure state for one shard.
#[derive(Clone)]
pub struct MtdIncremental<'w> {
    /// The aDNS measurement window departures must fall in.
    window: DateInterval,
    /// Scan-target interner for the delegation status machine.
    interner: DomainInterner,
    /// Interned scan target → currently delegated to the provider.
    /// Ordered so `save()` iterates deterministically.
    delegated: BTreeMap<u32, bool>,
    /// Open departure ledgers: customer → departure days (chronological),
    /// kept even before any certificate names the customer.
    departures: BTreeMap<DomainName, Vec<Date>>,
    /// Customer → managed certificates naming it (owned customers only).
    certs_by_customer: BTreeMap<DomainName, Vec<&'w DedupedCert>>,
}

/// Compact checkpoint form of [`MtdIncremental`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SavedMtd {
    /// Scan targets currently delegated to the provider.
    pub delegated: Vec<DomainName>,
    /// Scan targets seen but not currently delegated (distinguishes
    /// "observed off" from "never observed").
    pub undelegated: Vec<DomainName>,
    /// Customer → departure days.
    pub departures: Vec<(DomainName, Vec<Date>)>,
    /// Customer → managed certificate ids naming it.
    pub certs_by_customer: Vec<(DomainName, Vec<CertId>)>,
}

impl<'w> MtdIncremental<'w> {
    /// Fresh state for one measurement window.
    pub fn new(window: DateInterval) -> Self {
        MtdIncremental {
            window,
            interner: DomainInterner::new(),
            delegated: BTreeMap::new(),
            departures: BTreeMap::new(),
            certs_by_customer: BTreeMap::new(),
        }
    }

    /// Ingest one day-delta slice: certificates and DNS change-log entries
    /// (chronological per domain). A delegated → undelegated transition at
    /// day `d` inside the window is a departure at `d` (the batch
    /// neighbouring-day diff sees delegation at `d-1` and none at `d`).
    /// `owned` is the shard-ownership predicate for customer domains —
    /// managed certificates are duplicated across shards and must only
    /// count against customers this shard owns.
    // stale-lint: entry(shard)
    pub fn ingest_day(
        &mut self,
        discovered: Date,
        detector: &ManagedTlsDetector<'_>,
        certs: &[&'w DedupedCert],
        dns: &[(Date, &DomainName, &DnsView)],
        owned: impl Fn(&DomainName) -> bool,
    ) -> Vec<StaleEvent> {
        self.ingest_day_observed(discovered, detector, certs, dns, owned, &obs::NullSink)
    }

    /// [`Self::ingest_day`] reporting item counts
    /// (`detector.mtd.ingest.*`) through a write-only
    /// [`obs::CounterSink`]; the sink has no read surface, so ingestion
    /// cannot depend on what was recorded.
    pub fn ingest_day_observed(
        &mut self,
        discovered: Date,
        detector: &ManagedTlsDetector<'_>,
        certs: &[&'w DedupedCert],
        dns: &[(Date, &DomainName, &DnsView)],
        owned: impl Fn(&DomainName) -> bool,
        sink: &dyn obs::CounterSink,
    ) -> Vec<StaleEvent> {
        sink.add("detector.mtd.ingest.certs", certs.len() as u64);
        sink.add("detector.mtd.ingest.dns", dns.len() as u64);
        let mut events = Vec::new();
        for cert in certs {
            if !detector.is_managed_cert(cert) {
                continue;
            }
            for domain in detector.customer_domains(cert) {
                if domain.is_wildcard() || !owned(domain) {
                    continue;
                }
                self.certs_by_customer
                    .entry(domain.clone())
                    .or_default()
                    .push(cert);
                if let Some(days) = self.departures.get(domain) {
                    for departure in days {
                        if let Some(record) = detector.stale_record(domain, *departure, cert) {
                            events.push(StaleEvent {
                                discovered,
                                record,
                                provenance: Some(managed_tls::departure_provenance(
                                    domain, *departure,
                                )),
                            });
                        }
                    }
                }
            }
        }
        for (date, domain, view) in dns {
            let now = detector.is_delegated(view);
            let id = self.interner.intern(domain);
            let before = self.delegated.insert(id, now).unwrap_or(false);
            // Departure at `date`: the batch scanner compares days
            // (date-1, date), which must both lie inside the window.
            if before && !now && *date > self.window.start && *date < self.window.end {
                self.departures
                    .entry((*domain).clone())
                    .or_default()
                    .push(*date);
                if let Some(certs) = self.certs_by_customer.get(*domain) {
                    for cert in certs {
                        if let Some(record) = detector.stale_record(domain, *date, cert) {
                            events.push(StaleEvent {
                                discovered,
                                record,
                                provenance: Some(managed_tls::departure_provenance(domain, *date)),
                            });
                        }
                    }
                }
            }
        }
        sink.add("detector.mtd.ingest.events", events.len() as u64);
        events
    }

    /// Retained-state size: delegation states, departure ledgers and
    /// customer cert lists. Observability only (ledger-growth histograms).
    pub fn footprint(&self) -> usize {
        self.delegated.len() + self.departures.len() + self.certs_by_customer.len()
    }

    /// All stale records so far, in the batch shard's emission order
    /// (customers sorted, departures chronological, certificates by id) —
    /// exactly what [`ManagedTlsDetector::detect_shard`] returns.
    // stale-lint: entry(shard)
    pub fn finish(&self, detector: &ManagedTlsDetector<'_>) -> Vec<StaleCertRecord> {
        let mut records = Vec::new();
        for (domain, certs) in &self.certs_by_customer {
            let Some(days) = self.departures.get(domain) else {
                continue;
            };
            let mut certs = certs.clone();
            certs.sort_by_key(|c| c.cert_id);
            for departure in days {
                for cert in &certs {
                    if let Some(record) = detector.stale_record(domain, *departure, cert) {
                        records.push(record);
                    }
                }
            }
        }
        records
    }

    /// Per-candidate audit decisions for everything ingested so far:
    /// one per `(customer, departure, certificate)` triple, or one
    /// `delegation-still-present` drop per certificate of a customer
    /// with no departure — the same candidate universe the batch
    /// [`ManagedTlsDetector::detect_shard_audited`] reports, built
    /// through the shared [`managed_tls::departure_decision`] /
    /// [`managed_tls::still_present_decision`] so the two paths cannot
    /// disagree. Emission order is irrelevant; the engine's audit merge
    /// sorts canonically.
    pub fn decisions(&self) -> Vec<obs::audit::Decision> {
        let mut out = Vec::new();
        for (domain, certs) in &self.certs_by_customer {
            match self.departures.get(domain) {
                Some(days) if !days.is_empty() => {
                    for departure in days {
                        for cert in certs {
                            out.push(managed_tls::departure_decision(domain, *departure, cert));
                        }
                    }
                }
                _ => {
                    for cert in certs {
                        out.push(managed_tls::still_present_decision(domain, cert));
                    }
                }
            }
        }
        out
    }

    /// Checkpoint form.
    pub fn save(&self) -> SavedMtd {
        let mut delegated = Vec::new();
        let mut undelegated = Vec::new();
        for (id, on) in &self.delegated {
            let Some(name) = self.interner.name(*id) else {
                continue;
            };
            if *on {
                delegated.push(name.clone());
            } else {
                undelegated.push(name.clone());
            }
        }
        delegated.sort();
        undelegated.sort();
        SavedMtd {
            delegated,
            undelegated,
            departures: self
                .departures
                .iter()
                .map(|(d, days)| (d.clone(), days.clone()))
                .collect(),
            certs_by_customer: self
                .certs_by_customer
                .iter()
                .map(|(d, certs)| (d.clone(), certs.iter().map(|c| c.cert_id).collect()))
                .collect(),
        }
    }

    /// Rebuild from a checkpoint, re-resolving certificates by id.
    /// `None` if the checkpoint names a certificate the monitor does not
    /// hold — stale state from a different world is discarded.
    pub fn restore(saved: &SavedMtd, monitor: &'w CtMonitor, window: DateInterval) -> Option<Self> {
        let mut state = MtdIncremental::new(window);
        for domain in &saved.delegated {
            let id = state.interner.intern(domain);
            state.delegated.insert(id, true);
        }
        for domain in &saved.undelegated {
            let id = state.interner.intern(domain);
            state.delegated.insert(id, false);
        }
        for (domain, days) in &saved.departures {
            state.departures.insert(domain.clone(), days.clone());
        }
        for (domain, cert_ids) in &saved.certs_by_customer {
            let certs = cert_ids
                .iter()
                .map(|cid| monitor.get(cid))
                .collect::<Option<Vec<_>>>()?;
            state.certs_by_customer.insert(domain.clone(), certs);
        }
        Some(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn::provider::ProviderConfig;
    use crypto::KeyPair;
    use psl::SuffixList;
    use stale_types::domain::dn;
    use stale_types::Duration;
    use x509::CertificateBuilder;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn interner_roundtrip() -> DomainInterner {
        let mut i = DomainInterner::new();
        assert_eq!(i.intern(&dn("a.com")), 0);
        assert_eq!(i.intern(&dn("b.com")), 1);
        assert_eq!(i.intern(&dn("a.com")), 0);
        i
    }

    #[test]
    fn interner_is_stable_and_recoverable() {
        let i = interner_roundtrip();
        assert_eq!(i.len(), 2);
        assert_eq!(i.name(1), Some(&dn("b.com")));
        assert_eq!(i.name(2), None);
        assert_eq!(i.get(&dn("a.com")), Some(0));
        assert_eq!(i.get(&dn("c.com")), None);
    }

    fn cert(serial: u128, sans: &[&str], nb: &str, days: i64) -> DedupedCert {
        let c = CertificateBuilder::tls_leaf(KeyPair::from_seed([61; 32]).public())
            .serial(serial)
            .issuer_cn("Inc CA")
            .subject_cn(sans[0])
            .sans(sans.iter().map(|s| dn(s)))
            .validity_days(d(nb), Duration::days(days))
            .sign(&KeyPair::from_seed([60; 32]));
        DedupedCert {
            cert_id: c.cert_id(),
            first_seen: c.tbs.not_before(),
            entry_count: 1,
            certificate: c,
        }
    }

    #[test]
    fn rc_pairs_discovered_once_in_either_arrival_order() {
        let psl = SuffixList::default_list();
        let detector = RegistrantChangeDetector::new(&psl);
        let c = cert(1, &["foo.com"], "2021-01-01", 398);

        // Change first, then certificate.
        let mut a = RcIncremental::new();
        let foo = dn("foo.com");
        let e1 = a.ingest_day(
            d("2021-06-01"),
            &detector,
            &[],
            &[(&foo, d("2015-01-01")), (&foo, d("2021-06-01"))],
        );
        assert!(e1.is_empty(), "no certificate yet");
        let e2 = a.ingest_day(d("2021-06-02"), &detector, &[&c], &[]);
        assert_eq!(e2.len(), 1);
        assert_eq!(e2[0].record.invalidation, d("2021-06-01"));

        // Certificate first, then change.
        let mut b = RcIncremental::new();
        let e3 = b.ingest_day(d("2021-01-01"), &detector, &[&c], &[]);
        assert!(e3.is_empty());
        let e4 = b.ingest_day(
            d("2021-06-01"),
            &detector,
            &[],
            &[(&foo, d("2015-01-01")), (&foo, d("2021-06-01"))],
        );
        assert_eq!(e4.len(), 1);
        assert_eq!(a.finish().len(), 1);
        assert_eq!(b.finish().len(), 1);
    }

    #[test]
    fn mtd_departure_requires_prior_delegation_and_window() {
        let psl = SuffixList::default_list();
        let config = ProviderConfig::cloudflare_cruise_liner();
        let detector = ManagedTlsDetector::new(&config, &psl);
        let window = DateInterval::new(d("2022-08-01"), d("2022-10-31")).unwrap();
        let on = DnsView::with_ns([dn("anna.ns.cloudflare.com")]);
        let off = DnsView::with_ns([dn("ns1.elsewhere.net")]);
        let foo = dn("foo.com");

        let mut state = MtdIncremental::new(window);
        let c = cert(1, &["sni1.cloudflaressl.com", "foo.com"], "2022-03-01", 365);
        state.ingest_day(d("2022-03-01"), &detector, &[&c], &[], |_| true);
        // First observation is already off: no departure.
        let e = state.ingest_day(
            d("2022-08-05"),
            &detector,
            &[],
            &[(d("2022-08-05"), &foo, &off)],
            |_| true,
        );
        assert!(e.is_empty());
        // On, then off inside the window: departure.
        state.ingest_day(
            d("2022-08-10"),
            &detector,
            &[],
            &[(d("2022-08-10"), &foo, &on)],
            |_| true,
        );
        let e = state.ingest_day(
            d("2022-09-15"),
            &detector,
            &[],
            &[(d("2022-09-15"), &foo, &off)],
            |_| true,
        );
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].record.invalidation, d("2022-09-15"));
        assert_eq!(state.finish(&detector).len(), 1);
    }
}
