//! Plain-text table and CSV rendering for the experiment runners.

use std::fmt::Write as _;

/// Render an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(*w));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(out, "| {:<width$} ", h, width = widths[i]);
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Render rows as CSV (comma-separated, quotes around cells containing
/// commas or quotes).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Render a horizontal bar chart: one labelled row per value, bar widths
/// scaled to `max_width` characters. Used by the figure runners so the
/// monthly series and CDFs are eyeballable in a terminal.
pub fn bar_chart(rows: &[(String, f64)], max_width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let width = if max > 0.0 {
            ((value / max) * max_width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:<label_width$} |{} {value:.0}",
            "█".repeat(width)
        );
    }
    out
}

/// Render an (x, y in \[0,1\]) curve — a CDF or survival function — as a
/// fixed-height ASCII plot with `cols` sample columns.
pub fn curve_plot(points: &[(i64, f64)], cols: usize, rows: usize) -> String {
    let (Some(first), Some(last)) = (points.first(), points.last()) else {
        return String::from("(no data)\n");
    };
    let x_min = first.0;
    let x_max = last.0.max(x_min + 1);
    // Sample the step function at `cols` x positions.
    let sample = |x: i64| -> f64 {
        let idx = points.partition_point(|(px, _)| *px <= x);
        if idx == 0 {
            0.0
        } else {
            points[idx - 1].1
        }
    };
    let mut grid = vec![vec![' '; cols]; rows];
    #[allow(clippy::needless_range_loop)] // the row index varies per column
    for c in 0..cols {
        let x = x_min + (x_max - x_min) * c as i64 / (cols.max(2) - 1) as i64;
        let y = sample(x).clamp(0.0, 1.0);
        let r = ((1.0 - y) * (rows - 1) as f64).round() as usize;
        grid[r][c] = '•';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_label = 1.0 - r as f64 / (rows - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_label:>4.2} |{line}");
    }
    let _ = writeln!(out, "      {}", "-".repeat(cols));
    let _ = writeln!(out, "      {x_min:<10} … {x_max} days");
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Format a float with one decimal.
pub fn f1(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["Method", "# Certs"],
            &[
                vec!["Key compromise".into(), "286000".into()],
                vec!["RC".into(), "7".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        // Borders + header + 2 rows = 6 lines.
        assert_eq!(lines.len(), 6);
        let width = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == width),
            "all lines same width"
        );
        assert!(out.contains("| Key compromise |"));
    }

    #[test]
    fn csv_escaping() {
        let out = render_csv(
            &["a", "b"],
            &[
                vec!["plain".into(), "has,comma".into()],
                vec!["has\"quote".into(), "x".into()],
            ],
        );
        assert!(out.contains("\"has,comma\""));
        assert!(out.contains("\"has\"\"quote\""));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.753), "75.3%");
        assert_eq!(f1(2.567), "2.6");
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let out = bar_chart(
            &[
                ("2021-11".into(), 100.0),
                ("2021-12".into(), 50.0),
                ("2022-01".into(), 0.0),
            ],
            20,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let bars: Vec<usize> = lines.iter().map(|l| l.matches('█').count()).collect();
        assert_eq!(bars[0], 20);
        assert_eq!(bars[1], 10);
        assert_eq!(bars[2], 0);
    }

    #[test]
    fn bar_chart_all_zero() {
        let out = bar_chart(&[("a".into(), 0.0)], 10);
        assert!(!out.contains('█'));
    }

    #[test]
    fn curve_plot_shapes() {
        // A CDF stepping from 0 to 1.
        let points = vec![(0i64, 0.1), (50, 0.5), (100, 1.0)];
        let out = curve_plot(&points, 30, 5);
        assert!(out.contains('•'));
        assert!(out.contains("100 days"));
        assert_eq!(curve_plot(&[], 30, 5), "(no data)\n");
    }
}
