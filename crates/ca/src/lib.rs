//! Certificate authority substrate: issuance policy, ACME domain
//! validation, certificate issuance with CT submission, revocation and
//! CRL publication/scraping.
//!
//! * [`policy`] — maximum-lifetime rules over time (39 months → 825 days
//!   in 2018 → 398 days in September 2020, §6) plus per-CA self-imposed
//!   limits (Let's Encrypt/GTS/cPanel at 90 days);
//! * [`acme`] — the RFC 8555-shaped DV flow (§2.2, Figure 1): order →
//!   challenge (dns-01 / http-01 / tls-alpn-01) → validation against the
//!   `dns` substrate → finalization, including the 398-day *domain
//!   validation reuse* cache the paper calls out as a staleness source
//!   (§4.4);
//! * [`authority`] — the CA itself: precert → CT submission → final
//!   certificate with SCTs; revocation with RFC 5280 reasons; daily CRLs;
//! * [`scraper`] — the Mozilla-CCADB-style daily CRL collection with
//!   per-CA failure rates, reproducing Table 7 coverage and feeding the
//!   key-compromise detector.

pub mod acme;
pub mod authority;
pub mod ocsp;
pub mod policy;
pub mod scraper;
pub mod star;

pub use acme::{AcmeError, AcmeServer, Challenge, ChallengeType, Order, OrderStatus};
pub use authority::{CertificateAuthority, IssuanceRequest, IssueError};
pub use policy::{baseline_max_lifetime, CaPolicy};
pub use scraper::{CrlDataset, CrlScraper, RevocationRecord, ScrapeStats};
