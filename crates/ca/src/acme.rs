//! ACME-style automated domain validation (RFC 8555 shape).
//!
//! Figure 1 of the paper: the CA sends the subscriber a nonce; the
//! subscriber provisions it where only the domain's controller can —
//! a DNS TXT record (`dns-01`), an HTTP well-known path (`http-01`) or a
//! TLS ALPN response (`tls-alpn-01`) — and the CA checks it before
//! issuing. Validation here runs against the real `dns` substrate; the
//! HTTP and ALPN side is a small [`WebServer`] map standing in for the
//! subscriber's server.
//!
//! The module also implements *domain validation reuse*: a CA may skip
//! re-validation for 398 days after a successful check, which the paper
//! notes "can result in a certificate that is stale from the moment that
//! it is issued" (§4.4).

use crate::authority::{CertificateAuthority, IssuanceRequest, IssueError};
use crate::policy::validation_reuse_window;
use crypto::sha256::sha256;
use crypto::PublicKey;
use ct::log::LogPool;
use dns::record::{RData, RecordType};
use dns::resolver::Resolver;
use stale_types::{AccountId, Date, DomainName, Duration};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use x509::Certificate;

/// Challenge flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChallengeType {
    /// TXT record at `_acme-challenge.<domain>`.
    Dns01,
    /// Token served at `/.well-known/acme-challenge/<token>`.
    Http01,
    /// Token presented in a TLS ALPN handshake.
    TlsAlpn01,
}

/// One pending challenge.
#[derive(Debug, Clone)]
pub struct Challenge {
    /// Flavour.
    pub challenge_type: ChallengeType,
    /// The domain under validation.
    pub domain: DomainName,
    /// Random-nonce token.
    pub token: String,
}

impl Challenge {
    /// The key authorization string the subscriber must provision:
    /// `token || '.' || hex(SHA-256(account key))`.
    pub fn key_authorization(&self, account_key: &PublicKey) -> String {
        let thumb = sha256(account_key.as_bytes());
        let hex: String = thumb[..8].iter().map(|b| format!("{b:02x}")).collect();
        format!("{}.{}", self.token, hex)
    }

    /// Where the dns-01 record must be provisioned.
    pub fn dns_name(&self) -> DomainName {
        self.domain.prepend("_acme-challenge").expect("valid label")
    }
}

/// Order lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderStatus {
    /// Awaiting challenge completion.
    Pending,
    /// All authorizations valid; finalize may be called.
    Ready,
    /// Certificate issued.
    Valid,
    /// A validation failed.
    Invalid,
}

/// A certificate order covering one or more domains.
#[derive(Debug, Clone)]
pub struct Order {
    /// Order id.
    pub id: u64,
    /// Account that placed the order.
    pub account: AccountId,
    /// Domains on the order.
    pub domains: Vec<DomainName>,
    /// Per-domain validation status.
    validated: BTreeMap<DomainName, bool>,
    /// Current status.
    pub status: OrderStatus,
}

impl Order {
    /// Domains still requiring validation.
    pub fn pending_domains(&self) -> Vec<&DomainName> {
        self.validated
            .iter()
            .filter(|(_, &done)| !done)
            .map(|(d, _)| d)
            .collect()
    }
}

/// ACME protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcmeError {
    /// Order id not found.
    UnknownOrder,
    /// The challenge's provisioned response was missing or wrong.
    ValidationFailed {
        /// Domain that failed.
        domain: String,
        /// What went wrong.
        detail: String,
    },
    /// finalize called before all domains validated.
    OrderNotReady,
    /// Underlying issuance failed.
    Issue(IssueError),
}

impl fmt::Display for AcmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcmeError::UnknownOrder => write!(f, "unknown order"),
            AcmeError::ValidationFailed { domain, detail } => {
                write!(f, "validation failed for {domain}: {detail}")
            }
            AcmeError::OrderNotReady => write!(f, "order has unvalidated domains"),
            AcmeError::Issue(e) => write!(f, "issuance failed: {e}"),
        }
    }
}

impl std::error::Error for AcmeError {}

/// The subscriber's web server: domain → served acme-challenge content
/// and ALPN token. Stands in for the HTTP/ALPN side of Figure 1.
#[derive(Debug, Clone, Default)]
pub struct WebServer {
    http_tokens: HashMap<(DomainName, String), String>,
    alpn_tokens: HashMap<DomainName, String>,
}

impl WebServer {
    /// Empty server.
    pub fn new() -> Self {
        WebServer::default()
    }

    /// Serve `content` at `/.well-known/acme-challenge/<token>` for
    /// `domain`.
    pub fn serve_http01(&mut self, domain: DomainName, token: String, content: String) {
        self.http_tokens.insert((domain, token), content);
    }

    /// Present `content` in the TLS ALPN handshake for `domain`.
    pub fn serve_alpn(&mut self, domain: DomainName, content: String) {
        self.alpn_tokens.insert(domain, content);
    }

    fn fetch_http(&self, domain: &DomainName, token: &str) -> Option<&str> {
        self.http_tokens
            .get(&(domain.clone(), token.to_string()))
            .map(String::as_str)
    }

    fn fetch_alpn(&self, domain: &DomainName) -> Option<&str> {
        self.alpn_tokens.get(domain).map(String::as_str)
    }
}

/// An ACME front-end bound to a CA.
pub struct AcmeServer {
    next_order: u64,
    orders: BTreeMap<u64, Order>,
    next_token: u64,
    /// `(account, domain) → validation expiry` — the reuse cache.
    validation_cache: HashMap<(AccountId, DomainName), Date>,
}

impl Default for AcmeServer {
    fn default() -> Self {
        Self::new()
    }
}

impl AcmeServer {
    /// Fresh server.
    pub fn new() -> Self {
        AcmeServer {
            next_order: 1,
            orders: BTreeMap::new(),
            next_token: 1,
            validation_cache: HashMap::new(),
        }
    }

    /// Place an order. Domains with a fresh cached validation (when the
    /// CA's policy allows reuse) are pre-validated.
    pub fn new_order(
        &mut self,
        ca: &CertificateAuthority,
        account: AccountId,
        domains: Vec<DomainName>,
        today: Date,
    ) -> u64 {
        let id = self.next_order;
        self.next_order += 1;
        let mut validated = BTreeMap::new();
        for d in &domains {
            let cached = ca.policy().validation_reuse
                && self
                    .validation_cache
                    .get(&(account, d.clone()))
                    .is_some_and(|expiry| today < *expiry);
            validated.insert(d.clone(), cached);
        }
        let status = if validated.values().all(|&v| v) {
            OrderStatus::Ready
        } else {
            OrderStatus::Pending
        };
        self.orders.insert(
            id,
            Order {
                id,
                account,
                domains,
                validated,
                status,
            },
        );
        id
    }

    /// Get a challenge of `ctype` for `domain` on an order.
    pub fn challenge(
        &mut self,
        order_id: u64,
        domain: &DomainName,
        ctype: ChallengeType,
    ) -> Result<Challenge, AcmeError> {
        let order = self.orders.get(&order_id).ok_or(AcmeError::UnknownOrder)?;
        if !order.validated.contains_key(domain) {
            return Err(AcmeError::ValidationFailed {
                domain: domain.to_string(),
                detail: "domain not on order".into(),
            });
        }
        let token = format!("tok{:08x}", self.next_token);
        self.next_token += 1;
        Ok(Challenge {
            challenge_type: ctype,
            domain: domain.clone(),
            token,
        })
    }

    /// Validate a provisioned challenge against DNS and/or the
    /// subscriber's web server.
    pub fn validate(
        &mut self,
        order_id: u64,
        challenge: &Challenge,
        account_key: &PublicKey,
        resolver: &Resolver,
        web: &WebServer,
        today: Date,
    ) -> Result<(), AcmeError> {
        let order = self.orders.get(&order_id).ok_or(AcmeError::UnknownOrder)?;
        let account = order.account;
        let expected = challenge.key_authorization(account_key);
        let ok = match challenge.challenge_type {
            ChallengeType::Dns01 => {
                let name = challenge.dns_name();
                match resolver.resolve(&name, RecordType::Txt) {
                    Ok(records) => records
                        .iter()
                        .any(|r| matches!(r, RData::Txt(t) if *t == expected)),
                    Err(_) => false,
                }
            }
            ChallengeType::Http01 => {
                web.fetch_http(&challenge.domain, &challenge.token) == Some(expected.as_str())
            }
            ChallengeType::TlsAlpn01 => {
                web.fetch_alpn(&challenge.domain) == Some(expected.as_str())
            }
        };
        let order = self.orders.get_mut(&order_id).expect("checked above");
        if !ok {
            order.status = OrderStatus::Invalid;
            return Err(AcmeError::ValidationFailed {
                domain: challenge.domain.to_string(),
                detail: format!(
                    "{:?} response missing or mismatched",
                    challenge.challenge_type
                ),
            });
        }
        order.validated.insert(challenge.domain.clone(), true);
        self.validation_cache.insert(
            (account, challenge.domain.clone()),
            today + validation_reuse_window(),
        );
        if order.validated.values().all(|&v| v) {
            order.status = OrderStatus::Ready;
        }
        Ok(())
    }

    /// Finalize: issue the certificate for a fully validated order.
    pub fn finalize(
        &mut self,
        order_id: u64,
        subscriber_key: PublicKey,
        requested_lifetime: Option<Duration>,
        ca: &mut CertificateAuthority,
        ct: &mut LogPool,
        today: Date,
    ) -> Result<Certificate, AcmeError> {
        let order = self
            .orders
            .get_mut(&order_id)
            .ok_or(AcmeError::UnknownOrder)?;
        if order.status != OrderStatus::Ready {
            return Err(AcmeError::OrderNotReady);
        }
        let request = IssuanceRequest {
            domains: order.domains.clone(),
            public_key: subscriber_key,
            requested_lifetime,
        };
        let cert = ca.issue(&request, today, ct).map_err(AcmeError::Issue)?;
        order.status = OrderStatus::Valid;
        Ok(cert)
    }

    /// Inspect an order.
    pub fn order(&self, id: u64) -> Option<&Order> {
        self.orders.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CaPolicy;
    use crypto::KeyPair;
    use dns::zone::Zone;
    use stale_types::domain::dn;
    use stale_types::CaId;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    struct Fixture {
        ca: CertificateAuthority,
        acme: AcmeServer,
        resolver: Resolver,
        web: WebServer,
        ct: LogPool,
        account_key: KeyPair,
        subscriber_key: KeyPair,
    }

    fn fixture(policy: CaPolicy) -> Fixture {
        let mut resolver = Resolver::new();
        resolver.add_zone(Zone::new(dn("foo.com")));
        Fixture {
            ca: CertificateAuthority::new(CaId(1), "ACME CA", KeyPair::from_seed([1; 32]), policy),
            acme: AcmeServer::new(),
            resolver,
            web: WebServer::new(),
            ct: LogPool::with_yearly_shards("argon", 9, 2020, 2026),
            account_key: KeyPair::from_seed([2; 32]),
            subscriber_key: KeyPair::from_seed([3; 32]),
        }
    }

    #[test]
    fn dns01_end_to_end() {
        let mut f = fixture(CaPolicy::automated_90_day());
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Pending);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        // Subscriber provisions the TXT record.
        let key_auth = ch.key_authorization(&f.account_key.public());
        f.resolver
            .zone_mut(&dn("foo.com"))
            .unwrap()
            .add_data(ch.dns_name(), RData::Txt(key_auth));
        f.acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Ready);
        let cert = f
            .acme
            .finalize(
                order,
                f.subscriber_key.public(),
                None,
                &mut f.ca,
                &mut f.ct,
                today,
            )
            .unwrap();
        assert_eq!(cert.tbs.san(), &[dn("foo.com")]);
        assert_eq!(cert.tbs.lifetime(), Duration::days(90));
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Valid);
    }

    #[test]
    fn http01_and_alpn_end_to_end() {
        let mut f = fixture(CaPolicy::automated_90_day());
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Http01)
            .unwrap();
        let key_auth = ch.key_authorization(&f.account_key.public());
        f.web
            .serve_http01(dn("foo.com"), ch.token.clone(), key_auth);
        f.acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Ready);

        // ALPN variant on a second order.
        let order2 = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch2 = f
            .acme
            .challenge(order2, &dn("foo.com"), ChallengeType::TlsAlpn01)
            .unwrap();
        let key_auth2 = ch2.key_authorization(&f.account_key.public());
        f.web.serve_alpn(dn("foo.com"), key_auth2);
        f.acme
            .validate(
                order2,
                &ch2,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
    }

    #[test]
    fn missing_record_fails_validation() {
        let mut f = fixture(CaPolicy::automated_90_day());
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        let err = f
            .acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap_err();
        assert!(matches!(err, AcmeError::ValidationFailed { .. }));
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Invalid);
        // Finalizing an invalid order fails.
        assert_eq!(
            f.acme
                .finalize(
                    order,
                    f.subscriber_key.public(),
                    None,
                    &mut f.ca,
                    &mut f.ct,
                    today
                )
                .unwrap_err(),
            AcmeError::OrderNotReady
        );
    }

    #[test]
    fn wrong_account_key_fails() {
        let mut f = fixture(CaPolicy::automated_90_day());
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        // Provision a key auth for a *different* account key.
        let other = KeyPair::from_seed([99; 32]);
        f.resolver.zone_mut(&dn("foo.com")).unwrap().add_data(
            ch.dns_name(),
            RData::Txt(ch.key_authorization(&other.public())),
        );
        assert!(f
            .acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today
            )
            .is_err());
    }

    #[test]
    fn validation_reuse_skips_revalidation() {
        let mut f = fixture(CaPolicy::commercial()); // reuse enabled
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        f.resolver.zone_mut(&dn("foo.com")).unwrap().add_data(
            ch.dns_name(),
            RData::Txt(ch.key_authorization(&f.account_key.public())),
        );
        f.acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
        // A later order within 398 days is Ready immediately.
        let later = d("2023-01-01");
        let order2 = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], later);
        assert_eq!(f.acme.order(order2).unwrap().status, OrderStatus::Ready);
        // Beyond the window it is Pending again.
        let much_later = d("2023-05-01");
        let order3 = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], much_later);
        assert_eq!(f.acme.order(order3).unwrap().status, OrderStatus::Pending);
        // A different account gets no reuse.
        let order4 = f
            .acme
            .new_order(&f.ca, AccountId(2), vec![dn("foo.com")], later);
        assert_eq!(f.acme.order(order4).unwrap().status, OrderStatus::Pending);
    }

    #[test]
    fn reuse_disabled_for_90_day_ca() {
        let mut f = fixture(CaPolicy::automated_90_day());
        let today = d("2022-03-01");
        let order = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], today);
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        f.resolver.zone_mut(&dn("foo.com")).unwrap().add_data(
            ch.dns_name(),
            RData::Txt(ch.key_authorization(&f.account_key.public())),
        );
        f.acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
        let order2 = f
            .acme
            .new_order(&f.ca, AccountId(1), vec![dn("foo.com")], d("2022-04-01"));
        assert_eq!(f.acme.order(order2).unwrap().status, OrderStatus::Pending);
    }

    #[test]
    fn multi_domain_order_requires_all() {
        let mut f = fixture(CaPolicy::automated_90_day());
        f.resolver.add_zone(Zone::new(dn("bar.com")));
        let today = d("2022-03-01");
        let order = f.acme.new_order(
            &f.ca,
            AccountId(1),
            vec![dn("foo.com"), dn("bar.com")],
            today,
        );
        let ch = f
            .acme
            .challenge(order, &dn("foo.com"), ChallengeType::Dns01)
            .unwrap();
        f.resolver.zone_mut(&dn("foo.com")).unwrap().add_data(
            ch.dns_name(),
            RData::Txt(ch.key_authorization(&f.account_key.public())),
        );
        f.acme
            .validate(
                order,
                &ch,
                &f.account_key.public(),
                &f.resolver,
                &f.web,
                today,
            )
            .unwrap();
        // bar.com still pending.
        assert_eq!(f.acme.order(order).unwrap().status, OrderStatus::Pending);
        assert_eq!(
            f.acme.order(order).unwrap().pending_domains(),
            vec![&dn("bar.com")]
        );
    }
}
