//! Daily CRL collection (the §4.1 pipeline, Table 7 in Appendix B).
//!
//! Since October 2022 Mozilla requires CRL disclosure for all trusted
//! certificates, so the paper could enumerate and download every CRL once
//! a day. Some CRL servers blocked scraping; the paper reached >97% of
//! daily CRLs. [`CrlScraper`] models exactly that: a daily fetch loop with
//! a per-CA failure probability, DER parse of everything fetched, and
//! dedup of revocation entries into a [`CrlDataset`].

use crate::authority::CertificateAuthority;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stale_types::{Date, DateInterval, KeyId, SerialNumber};
use std::collections::{BTreeMap, HashSet};
use x509::revocation::{Crl, RevocationReason};

/// One revocation as the pipeline stores it: exactly the fields a CRL
/// carries (no certificate contents — those come from the CT join).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RevocationRecord {
    /// Issuing key (CRL scope).
    pub authority_key_id: KeyId,
    /// Revoked serial.
    pub serial: SerialNumber,
    /// Revocation effective date.
    pub revocation_date: Date,
    /// Declared reason.
    pub reason: RevocationReason,
    /// Day the scraper first observed the entry.
    pub observed: Date,
}

/// Deduplicated revocation collection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrlDataset {
    records: Vec<RevocationRecord>,
    #[serde(skip)]
    seen: HashSet<(KeyId, SerialNumber)>,
    /// Collection window.
    pub window: Option<DateInterval>,
}

impl CrlDataset {
    /// Empty dataset.
    pub fn new() -> Self {
        CrlDataset::default()
    }

    /// Add an entry if unseen; returns whether it was new.
    pub fn add(&mut self, record: RevocationRecord) -> bool {
        if self.seen.insert((record.authority_key_id, record.serial)) {
            self.records.push(record);
            true
        } else {
            false
        }
    }

    /// All records.
    pub fn records(&self) -> &[RevocationRecord] {
        &self.records
    }

    /// Records with a given reason.
    pub fn with_reason(&self, reason: RevocationReason) -> impl Iterator<Item = &RevocationRecord> {
        self.records.iter().filter(move |r| r.reason == reason)
    }

    /// Total revocations collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Per-CA and total scrape coverage (Table 7).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScrapeStats {
    /// CA name → (attempted downloads, successful downloads).
    pub per_ca: BTreeMap<String, (u64, u64)>,
}

impl ScrapeStats {
    fn record(&mut self, ca: &str, success: bool) {
        let entry = self.per_ca.entry(ca.to_string()).or_insert((0, 0));
        entry.0 += 1;
        if success {
            entry.1 += 1;
        }
    }

    /// Coverage fraction for one CA.
    pub fn coverage(&self, ca: &str) -> Option<f64> {
        self.per_ca
            .get(ca)
            .map(|(a, s)| if *a == 0 { 1.0 } else { *s as f64 / *a as f64 })
    }

    /// Total coverage across CAs.
    pub fn total_coverage(&self) -> f64 {
        let (a, s) = self
            .per_ca
            .values()
            .fold((0u64, 0u64), |(a, s), (pa, ps)| (a + pa, s + ps));
        if a == 0 {
            1.0
        } else {
            s as f64 / a as f64
        }
    }

    /// Rows sorted by ascending coverage, as Table 7 presents them.
    pub fn rows_by_coverage(&self) -> Vec<(String, u64, u64, f64)> {
        let mut rows: Vec<_> = self
            .per_ca
            .iter()
            .map(|(name, (a, s))| {
                (
                    name.clone(),
                    *s,
                    *a,
                    if *a == 0 { 1.0 } else { *s as f64 / *a as f64 },
                )
            })
            .collect();
        rows.sort_by(|x, y| x.3.partial_cmp(&y.3).expect("finite").then(x.0.cmp(&y.0)));
        rows
    }
}

/// Daily CRL scraper with per-CA failure rates.
pub struct CrlScraper {
    /// CA name → probability a daily download fails (anti-scraping, etc.).
    failure_rates: BTreeMap<String, f64>,
    /// Default failure rate for CAs not listed.
    default_failure: f64,
    rng: StdRng,
}

impl CrlScraper {
    /// Scraper with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        CrlScraper {
            failure_rates: BTreeMap::new(),
            default_failure: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Set a per-CA failure rate.
    pub fn with_failure_rate(mut self, ca_name: impl Into<String>, rate: f64) -> Self {
        self.failure_rates
            .insert(ca_name.into(), rate.clamp(0.0, 1.0));
        self
    }

    /// Set the default failure rate.
    pub fn with_default_failure(mut self, rate: f64) -> Self {
        self.default_failure = rate.clamp(0.0, 1.0);
        self
    }

    /// Scrape every CA daily over `[window.start, window.end)`.
    ///
    /// Each successful download round-trips the CRL through its DER
    /// encoding (as a real scraper must parse what it fetched) and merges
    /// new entries into the dataset.
    pub fn scrape(
        &mut self,
        cas: &[&CertificateAuthority],
        window: DateInterval,
    ) -> (CrlDataset, ScrapeStats) {
        let mut dataset = CrlDataset::new();
        dataset.window = Some(window);
        let mut stats = ScrapeStats::default();
        for day in window.days() {
            for ca in cas {
                let rate = self
                    .failure_rates
                    .get(&ca.name)
                    .copied()
                    .unwrap_or(self.default_failure);
                let failed = self.rng.gen_bool(rate);
                stats.record(&ca.name, !failed);
                if failed {
                    continue;
                }
                let published = ca.publish_crl(day);
                let fetched = Crl::decode(&published.encode()).expect("CA emits valid DER");
                debug_assert!(fetched.verify(&ca.public_key()), "CRL signature");
                for entry in &fetched.entries {
                    dataset.add(RevocationRecord {
                        authority_key_id: fetched.authority_key_id,
                        serial: entry.serial,
                        revocation_date: entry.revocation_date,
                        reason: entry.reason,
                        observed: day,
                    });
                }
            }
        }
        (dataset, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::IssuanceRequest;
    use crate::policy::CaPolicy;
    use crypto::KeyPair;
    use ct::log::LogPool;
    use stale_types::domain::dn;
    use stale_types::CaId;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn ca_with_revocations(id: u32, name: &str, n: usize) -> CertificateAuthority {
        let mut ct = LogPool::with_yearly_shards("argon", 9, 2020, 2026);
        let mut ca = CertificateAuthority::new(
            CaId(id),
            name,
            KeyPair::from_seed([id as u8; 32]),
            CaPolicy::commercial(),
        );
        for i in 0..n {
            let cert = ca
                .issue(
                    &IssuanceRequest {
                        domains: vec![dn(&format!("site{i}.com"))],
                        public_key: KeyPair::from_seed([200; 32]).public(),
                        requested_lifetime: None,
                    },
                    d("2022-06-01"),
                    &mut ct,
                )
                .unwrap();
            ca.revoke(
                cert.tbs.serial,
                d("2022-10-15"),
                RevocationReason::KeyCompromise,
            )
            .unwrap();
        }
        ca
    }

    #[test]
    fn scrape_collects_and_dedups() {
        let ca = ca_with_revocations(1, "Sectigo", 5);
        let mut scraper = CrlScraper::new(1);
        let window = DateInterval::new(d("2022-11-01"), d("2022-11-11")).unwrap();
        let (dataset, stats) = scraper.scrape(&[&ca], window);
        // 5 revocations, seen on 10 days, deduped to 5.
        assert_eq!(dataset.len(), 5);
        assert_eq!(stats.coverage("Sectigo"), Some(1.0));
        assert_eq!(stats.per_ca["Sectigo"], (10, 10));
        // All observed on day one.
        assert!(dataset
            .records()
            .iter()
            .all(|r| r.observed == d("2022-11-01")));
    }

    #[test]
    fn failure_rate_reduces_coverage() {
        let ca = ca_with_revocations(2, "Blocked CA", 3);
        let mut scraper = CrlScraper::new(42).with_failure_rate("Blocked CA", 1.0);
        let window = DateInterval::new(d("2022-11-01"), d("2022-11-08")).unwrap();
        let (dataset, stats) = scraper.scrape(&[&ca], window);
        assert!(dataset.is_empty());
        assert_eq!(stats.coverage("Blocked CA"), Some(0.0));
        assert_eq!(stats.total_coverage(), 0.0);
    }

    #[test]
    fn partial_failure_still_collects_eventually() {
        let ca = ca_with_revocations(3, "Flaky CA", 4);
        let mut scraper = CrlScraper::new(7).with_failure_rate("Flaky CA", 0.5);
        let window = DateInterval::new(d("2022-11-01"), d("2022-12-01")).unwrap();
        let (dataset, stats) = scraper.scrape(&[&ca], window);
        // Over 30 days at 50% failure the CRL is fetched many times.
        assert_eq!(dataset.len(), 4);
        let cov = stats.coverage("Flaky CA").unwrap();
        assert!(cov > 0.2 && cov < 0.8, "coverage {cov}");
    }

    #[test]
    fn rows_sorted_ascending_like_table7() {
        let good = ca_with_revocations(4, "Good CA", 1);
        let bad = ca_with_revocations(5, "Bad CA", 1);
        let mut scraper = CrlScraper::new(9)
            .with_failure_rate("Bad CA", 0.9)
            .with_failure_rate("Good CA", 0.0);
        let window = DateInterval::new(d("2022-11-01"), d("2022-12-01")).unwrap();
        let (_, stats) = scraper.scrape(&[&good, &bad], window);
        let rows = stats.rows_by_coverage();
        assert_eq!(rows[0].0, "Bad CA");
        assert_eq!(rows[1].0, "Good CA");
        assert!(rows[0].3 < rows[1].3);
    }

    #[test]
    fn reason_filter() {
        let ca = ca_with_revocations(6, "CA", 3);
        let mut scraper = CrlScraper::new(1);
        let window = DateInterval::new(d("2022-11-01"), d("2022-11-02")).unwrap();
        let (dataset, _) = scraper.scrape(&[&ca], window);
        assert_eq!(
            dataset.with_reason(RevocationReason::KeyCompromise).count(),
            3
        );
        assert_eq!(dataset.with_reason(RevocationReason::Superseded).count(), 0);
    }
}
