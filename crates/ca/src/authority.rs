//! The certificate authority: issuance, CT submission, revocation, CRLs.

use crate::policy::CaPolicy;
use crypto::{KeyPair, PublicKey};
use ct::log::LogPool;
use stale_types::{CaId, Date, DomainName, Duration, KeyId, SerialNumber};
use std::collections::BTreeMap;
use std::fmt;
use x509::revocation::{Crl, CrlEntry, RevocationReason};
use x509::{Certificate, CertificateBuilder, Name};

/// A subscriber's certificate request after domain control has been
/// validated.
#[derive(Debug, Clone)]
pub struct IssuanceRequest {
    /// Names to certify (already validated).
    pub domains: Vec<DomainName>,
    /// Subscriber public key.
    pub public_key: PublicKey,
    /// Requested lifetime; `None` takes the CA default.
    pub requested_lifetime: Option<Duration>,
}

/// Issuance failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueError {
    /// Request contained no names.
    NoDomains,
    /// No CT log accepted the precertificate (all shards out of range).
    CtSubmissionFailed,
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueError::NoDomains => write!(f, "issuance request listed no domains"),
            IssueError::CtSubmissionFailed => write!(f, "no CT log accepted the precertificate"),
        }
    }
}

impl std::error::Error for IssueError {}

/// Revocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RevokeError {
    /// The serial was never issued by this CA.
    UnknownSerial,
    /// Already revoked.
    AlreadyRevoked,
}

/// A certificate authority with one issuing key.
pub struct CertificateAuthority {
    /// Stable identifier.
    pub id: CaId,
    /// Issuer common name (appears in issued certificates).
    pub name: String,
    /// Organization (optional; appears in issuer DN).
    pub organization: Option<String>,
    key: KeyPair,
    policy: CaPolicy,
    crl_url: String,
    next_serial: u128,
    /// Issued certificates by serial (what CRL entries join back to).
    issued: BTreeMap<SerialNumber, Certificate>,
    /// Revocations by serial.
    revocations: BTreeMap<SerialNumber, CrlEntry>,
}

impl CertificateAuthority {
    /// Create a CA.
    pub fn new(id: CaId, name: impl Into<String>, key: KeyPair, policy: CaPolicy) -> Self {
        let name = name.into();
        let crl_url = format!("http://crl.{}.example/{}.crl", id.0, name.replace(' ', "-"));
        CertificateAuthority {
            id,
            name,
            organization: None,
            key,
            policy,
            crl_url,
            next_serial: 1,
            issued: BTreeMap::new(),
            revocations: BTreeMap::new(),
        }
    }

    /// Set the organization shown in the issuer DN.
    pub fn with_organization(mut self, org: impl Into<String>) -> Self {
        self.organization = Some(org.into());
        self
    }

    /// The CA's issuing key id — the AKI on everything it issues and the
    /// join key for its CRLs.
    pub fn key_id(&self) -> KeyId {
        KeyId::from_bytes(self.key.public().key_id())
    }

    /// The CA's public key.
    pub fn public_key(&self) -> PublicKey {
        self.key.public()
    }

    /// The issuance policy.
    pub fn policy(&self) -> &CaPolicy {
        &self.policy
    }

    /// The issuer distinguished name stamped on certificates.
    pub fn issuer_name(&self) -> Name {
        match &self.organization {
            Some(org) => Name::cn_org(self.name.clone(), org.clone()),
            None => Name::cn(self.name.clone()),
        }
    }

    /// Issue a certificate: build precert, log it, embed SCTs, sign the
    /// final certificate, record it.
    pub fn issue(
        &mut self,
        request: &IssuanceRequest,
        today: Date,
        ct: &mut LogPool,
    ) -> Result<Certificate, IssueError> {
        if request.domains.is_empty() {
            return Err(IssueError::NoDomains);
        }
        let lifetime = self.policy.clamp(request.requested_lifetime, today);
        let serial = self.next_serial;
        self.next_serial += 1;
        let base = || {
            CertificateBuilder::tls_leaf(request.public_key)
                .serial(serial)
                .issuer(self.issuer_name())
                .subject_cn(request.domains[0].as_str())
                .sans(request.domains.iter().cloned())
                .validity_days(today, lifetime)
                .crl_url(self.crl_url.clone())
                .ocsp_url(format!("http://ocsp.{}.example", self.id.0))
        };
        let precert = base().precert().sign(&self.key);
        let (_log, sct) = ct
            .submit(precert, today)
            .ok_or(IssueError::CtSubmissionFailed)?;
        let final_cert = base().scts(vec![sct]).sign(&self.key);
        self.issued.insert(SerialNumber(serial), final_cert.clone());
        Ok(final_cert)
    }

    /// Revoke `serial` effective `date` for `reason`.
    pub fn revoke(
        &mut self,
        serial: SerialNumber,
        date: Date,
        reason: RevocationReason,
    ) -> Result<(), RevokeError> {
        if !self.issued.contains_key(&serial) {
            return Err(RevokeError::UnknownSerial);
        }
        if self.revocations.contains_key(&serial) {
            return Err(RevokeError::AlreadyRevoked);
        }
        self.revocations.insert(
            serial,
            CrlEntry {
                serial,
                revocation_date: date,
                reason,
            },
        );
        Ok(())
    }

    /// Publish today's CRL. Expired revocations are retained (real CRLs
    /// may drop them; keeping them models the paper's observation of
    /// revoked-after-expiration outliers it has to filter).
    pub fn publish_crl(&self, today: Date) -> Crl {
        Crl::build(
            &self.key,
            today,
            today + Duration::days(7),
            self.revocations.values().copied().collect(),
        )
    }

    /// The CRL distribution URL.
    pub fn crl_url(&self) -> &str {
        &self.crl_url
    }

    /// Look up an issued certificate by serial.
    pub fn issued(&self, serial: SerialNumber) -> Option<&Certificate> {
        self.issued.get(&serial)
    }

    /// Number of certificates issued.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }

    /// Number of revocations recorded.
    pub fn revocation_count(&self) -> usize {
        self.revocations.len()
    }

    /// Sign OCSP responder bytes (the responder runs inside the CA in
    /// this model; see [`crate::ocsp`]).
    pub fn sign_ocsp(&self, bytes: &[u8]) -> crypto::Signature {
        crypto::SimSig::sign(self.key.private(), bytes)
    }

    /// Countersign a fully prepared certificate profile and record it as
    /// issued. Used for profiles [`Self::issue`] does not construct
    /// (Must-Staple opt-ins, bespoke key usages); the serial is assigned
    /// by the CA.
    pub fn sign_certificate(&mut self, builder: x509::CertificateBuilder) -> Certificate {
        let serial = self.next_serial;
        self.next_serial += 1;
        let cert = builder
            .serial(serial)
            .issuer(self.issuer_name())
            .sign(&self.key);
        self.issued.insert(SerialNumber(serial), cert.clone());
        cert
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ct::log::LogPool;
    use stale_types::domain::dn;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn pool() -> LogPool {
        LogPool::with_yearly_shards("argon", 9, 2015, 2026)
    }

    fn ca(policy: CaPolicy) -> CertificateAuthority {
        CertificateAuthority::new(CaId(1), "Test CA R1", KeyPair::from_seed([7; 32]), policy)
    }

    fn request(names: &[&str]) -> IssuanceRequest {
        IssuanceRequest {
            domains: names.iter().map(|s| dn(s)).collect(),
            public_key: KeyPair::from_seed([8; 32]).public(),
            requested_lifetime: None,
        }
    }

    #[test]
    fn issue_embeds_scts_and_logs_precert() {
        let mut ct = pool();
        let mut authority = ca(CaPolicy::automated_90_day());
        let cert = authority
            .issue(
                &request(&["foo.com", "www.foo.com"]),
                d("2022-03-01"),
                &mut ct,
            )
            .unwrap();
        assert_eq!(cert.tbs.lifetime(), Duration::days(90));
        assert_eq!(cert.tbs.san().len(), 2);
        assert!(!cert.tbs.is_precert());
        assert!(cert
            .tbs
            .extensions
            .iter()
            .any(|e| matches!(e, x509::Extension::SctList(scts) if scts.len() == 1)));
        // Precert landed in the 2022 shard (expiry 2022-05-30).
        assert_eq!(ct.total_entries(), 1);
        assert_eq!(authority.issued_count(), 1);
        // AKI matches the CA key.
        assert_eq!(cert.tbs.authority_key_id(), Some(authority.key_id()));
    }

    #[test]
    fn lifetime_clamped_by_date_policy() {
        let mut ct = pool();
        let mut authority = ca(CaPolicy::commercial());
        // Commercial CA asked for 825 days in 2019: granted.
        let req = IssuanceRequest {
            requested_lifetime: Some(Duration::days(825)),
            ..request(&["foo.com"])
        };
        let cert = authority.issue(&req, d("2019-01-01"), &mut ct).unwrap();
        assert_eq!(cert.tbs.lifetime(), Duration::days(825));
        // Same request after September 2020: clamped to 398.
        let cert2 = authority.issue(&req, d("2021-01-01"), &mut ct).unwrap();
        assert_eq!(cert2.tbs.lifetime(), Duration::days(398));
    }

    #[test]
    fn empty_request_rejected() {
        let mut ct = pool();
        let mut authority = ca(CaPolicy::automated_90_day());
        assert_eq!(
            authority.issue(&request(&[]), d("2022-01-01"), &mut ct),
            Err(IssueError::NoDomains)
        );
    }

    #[test]
    fn ct_rejection_surfaces() {
        // Pool only covers 2015; a 2022 cert finds no shard.
        let mut ct = LogPool::with_yearly_shards("argon", 9, 2015, 2015);
        let mut authority = ca(CaPolicy::automated_90_day());
        assert_eq!(
            authority.issue(&request(&["foo.com"]), d("2022-01-01"), &mut ct),
            Err(IssueError::CtSubmissionFailed)
        );
    }

    #[test]
    fn revoke_and_publish_crl() {
        let mut ct = pool();
        let mut authority = ca(CaPolicy::commercial());
        let cert = authority
            .issue(&request(&["foo.com"]), d("2022-01-01"), &mut ct)
            .unwrap();
        let serial = cert.tbs.serial;
        authority
            .revoke(serial, d("2022-02-01"), RevocationReason::KeyCompromise)
            .unwrap();
        // Double revocation rejected.
        assert_eq!(
            authority.revoke(serial, d("2022-02-02"), RevocationReason::Superseded),
            Err(RevokeError::AlreadyRevoked)
        );
        // Unknown serial rejected.
        assert_eq!(
            authority.revoke(
                SerialNumber(999),
                d("2022-02-01"),
                RevocationReason::Unspecified
            ),
            Err(RevokeError::UnknownSerial)
        );
        let crl = authority.publish_crl(d("2022-02-03"));
        assert_eq!(crl.entries.len(), 1);
        assert_eq!(crl.entries[0].reason, RevocationReason::KeyCompromise);
        assert_eq!(crl.authority_key_id, authority.key_id());
        assert!(crl.verify(&authority.public_key()));
    }

    #[test]
    fn serials_increment() {
        let mut ct = pool();
        let mut authority = ca(CaPolicy::automated_90_day());
        let a = authority
            .issue(&request(&["a.com"]), d("2022-01-01"), &mut ct)
            .unwrap();
        let b = authority
            .issue(&request(&["b.com"]), d("2022-01-01"), &mut ct)
            .unwrap();
        assert_ne!(a.tbs.serial, b.tbs.serial);
        assert!(authority.issued(a.tbs.serial).is_some());
    }
}
