//! STAR: Short-Term, Automatically Renewed certificates (RFC 8739),
//! referenced by the paper (§6, reference 67) as the automation that makes further
//! lifetime reductions feasible.
//!
//! The subscriber places one recurring order; the CA pre-issues a stream
//! of very short-lived certificates on a fixed cadence and the subscriber
//! (or its CDN) fetches the current one. Revocation becomes unnecessary:
//! cancelling the order stops issuance, and exposure from any stale
//! certificate is bounded by the tiny lifetime — this is the
//! lifetime-reduction endgame for all three third-party staleness classes.

use crate::authority::{CertificateAuthority, IssuanceRequest, IssueError};
use crypto::PublicKey;
use ct::log::LogPool;
use stale_types::{Date, DomainName, Duration};
use x509::Certificate;

/// A recurring short-term certificate order.
#[derive(Debug, Clone)]
pub struct StarOrder {
    /// Domains covered (validated once at order time, like ACME).
    pub domains: Vec<DomainName>,
    /// Subscriber key.
    pub public_key: PublicKey,
    /// Lifetime of each issued certificate (e.g. 7 days).
    pub cert_lifetime: Duration,
    /// Issuance cadence; must be shorter than the lifetime so consecutive
    /// certificates overlap (seamless rotation).
    pub cadence: Duration,
    /// First issuance day.
    pub start: Date,
    /// Order end: no certificate is issued at or after this day.
    pub until: Date,
    /// Whether the subscriber has cancelled.
    cancelled: Option<Date>,
}

/// Order construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StarError {
    /// Cadence must be positive and no longer than the lifetime.
    BadCadence,
    /// The requested day is outside the order's active range.
    NotActive,
    /// Underlying issuance failed.
    Issue(IssueError),
}

impl StarOrder {
    /// Create a recurring order.
    pub fn new(
        domains: Vec<DomainName>,
        public_key: PublicKey,
        cert_lifetime: Duration,
        cadence: Duration,
        start: Date,
        until: Date,
    ) -> Result<StarOrder, StarError> {
        if cadence.num_days() <= 0 || cadence > cert_lifetime {
            return Err(StarError::BadCadence);
        }
        Ok(StarOrder {
            domains,
            public_key,
            cert_lifetime,
            cadence,
            start,
            until,
            cancelled: None,
        })
    }

    /// Cancel the order effective `today`: no further certificates.
    pub fn cancel(&mut self, today: Date) {
        if self.cancelled.is_none() {
            self.cancelled = Some(today);
        }
    }

    /// The effective end of issuance.
    pub fn effective_until(&self) -> Date {
        match self.cancelled {
            Some(cancelled) => cancelled.min(self.until),
            None => self.until,
        }
    }

    /// The issuance-window start covering `today`, if the order is
    /// active then.
    pub fn window_start(&self, today: Date) -> Option<Date> {
        if today < self.start || today >= self.effective_until() {
            return None;
        }
        let elapsed = (today - self.start).num_days();
        let k = elapsed / self.cadence.num_days();
        Some(self.start + Duration::days(k * self.cadence.num_days()))
    }

    /// Fetch (issuing on demand) the certificate for `today`.
    pub fn fetch(
        &self,
        today: Date,
        ca: &mut CertificateAuthority,
        ct: &mut LogPool,
    ) -> Result<Certificate, StarError> {
        let window = self.window_start(today).ok_or(StarError::NotActive)?;
        let request = IssuanceRequest {
            domains: self.domains.clone(),
            public_key: self.public_key,
            requested_lifetime: Some(self.cert_lifetime),
        };
        // The CA's policy still caps the lifetime; STAR lifetimes are far
        // below every cap so the request passes through unchanged.
        let mut cert = ca.issue(&request, window, ct).map_err(StarError::Issue)?;
        debug_assert_eq!(cert.tbs.not_before(), window);
        let _ = &mut cert;
        Ok(cert)
    }

    /// Worst-case staleness in days if control changes at any point: the
    /// longest a previously fetched certificate can outlive the change.
    pub fn max_staleness(&self) -> Duration {
        self.cert_lifetime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::CaPolicy;
    use crypto::KeyPair;
    use stale_types::{domain::dn, CaId};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn fixture() -> (CertificateAuthority, LogPool, StarOrder) {
        let ca = CertificateAuthority::new(
            CaId(50),
            "STAR CA",
            KeyPair::from_seed([50; 32]),
            CaPolicy::automated_90_day(),
        );
        let ct = LogPool::with_yearly_shards("star", 14, 2022, 2024);
        let order = StarOrder::new(
            vec![dn("rotating.com")],
            KeyPair::from_seed([51; 32]).public(),
            Duration::days(7),
            Duration::days(4),
            d("2022-06-01"),
            d("2022-12-01"),
        )
        .unwrap();
        (ca, ct, order)
    }

    #[test]
    fn fetch_returns_short_lived_overlapping_certs() {
        let (mut ca, mut ct, order) = fixture();
        let c1 = order.fetch(d("2022-06-02"), &mut ca, &mut ct).unwrap();
        assert_eq!(c1.tbs.lifetime(), Duration::days(7));
        assert_eq!(c1.tbs.not_before(), d("2022-06-01"));
        // Next window starts before the previous cert expires: overlap.
        let c2 = order.fetch(d("2022-06-06"), &mut ca, &mut ct).unwrap();
        assert_eq!(c2.tbs.not_before(), d("2022-06-05"));
        assert!(c2.tbs.not_before() < c1.tbs.not_after());
    }

    #[test]
    fn cancellation_stops_issuance() {
        let (mut ca, mut ct, mut order) = fixture();
        order.fetch(d("2022-06-02"), &mut ca, &mut ct).unwrap();
        order.cancel(d("2022-07-01"));
        assert_eq!(
            order.fetch(d("2022-07-02"), &mut ca, &mut ct).unwrap_err(),
            StarError::NotActive
        );
        // Exposure after cancellation is bounded by one lifetime.
        assert_eq!(order.max_staleness(), Duration::days(7));
    }

    #[test]
    fn inactive_outside_range() {
        let (mut ca, mut ct, order) = fixture();
        assert_eq!(
            order.fetch(d("2022-05-31"), &mut ca, &mut ct).unwrap_err(),
            StarError::NotActive
        );
        assert_eq!(
            order.fetch(d("2022-12-01"), &mut ca, &mut ct).unwrap_err(),
            StarError::NotActive
        );
    }

    #[test]
    fn bad_cadence_rejected() {
        let err = StarOrder::new(
            vec![dn("x.com")],
            KeyPair::from_seed([1; 32]).public(),
            Duration::days(7),
            Duration::days(8), // longer than lifetime: coverage gap
            d("2022-06-01"),
            d("2022-12-01"),
        )
        .unwrap_err();
        assert_eq!(err, StarError::BadCadence);
        assert_eq!(
            StarOrder::new(
                vec![dn("x.com")],
                KeyPair::from_seed([1; 32]).public(),
                Duration::days(7),
                Duration::days(0),
                d("2022-06-01"),
                d("2022-12-01"),
            )
            .unwrap_err(),
            StarError::BadCadence
        );
    }

    #[test]
    fn star_bounds_departure_staleness() {
        // Compare with the §5.3 scenario: a 365-day managed certificate
        // leaves the provider holding a key for up to a year; a 7-day
        // STAR stream leaves at most 7 days.
        let (_, _, order) = fixture();
        let conventional = Duration::days(365);
        assert!(order.max_staleness().num_days() * 50 < conventional.num_days());
    }
}
