//! OCSP: the Online Certificate Status Protocol (RFC 6960, reduced).
//!
//! §2.4 of the paper explains why revocation fails in practice: many
//! clients never check, and those that do mostly *soft-fail* — an on-path
//! attacker (exactly the adversary who holds a stale certificate's key)
//! simply drops the OCSP traffic. The one hard-fail deployment is OCSP
//! Must-Staple. This module implements the responder side; client policy
//! and the interception experiment live in `stale_core::mitigation`.

use crate::authority::CertificateAuthority;
use crypto::{PublicKey, Signature, SimSig};
use serde::{Deserialize, Serialize};
use stale_types::{Date, Duration, KeyId, SerialNumber};
use x509::revocation::RevocationReason;

/// Certificate status in an OCSP response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertStatus {
    /// Not revoked as far as the responder knows.
    Good,
    /// Revoked at the given date for the given reason.
    Revoked {
        /// Revocation day.
        date: Date,
        /// Declared reason.
        reason: RevocationReason,
    },
    /// The responder does not know the certificate.
    Unknown,
}

/// A signed OCSP response for one certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OcspResponse {
    /// Issuing key the response is scoped to.
    pub authority_key_id: KeyId,
    /// Serial the response covers.
    pub serial: SerialNumber,
    /// The status.
    pub status: CertStatus,
    /// Production day.
    pub this_update: Date,
    /// Day after which the response must not be relied on.
    pub next_update: Date,
    /// Responder signature.
    pub signature: Signature,
}

impl OcspResponse {
    fn signed_bytes(
        aki: &KeyId,
        serial: SerialNumber,
        status: &CertStatus,
        this_update: Date,
        next_update: Date,
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(aki.as_bytes());
        buf.extend_from_slice(&serial.0.to_be_bytes());
        match status {
            CertStatus::Good => buf.push(0),
            CertStatus::Revoked { date, reason } => {
                buf.push(1);
                buf.extend_from_slice(&date.days_since_epoch().to_be_bytes());
                buf.push(reason.code());
            }
            CertStatus::Unknown => buf.push(2),
        }
        buf.extend_from_slice(&this_update.days_since_epoch().to_be_bytes());
        buf.extend_from_slice(&next_update.days_since_epoch().to_be_bytes());
        buf
    }

    /// Verify the response under the responder's public key.
    pub fn verify(&self, responder: &PublicKey) -> bool {
        let bytes = Self::signed_bytes(
            &self.authority_key_id,
            self.serial,
            &self.status,
            self.this_update,
            self.next_update,
        );
        SimSig::verify(responder, &bytes, &self.signature)
    }

    /// Whether the response is still fresh at `date`.
    pub fn fresh_at(&self, date: Date) -> bool {
        self.this_update <= date && date < self.next_update
    }
}

/// Validity period of produced responses (a typical ~7-day window).
pub const RESPONSE_VALIDITY: Duration = Duration(7);

/// Produce a signed OCSP response from a CA's revocation state.
///
/// Real deployments delegate to a responder certificate; here the CA key
/// signs directly, which keeps the trust chain one hop as the analyses
/// need.
pub fn respond(ca: &CertificateAuthority, serial: SerialNumber, today: Date) -> OcspResponse {
    let status = match ca.issued(serial) {
        None => CertStatus::Unknown,
        Some(_) => {
            // Consult the CA's CRL state (the responder and CRL share a
            // backing store in practice).
            let crl = ca.publish_crl(today);
            match crl.find(serial) {
                Some(entry) => CertStatus::Revoked {
                    date: entry.revocation_date,
                    reason: entry.reason,
                },
                None => CertStatus::Good,
            }
        }
    };
    let next_update = today + RESPONSE_VALIDITY;
    let bytes = OcspResponse::signed_bytes(&ca.key_id(), serial, &status, today, next_update);
    OcspResponse {
        authority_key_id: ca.key_id(),
        serial,
        status,
        this_update: today,
        next_update,
        signature: sign_as(ca, &bytes),
    }
}

/// Sign responder bytes with the CA key.
fn sign_as(ca: &CertificateAuthority, bytes: &[u8]) -> Signature {
    // The CA exposes no private-key handle; responders are part of the CA
    // in this model, so signing goes through a dedicated hook.
    ca.sign_ocsp(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::IssuanceRequest;
    use crate::policy::CaPolicy;
    use crypto::KeyPair;
    use ct::log::LogPool;
    use stale_types::{domain::dn, CaId};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn setup() -> (CertificateAuthority, x509::Certificate) {
        let mut ct = LogPool::with_yearly_shards("ocsp", 8, 2021, 2025);
        let mut ca = CertificateAuthority::new(
            CaId(30),
            "OCSP CA",
            KeyPair::from_seed([30; 32]),
            CaPolicy::commercial(),
        );
        let cert = ca
            .issue(
                &IssuanceRequest {
                    domains: vec![dn("resp.com")],
                    public_key: KeyPair::from_seed([31; 32]).public(),
                    requested_lifetime: None,
                },
                d("2022-01-01"),
                &mut ct,
            )
            .unwrap();
        (ca, cert)
    }

    #[test]
    fn good_response_verifies() {
        let (ca, cert) = setup();
        let resp = respond(&ca, cert.tbs.serial, d("2022-02-01"));
        assert_eq!(resp.status, CertStatus::Good);
        assert!(resp.verify(&ca.public_key()));
        assert!(resp.fresh_at(d("2022-02-03")));
        assert!(!resp.fresh_at(d("2022-02-08")));
        assert!(!resp.fresh_at(d("2022-01-31")));
    }

    #[test]
    fn revoked_response_carries_reason() {
        let (mut ca, cert) = setup();
        ca.revoke(
            cert.tbs.serial,
            d("2022-03-01"),
            RevocationReason::KeyCompromise,
        )
        .unwrap();
        let resp = respond(&ca, cert.tbs.serial, d("2022-03-05"));
        assert_eq!(
            resp.status,
            CertStatus::Revoked {
                date: d("2022-03-01"),
                reason: RevocationReason::KeyCompromise
            }
        );
        assert!(resp.verify(&ca.public_key()));
    }

    #[test]
    fn unknown_serial() {
        let (ca, _) = setup();
        let resp = respond(&ca, SerialNumber(424242), d("2022-02-01"));
        assert_eq!(resp.status, CertStatus::Unknown);
    }

    #[test]
    fn forged_response_rejected() {
        let (ca, cert) = setup();
        let mut resp = respond(&ca, cert.tbs.serial, d("2022-02-01"));
        // Attacker flips a revoked status to Good... here Good to Unknown.
        resp.status = CertStatus::Unknown;
        assert!(!resp.verify(&ca.public_key()));
        // Or signs with their own key.
        let mallory = KeyPair::from_seed([66; 32]);
        assert!(!respond(&ca, cert.tbs.serial, d("2022-02-01")).verify(&mallory.public()));
    }
}
