//! Certificate lifetime policy over time.
//!
//! §6 of the paper traces the CA/Browser Forum's maximum-validity history:
//! 39 months until Ballot 193 (effective March 2018) cut DV certificates
//! to 825 days, then browser enforcement from September 2020 cut everything
//! to 398 days (366 + 31 + 1). Some CAs self-impose 90 days on all their
//! issuance (Let's Encrypt, Google Trust Services, cPanel).

use serde::{Deserialize, Serialize};
use stale_types::{Date, Duration};

/// Day Ballot 193's 825-day limit took effect.
pub fn ballot_193_effective() -> Date {
    Date::from_ymd(2018, 3, 1).expect("fixed date")
}

/// Day browsers began enforcing the 398-day maximum.
pub fn limit_398_effective() -> Date {
    Date::from_ymd(2020, 9, 1).expect("fixed date")
}

/// The industry-wide maximum certificate lifetime for a certificate
/// issued on `date`.
pub fn baseline_max_lifetime(date: Date) -> Duration {
    if date >= limit_398_effective() {
        Duration::days(398)
    } else if date >= ballot_193_effective() {
        Duration::days(825)
    } else {
        // 39 months ≈ 1186 days.
        Duration::days(1186)
    }
}

/// Per-CA issuance policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaPolicy {
    /// Lifetime the CA issues when the subscriber does not ask otherwise.
    pub default_lifetime: Duration,
    /// Self-imposed cap below the industry baseline, if any.
    pub self_imposed_max: Option<Duration>,
    /// Whether the CA honours cached domain validations (398-day reuse).
    pub validation_reuse: bool,
}

impl CaPolicy {
    /// A Let's-Encrypt-style automated CA: 90-day certificates only.
    pub fn automated_90_day() -> Self {
        CaPolicy {
            default_lifetime: Duration::days(90),
            self_imposed_max: Some(Duration::days(90)),
            validation_reuse: false,
        }
    }

    /// A traditional commercial CA: max-lifetime certificates by default,
    /// with validation reuse.
    pub fn commercial() -> Self {
        CaPolicy {
            default_lifetime: Duration::days(398),
            self_imposed_max: None,
            validation_reuse: true,
        }
    }

    /// The effective maximum lifetime this CA may issue on `date`.
    pub fn max_lifetime_at(&self, date: Date) -> Duration {
        let baseline = baseline_max_lifetime(date);
        match self.self_imposed_max {
            Some(own) if own < baseline => own,
            _ => baseline,
        }
    }

    /// Clamp a requested lifetime to policy on `date`; zero or negative
    /// requests get the default.
    pub fn clamp(&self, requested: Option<Duration>, date: Date) -> Duration {
        let max = self.max_lifetime_at(date);
        let want = match requested {
            Some(d) if d.num_days() > 0 => d,
            _ => self.default_lifetime,
        };
        if want > max {
            max
        } else {
            want
        }
    }
}

/// How long a cached domain validation may be reused (CA/B BR: 398 days).
pub fn validation_reuse_window() -> Duration {
    Duration::days(398)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    #[test]
    fn baseline_epochs() {
        assert_eq!(baseline_max_lifetime(d("2016-01-01")), Duration::days(1186));
        assert_eq!(baseline_max_lifetime(d("2018-02-28")), Duration::days(1186));
        assert_eq!(baseline_max_lifetime(d("2018-03-01")), Duration::days(825));
        assert_eq!(baseline_max_lifetime(d("2020-08-31")), Duration::days(825));
        assert_eq!(baseline_max_lifetime(d("2020-09-01")), Duration::days(398));
        assert_eq!(baseline_max_lifetime(d("2023-05-01")), Duration::days(398));
    }

    #[test]
    fn self_imposed_cap_wins_when_lower() {
        let le = CaPolicy::automated_90_day();
        assert_eq!(le.max_lifetime_at(d("2019-01-01")), Duration::days(90));
        assert_eq!(le.max_lifetime_at(d("2022-01-01")), Duration::days(90));
        let commercial = CaPolicy::commercial();
        assert_eq!(
            commercial.max_lifetime_at(d("2019-01-01")),
            Duration::days(825)
        );
        assert_eq!(
            commercial.max_lifetime_at(d("2022-01-01")),
            Duration::days(398)
        );
    }

    #[test]
    fn clamp_requested_lifetimes() {
        let commercial = CaPolicy::commercial();
        // Requesting 825 days in 2022 gets 398.
        assert_eq!(
            commercial.clamp(Some(Duration::days(825)), d("2022-01-01")),
            Duration::days(398)
        );
        // Requesting 30 days is honoured.
        assert_eq!(
            commercial.clamp(Some(Duration::days(30)), d("2022-01-01")),
            Duration::days(30)
        );
        // No request: default.
        assert_eq!(commercial.clamp(None, d("2022-01-01")), Duration::days(398));
        // Zero request: default.
        assert_eq!(
            commercial.clamp(Some(Duration::days(0)), d("2022-01-01")),
            Duration::days(398)
        );
        // In 2019 the commercial default of 398 fits under the 825 cap.
        assert_eq!(commercial.clamp(None, d("2019-01-01")), Duration::days(398));
    }
}
