//! The discrete-event world.
//!
//! A day-granular event loop over the configured window. Each day the
//! world: advances the registries (processing releases), births new
//! domains, fires scheduled events (renewals, domain lifecycle decisions,
//! CDN departures, key compromises, revocations), runs the automated
//! renewal sweeps of the managed-TLS providers, and executes scripted
//! historical events (the CDN's own-CA transition, the web-host breach).
//! At the end it scrapes CRLs, ingests the CT logs into the monitor and
//! packages everything into [`WorldDatasets`].

use ca::authority::{CertificateAuthority, IssuanceRequest};
use ca::policy::CaPolicy;
use ca::scraper::CrlScraper;
use cdn::provider::{ManagedTlsProvider, ProviderConfig};
use cdn::webhost::WebHost;
use crypto::KeyPair;
use ct::log::LogPool;
use ct::monitor::CtMonitor;
use dns::scan::{DnsHistory, DnsView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use registry::registry::Registry;
use registry::whois::WhoisDataset;
use stale_types::{AccountId, CaId, Date, DateInterval, DomainName, Duration, SerialNumber};
use std::collections::{BTreeMap, HashMap};
use x509::revocation::RevocationReason;
use x509::Certificate;

use crate::config::ScenarioConfig;
use crate::datasets::{CompromiseEvent, GroundTruth, WorldDatasets};
use crate::distributions::{
    chance, exponential_days, popularity_rank, rate_to_count, weighted_choice,
};
use crate::popularity::{PopularityArchive, RankSample};
use crate::reputation::{DomainReputation, ReputationFeed, MALWARE_FAMILIES, URL_LABELS};

/// Which CA issued a certificate (for routing revocations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CaRef {
    /// Index into the self-managed roster.
    SelfCa(usize),
    /// The CDN's current (or a retired) fronting CA.
    Cdn,
    /// Index into the web-host table.
    Host(usize),
}

/// How a domain's HTTPS is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hosting {
    SelfManaged,
    Cdn,
    Host(usize),
}

/// Scheduled events.
#[derive(Debug, Clone)]
enum Event {
    /// Initial HTTPS adoption decision for a pre-seeded domain.
    SetupHttps(DomainName),
    /// Self-managed certificate renewal.
    RenewCert(DomainName),
    /// Registrant decides whether to renew the registration.
    DomainDecision(DomainName),
    /// The registry releases the name; infrastructure is torn down.
    Release(DomainName),
    /// A new owner re-registers the released name.
    Reregister(DomainName),
    /// A CDN customer migrates away.
    CdnDepart(DomainName),
    /// A private key leaks; the CA revokes with keyCompromise.
    Compromise(CaRef, SerialNumber),
    /// A non-compromise revocation (superseded, cessation, ...).
    RevokeOther(CaRef, SerialNumber, RevocationReason),
}

/// Per-domain simulation state.
struct SimDomain {
    owner: AccountId,
    rank: u32,
    alive: bool,
    hosting: Option<Hosting>,
    /// Subscriber keypair for self-managed certificates.
    key: KeyPair,
    /// Primary certified name (apex or a subdomain like `api.<domain>`).
    primary_san: DomainName,
    /// Whether self-managed certs also cover `www.`.
    add_www: bool,
    /// Sticky CA choice for self-managed issuance.
    ca_idx: usize,
    /// Which registry (index) holds the registration.
    registry_idx: usize,
    /// Tenure start of the current owner (for reputation timing).
    owner_since: Date,
}

/// The simulated world.
pub struct World {
    cfg: ScenarioConfig,
    rng: StdRng,
    registries: Vec<Registry>,
    cas: Vec<CertificateAuthority>,
    cdn: ManagedTlsProvider,
    retired_cdn_cas: Vec<CertificateAuthority>,
    hosts: Vec<WebHost>,
    pool: LogPool,
    monitor: CtMonitor,
    dns: DnsHistory,
    domains: HashMap<DomainName, SimDomain>,
    schedule: BTreeMap<Date, Vec<Event>>,
    popularity: PopularityArchive,
    reputation: ReputationFeed,
    ground_truth: GroundTruth,
    next_domain: u64,
    next_account: u64,
    cdn_transitioned: bool,
    breach_fired: bool,
}

impl World {
    /// Build a world from a configuration. Panics on an inconsistent
    /// scenario are a deliberate startup boundary: generation happens
    /// before anything serves or detects, so the daemon fails fast
    /// instead of running on a half-built world.
    // stale-lint: entry(worldgen)
    // stale-lint: trusted(panic-in-shard)
    pub fn new(cfg: ScenarioConfig) -> World {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let epoch = cfg.start - Duration::days(1600);
        let registries = vec![
            Registry::new(dnn("com"), epoch),
            Registry::new(dnn("net"), epoch),
        ];
        let mk_key = |rng: &mut StdRng| KeyPair::generate(rng);
        let cas = vec![
            CertificateAuthority::new(
                CaId(0),
                "Let's Encrypt X3",
                mk_key(&mut rng),
                CaPolicy::automated_90_day(),
            )
            .with_organization("ISRG (Let's Encrypt)"),
            CertificateAuthority::new(
                CaId(1),
                "Sectigo RSA Domain Validation Secure Server CA",
                mk_key(&mut rng),
                CaPolicy::commercial(),
            )
            .with_organization("Sectigo"),
            CertificateAuthority::new(
                CaId(2),
                "DigiCert SHA2 Secure Server CA",
                mk_key(&mut rng),
                CaPolicy::commercial(),
            )
            .with_organization("DigiCert"),
            CertificateAuthority::new(
                CaId(3),
                "Entrust Certification Authority - L1K",
                mk_key(&mut rng),
                CaPolicy::commercial(),
            )
            .with_organization("Entrust"),
            CertificateAuthority::new(
                CaId(4),
                "GoDaddy Secure Certificate Authority - G2",
                mk_key(&mut rng),
                CaPolicy::commercial(),
            )
            .with_organization("GoDaddy"),
        ];
        let comodo = CertificateAuthority::new(
            CaId(10),
            "COMODO ECC DV Secure Server CA 2",
            mk_key(&mut rng),
            CaPolicy {
                default_lifetime: Duration::days(365),
                ..CaPolicy::commercial()
            },
        )
        .with_organization("COMODO (fronting Cloudflare)");
        let cdn =
            ManagedTlsProvider::new(ProviderConfig::cloudflare_cruise_liner(), comodo, rng.gen());
        let hosts = vec![
            WebHost::new(
                "cpanel-shared",
                CertificateAuthority::new(
                    CaId(20),
                    "cPanel, Inc. CA",
                    mk_key(&mut rng),
                    CaPolicy::automated_90_day(),
                )
                .with_organization("cPanel"),
                rng.gen(),
            ),
            // Managed-WordPress-style host: long-lived certificates renewed
            // eagerly every ~90 days, so the certificates in force at any
            // moment are young — which is why the November 2021 breach
            // revocations land within ~90 days of issuance (Figure 8's
            // key-compromise curve).
            WebHost::new(
                "godaddy-managed-wp",
                CertificateAuthority::new(
                    CaId(21),
                    "GoDaddy Secure Certificate Authority - G2",
                    mk_key(&mut rng),
                    CaPolicy {
                        default_lifetime: Duration::days(398),
                        self_imposed_max: None,
                        validation_reuse: true,
                    },
                )
                .with_organization("GoDaddy"),
                rng.gen(),
            )
            .with_renewal_age(90),
        ];
        // Yearly CT shards comfortably covering every possible expiry.
        let start_year = cfg.start.year() - 4;
        let end_year = cfg.end.year() + 4;
        let pool = LogPool::with_yearly_shards("argon", 3, start_year, end_year);
        World {
            cfg,
            rng,
            registries,
            cas,
            cdn,
            retired_cdn_cas: Vec::new(),
            hosts,
            pool,
            monitor: CtMonitor::new(),
            dns: DnsHistory::new(),
            domains: HashMap::new(),
            schedule: BTreeMap::new(),
            popularity: PopularityArchive::new(),
            reputation: ReputationFeed::new(),
            ground_truth: GroundTruth::default(),
            next_domain: 1,
            next_account: 1,
            cdn_transitioned: false,
            breach_fired: false,
        }
    }

    /// Run the simulation and package the datasets. Same deliberate
    /// startup boundary as [`World::new`] for the panic rule.
    // stale-lint: entry(worldgen)
    // stale-lint: trusted(panic-in-shard)
    pub fn run(cfg: ScenarioConfig) -> WorldDatasets {
        let mut world = World::new(cfg);
        world.seed_initial_domains();
        let (start, end) = (world.cfg.start, world.cfg.end);
        let sample_dates: Vec<Date> =
            PopularityArchive::biannual_dates(start.year() + 1, end.year() - 1)
                .into_iter()
                .filter(|d| *d >= start && *d < end)
                .collect();
        let mut sample_iter = sample_dates.into_iter().peekable();
        for date in start.iter_until(end) {
            for r in &mut world.registries {
                r.advance_to(date);
            }
            world.scripted_events(date);
            world.birth_domains(date);
            if let Some(events) = world.schedule.remove(&date) {
                for ev in events {
                    world.handle(ev, date);
                }
            }
            world.cdn.renew_due(date, 21, &mut world.pool);
            for host in &mut world.hosts {
                host.renew_due(date, 14, &mut world.pool);
            }
            if sample_iter.peek() == Some(&date) {
                sample_iter.next();
                world.take_popularity_sample(date);
            }
        }
        world.finish()
    }

    // ------------------------------------------------------------------
    // Setup
    // ------------------------------------------------------------------

    fn seed_initial_domains(&mut self) {
        let start = self.cfg.start;
        let mut offsets: Vec<i64> = (0..self.cfg.initial_domains)
            .map(|_| self.rng.gen_range(1..1500))
            .collect();
        offsets.sort_unstable();
        offsets.reverse(); // oldest first
        for off in offsets {
            let creation = start - Duration::days(off);
            let (name, registry_idx) = self.fresh_domain_name();
            self.registries[registry_idx].advance_to(creation);
            // Pay enough years that the registration is alive at `start`.
            let years = off / 365 + 1;
            let term = Duration::days(365 * years);
            let owner = self.fresh_account();
            if self.registries[registry_idx]
                .register(name.clone(), owner, self.rng.gen_range(0..8), term)
                .is_err()
            {
                continue;
            }
            let expiration = creation + term;
            self.insert_sim_domain(name.clone(), owner, registry_idx, creation);
            self.schedule_at(expiration.max(start), Event::DomainDecision(name.clone()));
            self.schedule_at(start, Event::SetupHttps(name));
        }
    }

    fn fresh_domain_name(&mut self) -> (DomainName, usize) {
        let id = self.next_domain;
        self.next_domain += 1;
        let registry_idx = usize::from(self.rng.gen_bool(0.2));
        let tld = if registry_idx == 0 { "com" } else { "net" };
        (dnn(&format!("d{id}.{tld}")), registry_idx)
    }

    fn fresh_account(&mut self) -> AccountId {
        let id = self.next_account;
        self.next_account += 1;
        AccountId(id)
    }

    fn insert_sim_domain(
        &mut self,
        name: DomainName,
        owner: AccountId,
        registry_idx: usize,
        owner_since: Date,
    ) {
        let rank = popularity_rank(&mut self.rng, self.cfg.max_rank * 2);
        let primary_san = if chance(&mut self.rng, self.cfg.subdomain_cert_prob) {
            let label = ["api", "mail", "shop", "portal"][self.rng.gen_range(0..4)];
            name.prepend(label).expect("valid label")
        } else {
            name.clone()
        };
        let add_www = chance(&mut self.rng, self.cfg.www_san_prob);
        let key = KeyPair::generate(&mut self.rng);
        self.domains.insert(
            name,
            SimDomain {
                owner,
                rank,
                alive: true,
                hosting: None,
                key,
                primary_san,
                add_www,
                ca_idx: 0,
                registry_idx,
                owner_since,
            },
        );
    }

    // ------------------------------------------------------------------
    // Daily steps
    // ------------------------------------------------------------------

    fn scripted_events(&mut self, date: Date) {
        if !self.cdn_transitioned && date >= self.cfg.cdn_own_ca_transition {
            self.cdn_transitioned = true;
            let own_ca = CertificateAuthority::new(
                CaId(11),
                "CloudFlare ECC CA-2",
                KeyPair::generate(&mut self.rng),
                CaPolicy {
                    default_lifetime: Duration::days(365),
                    ..CaPolicy::commercial()
                },
            )
            .with_organization("Cloudflare");
            let retired = self.cdn.switch_ca(own_ca);
            self.retired_cdn_cas.push(retired);
            self.cdn
                .reconfigure(ProviderConfig::cloudflare_per_domain());
        }
        if !self.breach_fired && self.cfg.host_breach.is_some_and(|b| date >= b) {
            self.breach_fired = true;
            let serials = self.hosts[1].breach(date, Some(self.cfg.host_breach_max_age_days));
            let ca_key = self.hosts[1].ca().key_id();
            for serial in &serials {
                self.ground_truth.compromises.push(CompromiseEvent {
                    ca_key,
                    serial: *serial,
                    date,
                });
            }
            self.ground_truth.breach_serials = serials;
            self.ground_truth.breach_date = Some(date);
        }
    }

    fn birth_domains(&mut self, date: Date) {
        let rate = self.cfg.eras.domain_births_per_day.at(date);
        let count = rate_to_count(&mut self.rng, rate);
        for _ in 0..count {
            let (name, registry_idx) = self.fresh_domain_name();
            let owner = self.fresh_account();
            self.registries[registry_idx].advance_to(date);
            if self.registries[registry_idx]
                .register(
                    name.clone(),
                    owner,
                    self.rng.gen_range(0..8),
                    self.cfg.registration_term,
                )
                .is_err()
            {
                continue;
            }
            self.insert_sim_domain(name.clone(), owner, registry_idx, date);
            self.schedule_at(
                date + self.cfg.registration_term,
                Event::DomainDecision(name.clone()),
            );
            self.setup_https(&name, date);
        }
    }

    fn take_popularity_sample(&mut self, date: Date) {
        let max = self.cfg.max_rank;
        let ranks: HashMap<DomainName, u32> = self
            .domains
            .iter()
            .filter(|(_, d)| d.alive && d.rank <= max)
            .map(|(name, d)| (name.clone(), d.rank))
            .collect();
        self.popularity.add_sample(RankSample { date, ranks });
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event, date: Date) {
        match event {
            Event::SetupHttps(name) => {
                if self.domains.get(&name).is_some_and(|d| d.alive) {
                    self.setup_https(&name, date);
                }
            }
            Event::RenewCert(name) => self.renew_self_cert(&name, date),
            Event::DomainDecision(name) => self.domain_decision(&name, date),
            Event::Release(name) => self.release_domain(&name, date),
            Event::Reregister(name) => self.reregister(&name, date),
            Event::CdnDepart(name) => self.cdn_depart(&name, date),
            Event::Compromise(ca_ref, serial) => self.compromise(ca_ref, serial, date),
            Event::RevokeOther(ca_ref, serial, reason) => {
                let _ = self.revoke_on(ca_ref, serial, date, reason);
            }
        }
    }

    fn setup_https(&mut self, name: &DomainName, date: Date) {
        if !chance(&mut self.rng, self.cfg.eras.https_adoption.at(date)) {
            // No HTTPS: the domain still resolves somewhere.
            self.set_self_dns(name, date);
            return;
        }
        let cdn_w = self.cfg.eras.cdn_share.at(date);
        let host_w = self.cfg.eras.webhost_share.at(date);
        let self_w = (1.0 - cdn_w - host_w).max(0.0);
        match weighted_choice(&mut self.rng, &[cdn_w, host_w, self_w]) {
            0 => {
                let cert = self
                    .cdn
                    .enroll(name.clone(), date, &mut self.pool, &mut self.dns);
                self.post_issue(&cert, CaRef::Cdn, date);
                if let Some(d) = self.domains.get_mut(name) {
                    d.hosting = Some(Hosting::Cdn);
                }
                if chance(&mut self.rng, self.cfg.cdn_depart_prob) {
                    let delay = exponential_days(&mut self.rng, self.cfg.cdn_depart_mean_days);
                    self.schedule_at(date + delay, Event::CdnDepart(name.clone()));
                }
            }
            1 => {
                let host_idx = usize::from(chance(&mut self.rng, 0.4));
                let cert =
                    self.hosts[host_idx].host(name.clone(), date, &mut self.pool, &mut self.dns);
                self.post_issue(&cert, CaRef::Host(host_idx), date);
                if let Some(d) = self.domains.get_mut(name) {
                    d.hosting = Some(Hosting::Host(host_idx));
                }
            }
            _ => {
                self.set_self_dns(name, date);
                let ca_idx = self.pick_self_ca(date);
                if let Some(d) = self.domains.get_mut(name) {
                    d.hosting = Some(Hosting::SelfManaged);
                    d.ca_idx = ca_idx;
                }
                self.issue_self(name, date);
            }
        }
    }

    fn set_self_dns(&mut self, name: &DomainName, date: Date) {
        let k = self.rng.gen_range(0..24);
        let view = DnsView::with_ns([
            dnn(&format!("ns1.hostpool{k}.net")),
            dnn(&format!("ns2.hostpool{k}.net")),
        ]);
        self.dns.record_change(name.clone(), date, view);
    }

    fn pick_self_ca(&mut self, date: Date) -> usize {
        if date >= self.cfg.le_launch && chance(&mut self.rng, self.cfg.eras.le_share.at(date)) {
            0
        } else {
            // Commercial roster, weighted towards the big issuers.
            [1, 2, 1, 3, 4, 2][self.rng.gen_range(0..6)]
        }
    }

    fn issue_self(&mut self, name: &DomainName, date: Date) {
        let Some(d) = self.domains.get(name) else {
            return;
        };
        let mut sans = vec![d.primary_san.clone()];
        if d.add_www && d.primary_san == *name {
            sans.push(name.prepend("www").expect("valid label"));
        }
        let request = IssuanceRequest {
            domains: sans,
            public_key: d.key.public(),
            requested_lifetime: None,
        };
        let ca_idx = d.ca_idx;
        let Ok(cert) = self.cas[ca_idx].issue(&request, date, &mut self.pool) else {
            return;
        };
        self.monitor.ingest(cert.clone(), date);
        self.post_issue(&cert, CaRef::SelfCa(ca_idx), date);
        // Schedule the next renewal a little before expiry.
        let jitter = Duration::days(self.rng.gen_range(3..15));
        self.schedule_at(
            cert.tbs.not_after() - jitter,
            Event::RenewCert(name.clone()),
        );
    }

    fn renew_self_cert(&mut self, name: &DomainName, date: Date) {
        let Some(d) = self.domains.get(name) else {
            return;
        };
        if !d.alive || d.hosting != Some(Hosting::SelfManaged) {
            return;
        }
        let registry_idx = d.registry_idx;
        let ca_idx = d.ca_idx;
        let state = self.registries[registry_idx].state(name);
        use registry::lifecycle::DomainState::*;
        let automated = self.cas[ca_idx].policy().self_imposed_max.is_some();
        let renews = match state {
            Active => true,
            // §7.1: unattended automation keeps issuing while the domain
            // coasts through grace/redemption; manual subscribers stop.
            ExpiredGrace | Redemption => automated,
            PendingDelete | Released => false,
        };
        if renews {
            // Some subscribers rotate keys at renewal (first-party
            // staleness; Table 2's "key disuse").
            if chance(&mut self.rng, 0.15) {
                let new_key = KeyPair::generate(&mut self.rng);
                if let Some(d) = self.domains.get_mut(name) {
                    d.key = new_key;
                }
            }
            self.issue_self(name, date);
        }
    }

    fn domain_decision(&mut self, name: &DomainName, date: Date) {
        let Some(d) = self.domains.get(name) else {
            return;
        };
        if !d.alive {
            return;
        }
        let registry_idx = d.registry_idx;
        if chance(&mut self.rng, self.cfg.domain_renewal_prob) {
            self.registries[registry_idx].advance_to(date);
            if self.registries[registry_idx]
                .renew(name, self.cfg.registration_term)
                .is_ok()
            {
                // Occasional invisible ownership transfer (§4.4 blind
                // spot): same registration, new hands.
                if chance(&mut self.rng, 0.02) {
                    let new_owner = self.fresh_account();
                    if self.registries[registry_idx]
                        .transfer(name, new_owner)
                        .is_ok()
                    {
                        self.ground_truth
                            .invisible_transfers
                            .push((name.clone(), date));
                        if let Some(d) = self.domains.get_mut(name) {
                            d.owner = new_owner;
                            d.owner_since = date;
                        }
                    }
                }
                self.schedule_at(
                    date + self.cfg.registration_term,
                    Event::DomainDecision(name.clone()),
                );
                return;
            }
        }
        // Lapse: grace(45) + redemption(30) + pending delete(5) = 80 days.
        let release = date + Duration::days(80);
        self.schedule_at(release, Event::Release(name.clone()));
        if chance(&mut self.rng, self.cfg.rereg_prob) {
            let delay = Duration::days(self.rng.gen_range(1..=self.cfg.rereg_delay_max_days));
            self.schedule_at(release + delay, Event::Reregister(name.clone()));
        }
    }

    fn release_domain(&mut self, name: &DomainName, date: Date) {
        let Some(d) = self.domains.get_mut(name) else {
            return;
        };
        if !d.alive {
            return;
        }
        d.alive = false;
        d.hosting = None;
        self.cdn.force_remove(name);
        for host in &mut self.hosts {
            host.force_remove(name);
        }
        // The zone goes dark.
        self.dns
            .record_change(name.clone(), date, DnsView::default());
    }

    fn reregister(&mut self, name: &DomainName, date: Date) {
        let Some(d) = self.domains.get(name) else {
            return;
        };
        if d.alive {
            return; // somehow resurrected already
        }
        let registry_idx = d.registry_idx;
        let prior_owner_since = d.owner_since;
        self.registries[registry_idx].advance_to(date);
        let new_owner = self.fresh_account();
        if self.registries[registry_idx]
            .register(
                name.clone(),
                new_owner,
                self.rng.gen_range(0..8),
                self.cfg.registration_term,
            )
            .is_err()
        {
            return;
        }
        self.ground_truth
            .registrant_changes
            .push((name.clone(), date));
        // Was the prior owner malicious? (Table 5's ≈1%.)
        if chance(&mut self.rng, self.cfg.malicious_prior_owner_prob) {
            self.insert_reputation(name, prior_owner_since, date);
        }
        if let Some(d) = self.domains.get_mut(name) {
            d.alive = true;
            d.owner = new_owner;
            d.owner_since = date;
            d.key = KeyPair::generate(&mut self.rng);
        }
        self.schedule_at(
            date + self.cfg.registration_term,
            Event::DomainDecision(name.clone()),
        );
        self.setup_https(name, date);
    }

    fn insert_reputation(&mut self, name: &DomainName, owner_since: Date, change: Date) {
        let tenancy_days = (change - owner_since).num_days().max(30);
        let back = self.rng.gen_range(0..tenancy_days);
        let first_submission = change - Duration::days(back);
        // Mirror Table 5's mix: most malicious domains have URL verdicts,
        // a third have malware-file associations, some have both.
        let has_urls = chance(&mut self.rng, 0.68);
        let has_malware = !has_urls || chance(&mut self.rng, 0.035);
        let mut malware_families = Vec::new();
        if has_malware {
            let fam = if chance(&mut self.rng, 0.13) {
                "Unknown".to_string()
            } else {
                MALWARE_FAMILIES[self.rng.gen_range(0..MALWARE_FAMILIES.len())].to_string()
            };
            malware_families.push(fam);
        }
        let mut url_labels = Vec::new();
        if has_urls {
            url_labels.push(URL_LABELS[self.rng.gen_range(0..URL_LABELS.len())].to_string());
        }
        let vendor_count = self.rng.gen_range(5..40);
        self.reputation.insert(
            name.clone(),
            DomainReputation {
                malware_families,
                url_labels,
                first_submission,
                vendor_count,
            },
        );
    }

    fn cdn_depart(&mut self, name: &DomainName, date: Date) {
        if !self.cdn.is_customer(name) {
            return;
        }
        let Some(d) = self.domains.get(name) else {
            return;
        };
        if !d.alive {
            return;
        }
        // Destination: mostly self-hosting, sometimes a web host.
        if chance(&mut self.rng, 0.75) {
            let k = self.rng.gen_range(0..24);
            let view = DnsView::with_ns([
                dnn(&format!("ns1.hostpool{k}.net")),
                dnn(&format!("ns2.hostpool{k}.net")),
            ]);
            self.cdn
                .depart(name, date, view, &mut self.pool, &mut self.dns);
            let ca_idx = self.pick_self_ca(date);
            if let Some(d) = self.domains.get_mut(name) {
                d.hosting = Some(Hosting::SelfManaged);
                d.ca_idx = ca_idx;
            }
            self.issue_self(name, date);
        } else {
            let host_idx = usize::from(chance(&mut self.rng, 0.4));
            // Departure first (records DNS change to a placeholder), then
            // the host points DNS at its own edge.
            let view = self.hosts[host_idx].hosted_view();
            self.cdn
                .depart(name, date, view, &mut self.pool, &mut self.dns);
            let cert = self.hosts[host_idx].host(name.clone(), date, &mut self.pool, &mut self.dns);
            self.post_issue(&cert, CaRef::Host(host_idx), date);
            if let Some(d) = self.domains.get_mut(name) {
                d.hosting = Some(Hosting::Host(host_idx));
            }
        }
        self.ground_truth.cdn_departures.push((name.clone(), date));
    }

    fn post_issue(&mut self, cert: &Certificate, ca_ref: CaRef, date: Date) {
        let automated = match ca_ref {
            CaRef::SelfCa(i) => self.cas[i].policy().self_imposed_max.is_some(),
            CaRef::Cdn => false,
            CaRef::Host(i) => self.hosts[i].ca().policy().self_imposed_max.is_some(),
        };
        let kc_prob = if automated {
            if date >= self.cfg.le_kc_reporting_start {
                self.cfg.kc_prob_automated
            } else {
                0.0
            }
        } else {
            self.cfg.kc_prob_commercial
        };
        if chance(&mut self.rng, kc_prob) {
            let delay = exponential_days(&mut self.rng, self.cfg.kc_delay_mean_days);
            let when = date + delay;
            // Key compromise reports past expiry are vanishingly rare;
            // cap at shortly after notAfter to model the paper's 0.037%
            // revoked-after-expiration outliers.
            if when < cert.tbs.not_after() + Duration::days(20) {
                self.schedule_at(when, Event::Compromise(ca_ref, cert.tbs.serial));
            }
        } else if chance(&mut self.rng, self.cfg.other_revocation_prob) {
            let lifetime = cert.tbs.lifetime().num_days();
            let offset = self.rng.gen_range(1..lifetime + 10);
            let reason = match self.rng.gen_range(0..10) {
                0..=3 => RevocationReason::Superseded,
                4..=6 => RevocationReason::CessationOfOperation,
                7..=8 => RevocationReason::Unspecified,
                _ => RevocationReason::AffiliationChanged,
            };
            self.schedule_at(
                date + Duration::days(offset),
                Event::RevokeOther(ca_ref, cert.tbs.serial, reason),
            );
        }
    }

    fn compromise(&mut self, ca_ref: CaRef, serial: SerialNumber, date: Date) {
        if self.revoke_on(ca_ref, serial, date, RevocationReason::KeyCompromise) {
            let ca_key = match ca_ref {
                CaRef::SelfCa(i) => self.cas[i].key_id(),
                CaRef::Cdn => self.cdn.ca().key_id(),
                CaRef::Host(i) => self.hosts[i].ca().key_id(),
            };
            self.ground_truth.compromises.push(CompromiseEvent {
                ca_key,
                serial,
                date,
            });
        }
    }

    /// Revoke on the referenced CA; for the CDN, falls back to retired
    /// fronting CAs (certificates issued before a CA switch).
    fn revoke_on(
        &mut self,
        ca_ref: CaRef,
        serial: SerialNumber,
        date: Date,
        reason: RevocationReason,
    ) -> bool {
        match ca_ref {
            CaRef::SelfCa(i) => self.cas[i].revoke(serial, date, reason).is_ok(),
            CaRef::Host(i) => self.hosts[i].ca_mut().revoke(serial, date, reason).is_ok(),
            CaRef::Cdn => {
                if self.cdn.ca_mut().revoke(serial, date, reason).is_ok() {
                    return true;
                }
                self.retired_cdn_cas
                    .iter_mut()
                    .any(|ca| ca.revoke(serial, date, reason).is_ok())
            }
        }
    }

    fn schedule_at(&mut self, date: Date, event: Event) {
        if date < self.cfg.end {
            self.schedule.entry(date).or_default().push(event);
        }
    }

    // ------------------------------------------------------------------
    // Finalisation
    // ------------------------------------------------------------------

    fn finish(mut self) -> WorldDatasets {
        // Monitor ingests every log entry (precerts) and every final
        // certificate the providers hold, exercising dedup.
        self.monitor.ingest_pool(&self.pool);
        for cert in self.cdn.all_issued() {
            self.monitor.ingest(cert.clone(), cert.tbs.not_before());
        }
        for host in &self.hosts {
            for cert in host.all_issued() {
                self.monitor.ingest(cert.clone(), cert.tbs.not_before());
            }
        }
        // WHOIS feed from the registries' event logs.
        let mut whois = WhoisDataset::new();
        for r in &self.registries {
            whois.ingest_registry(r);
        }
        // Daily CRL scrape over the collection window.
        let mut scraper = CrlScraper::new(self.cfg.seed ^ 0xC21)
            .with_default_failure(self.cfg.crl_failure_default)
            // A couple of CAs actively block scraping (Table 7's 0% rows).
            .with_failure_rate("Entrust Certification Authority - L1K", 0.016)
            .with_failure_rate("DigiCert SHA2 Secure Server CA", 0.013)
            .with_failure_rate("Sectigo RSA Domain Validation Secure Server CA", 0.004)
            .with_failure_rate("cPanel, Inc. CA", 0.0)
            .with_failure_rate("Let's Encrypt X3", 0.0)
            .with_failure_rate("COMODO ECC DV Secure Server CA 2", 0.10)
            .with_failure_rate("CloudFlare ECC CA-2", 0.02);
        let cas: Vec<&CertificateAuthority> = self
            .cas
            .iter()
            .chain(std::iter::once(self.cdn.ca()))
            .chain(self.retired_cdn_cas.iter())
            .chain(self.hosts.iter().map(|h| h.ca()))
            .collect();
        let (crl, crl_stats) = scraper.scrape(&cas, self.cfg.crl_window);
        let ct_raw_entries = self.pool.total_entries() as usize;
        let ct_log_count = self.pool.logs().len();
        WorldDatasets {
            monitor: self.monitor,
            crl,
            crl_stats,
            whois,
            adns: self.dns,
            popularity: self.popularity,
            reputation: self.reputation,
            ground_truth: self.ground_truth,
            cdn_config: self.cdn.config.clone(),
            sim_window: DateInterval::new(self.cfg.start, self.cfg.end).expect("valid window"),
            adns_window: self.cfg.adns_window,
            crl_window: self.cfg.crl_window,
            ct_raw_entries,
            ct_log_count,
        }
    }
}

/// Parse a known-good domain literal.
fn dnn(s: &str) -> DomainName {
    DomainName::parse(s).expect("valid domain literal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;

    #[test]
    fn tiny_world_runs_and_produces_all_datasets() {
        let data = World::run(ScenarioConfig::tiny());
        assert!(
            data.monitor.dedup_count() > 100,
            "certs: {}",
            data.monitor.dedup_count()
        );
        assert!(data.ct_raw_entries >= data.monitor.dedup_count());
        assert!(data.whois.domain_count() > 100);
        assert!(data.adns.domain_count() > 100);
        assert!(!data.crl.is_empty(), "some revocations must be collected");
        assert!(data.crl_stats.total_coverage() > 0.9);
    }

    #[test]
    fn tiny_world_is_deterministic() {
        let a = World::run(ScenarioConfig::tiny());
        let b = World::run(ScenarioConfig::tiny());
        assert_eq!(a.monitor.dedup_count(), b.monitor.dedup_count());
        assert_eq!(a.crl.len(), b.crl.len());
        assert_eq!(
            a.ground_truth.registrant_changes,
            b.ground_truth.registrant_changes
        );
        assert_eq!(a.ground_truth.cdn_departures, b.ground_truth.cdn_departures);
    }

    #[test]
    fn ground_truth_events_occur() {
        let data = World::run(ScenarioConfig::tiny());
        let gt = &data.ground_truth;
        assert!(!gt.registrant_changes.is_empty(), "some re-registrations");
        assert!(!gt.cdn_departures.is_empty(), "some departures");
        assert!(!gt.compromises.is_empty(), "some compromises");
        assert_eq!(gt.breach_date, Some(Date::parse("2021-11-17").unwrap()));
        assert!(!gt.breach_serials.is_empty(), "breach revoked something");
    }

    #[test]
    fn whois_changes_match_ground_truth() {
        let data = World::run(ScenarioConfig::tiny());
        let detected: Vec<(DomainName, Date)> = data
            .whois
            .registrant_changes()
            .map(|(d, t)| (d.clone(), t))
            .collect();
        // Every simulated re-registration appears in the WHOIS feed.
        for change in &data.ground_truth.registrant_changes {
            assert!(detected.contains(change), "missing {change:?}");
        }
        // And the WHOIS feed contains nothing else.
        assert_eq!(detected.len(), data.ground_truth.registrant_changes.len());
    }

    #[test]
    fn cdn_departures_visible_in_dns() {
        let data = World::run(ScenarioConfig::tiny());
        let cfg = &data.cdn_config;
        let mut checked = 0;
        for (domain, date) in &data.ground_truth.cdn_departures {
            let before = data.adns.view_at(domain, date.pred());
            let after = data.adns.view_at(domain, *date);
            if let (Some(before), Some(after)) = (before, after) {
                assert!(
                    before.any_delegation(|n| cfg.is_delegation_target(n)),
                    "{domain} should be on the CDN the day before departure"
                );
                assert!(
                    !after.any_delegation(|n| cfg.is_delegation_target(n)),
                    "{domain} should be off the CDN on departure day"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "at least some departures verified");
    }

    #[test]
    fn compromises_appear_in_crl_feed() {
        let data = World::run(ScenarioConfig::tiny());
        use x509::revocation::RevocationReason;
        let kc: Vec<_> = data
            .crl
            .with_reason(RevocationReason::KeyCompromise)
            .collect();
        assert!(!kc.is_empty(), "key compromise revocations collected");
        // The breach serials are among them.
        let breach_found = data
            .ground_truth
            .breach_serials
            .iter()
            .filter(|s| kc.iter().any(|r| r.serial == **s))
            .count();
        assert!(breach_found > 0, "breach revocations visible in CRLs");
    }

    #[test]
    fn popularity_samples_taken() {
        let data = World::run(ScenarioConfig::tiny());
        assert!(
            data.popularity.sample_count() >= 2,
            "{}",
            data.popularity.sample_count()
        );
    }

    #[test]
    fn summary_has_four_dataset_rows() {
        let data = World::run(ScenarioConfig::tiny());
        let summary = data.summary();
        assert_eq!(summary.rows.len(), 4);
        assert_eq!(summary.rows[0].0, "CT");
        assert_eq!(summary.rows[3].0, "aDNS");
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;
    use crate::config::ScenarioConfig;

    #[test]
    #[ignore = "slow; run explicitly to inspect paper-preset scale"]
    fn paper_preset_scale_report() {
        let data = World::run(ScenarioConfig::paper2023());
        eprintln!("dedup certs: {}", data.monitor.dedup_count());
        eprintln!("raw entries: {}", data.ct_raw_entries);
        eprintln!("whois domains: {}", data.whois.domain_count());
        eprintln!("crl records: {}", data.crl.len());
        eprintln!(
            "kc records: {}",
            data.crl
                .with_reason(x509::revocation::RevocationReason::KeyCompromise)
                .count()
        );
        eprintln!(
            "registrant changes: {}",
            data.ground_truth.registrant_changes.len()
        );
        eprintln!("cdn departures: {}", data.ground_truth.cdn_departures.len());
        eprintln!("compromises: {}", data.ground_truth.compromises.len());
        eprintln!("breach serials: {}", data.ground_truth.breach_serials.len());
        eprintln!("adns domains: {}", data.adns.domain_count());
        eprintln!("adns changes: {}", data.adns.change_count());
    }
}

#[cfg(test)]
mod history_tests {
    use super::*;
    use crate::config::ScenarioConfig;

    fn tiny_data() -> WorldDatasets {
        World::run(ScenarioConfig::tiny())
    }

    #[test]
    fn cdn_transition_changes_issuer_mix() {
        // tiny preset starts 2021, after the 2019 transition, so all
        // managed certs come from the CDN's own CA; run a window that
        // spans the transition to see both.
        let mut cfg = ScenarioConfig::tiny();
        cfg.start = Date::parse("2018-06-01").unwrap();
        cfg.end = Date::parse("2020-06-01").unwrap();
        let data = World::run(cfg);
        let mut comodo = 0;
        let mut cloudflare = 0;
        for cert in data.monitor.corpus_unfiltered() {
            let issuer = &cert.certificate.tbs.issuer.common_name;
            let managed = cert
                .certificate
                .tbs
                .san()
                .iter()
                .any(|s| s.as_str().ends_with("cloudflaressl.com"));
            if !managed {
                continue;
            }
            if issuer.contains("COMODO") {
                comodo += 1;
                assert!(
                    cert.certificate.tbs.not_before() < Date::parse("2019-06-01").unwrap(),
                    "COMODO cruise-liners end at the transition"
                );
            } else if issuer.contains("CloudFlare") {
                cloudflare += 1;
            }
        }
        assert!(comodo > 0, "cruise-liner era certs exist");
        assert!(cloudflare > 0, "own-CA certs exist after transition");
    }

    #[test]
    fn le_dominates_late_era_self_managed_issuance() {
        let data = tiny_data();
        let mut le = 0usize;
        let mut commercial = 0usize;
        for cert in data.monitor.corpus_unfiltered() {
            let tbs = &cert.certificate.tbs;
            let managed = tbs
                .san()
                .iter()
                .any(|s| s.as_str().ends_with("cloudflaressl.com"));
            let hosted = tbs.issuer.common_name.contains("cPanel")
                || tbs.issuer.organization.as_deref() == Some("GoDaddy");
            if managed || hosted {
                continue;
            }
            if tbs.issuer.common_name.contains("Let's Encrypt") {
                le += 1;
            } else {
                commercial += 1;
            }
        }
        assert!(le > commercial, "LE share in 2021+ is {le} vs {commercial}");
    }

    #[test]
    fn lifetimes_obey_era_policy() {
        let data = tiny_data();
        for cert in data.monitor.corpus_unfiltered() {
            let tbs = &cert.certificate.tbs;
            let max = ca::policy::baseline_max_lifetime(tbs.not_before());
            assert!(
                tbs.lifetime() <= max,
                "{} issued {} for {} days (max {})",
                tbs.issuer.common_name,
                tbs.not_before(),
                tbs.lifetime().num_days(),
                max.num_days()
            );
        }
    }

    #[test]
    fn adns_has_data_through_scan_window() {
        let data = tiny_data();
        let start_records = data.adns.record_count_at(data.adns_window.start);
        let end_records = data.adns.record_count_at(data.adns_window.end.pred());
        assert!(start_records > 100, "{start_records}");
        assert!(end_records > 100, "{end_records}");
    }

    #[test]
    fn crl_scrape_total_coverage_near_98_pct() {
        let data = tiny_data();
        let cov = data.crl_stats.total_coverage();
        assert!((0.93..=1.0).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn world_without_breach_has_no_breach_serials() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.host_breach = None;
        let data = World::run(cfg);
        assert!(data.ground_truth.breach_serials.is_empty());
        assert_eq!(data.ground_truth.breach_date, None);
    }
}
