//! Scenario configuration and presets.
//!
//! Every behavioural knob of the world is here so the calibration that
//! makes the output match the paper's *shapes* is explicit and auditable.
//! The `paper2023` preset encodes the historical timeline the paper's
//! figures hinge on; `small`/`tiny` are scaled-down versions for tests
//! and benches.

use crate::distributions::Timeline;
use stale_types::{Date, DateInterval, Duration};

/// Era-dependent rates, as piecewise-linear functions of the date.
#[derive(Debug, Clone)]
pub struct EraTable {
    /// New domain registrations per day.
    pub domain_births_per_day: Timeline,
    /// Probability a new domain deploys HTTPS at all.
    pub https_adoption: Timeline,
    /// Among HTTPS domains: share choosing the Cloudflare-like CDN.
    pub cdn_share: Timeline,
    /// Among HTTPS domains: share choosing AutoSSL web hosting.
    pub webhost_share: Timeline,
    /// Among self-managed domains: share using the automated 90-day CA
    /// (zero before its launch).
    pub le_share: Timeline,
}

/// Full scenario configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master RNG seed; the whole world is deterministic given this.
    pub seed: u64,
    /// First simulated day.
    pub start: Date,
    /// One past the last simulated day.
    pub end: Date,
    /// Domains pre-seeded at `start`.
    pub initial_domains: usize,
    /// Era-dependent rates.
    pub eras: EraTable,
    /// Domain registration term.
    pub registration_term: Duration,
    /// Probability the registrant renews at each expiration.
    pub domain_renewal_prob: f64,
    /// Probability a released domain is re-registered by a new owner.
    pub rereg_prob: f64,
    /// Re-registration happens within this many days of release.
    pub rereg_delay_max_days: i64,
    /// Probability a departing CDN customer ever departs (the rest stay
    /// for the whole simulation).
    pub cdn_depart_prob: f64,
    /// Mean days from enrollment to departure, for departers.
    pub cdn_depart_mean_days: f64,
    /// Per-issuance probability of key compromise for commercial CAs.
    pub kc_prob_commercial: f64,
    /// Per-issuance probability of key compromise for automated CAs
    /// (applies only after `le_kc_reporting_start`).
    pub kc_prob_automated: f64,
    /// Mean days from issuance to compromise (Exp-distributed; §5.1/Fig 8:
    /// compromise reporting clusters near issuance).
    pub kc_delay_mean_days: f64,
    /// Per-issuance probability of a non-compromise revocation.
    pub other_revocation_prob: f64,
    /// Fraction of registrant-change domains whose prior owner was
    /// malicious (Table 5 measures ≈1%).
    pub malicious_prior_owner_prob: f64,
    /// Popularity rank universe (Alexa Top-1M analogue).
    pub max_rank: u32,
    /// The automated CA's launch day (Let's Encrypt, Dec 2015).
    pub le_launch: Date,
    /// Day the automated CA began reporting key compromise (July 2022).
    pub le_kc_reporting_start: Date,
    /// Day the CDN moved from cruise-liner COMODO certs to per-domain
    /// own-CA certs (mid-2019, Figure 5b).
    pub cdn_own_ca_transition: Date,
    /// GoDaddy-style web-host breach day (None disables it).
    pub host_breach: Option<Date>,
    /// Breach blast radius: certificates issued within this many days.
    pub host_breach_max_age_days: i64,
    /// Active-DNS scan window (§4.3: 2022-08-01 – 2022-10-30).
    pub adns_window: DateInterval,
    /// CRL collection window (§4.1: 2022-11-01 – 2023-05-05).
    pub crl_window: DateInterval,
    /// Default daily CRL download failure rate.
    pub crl_failure_default: f64,
    /// Fraction of self-managed certificates that add a `www.` SAN.
    pub www_san_prob: f64,
    /// Fraction of self-managed issuances that are for a subdomain
    /// (api./mail./shop.) instead of the apex.
    pub subdomain_cert_prob: f64,
}

impl ScenarioConfig {
    /// The full calibrated preset reproducing the paper's 2013–2023
    /// timeline at laptop scale.
    pub fn paper2023() -> Self {
        ScenarioConfig {
            seed: 0x5741_13c3,
            start: Date::parse("2013-03-01").expect("fixed"),
            end: Date::parse("2023-05-13").expect("fixed"),
            initial_domains: 1500,
            eras: EraTable {
                domain_births_per_day: Timeline::new(&[
                    ("2013-01-01", 2.0),
                    ("2015-01-01", 3.0),
                    ("2017-01-01", 5.0),
                    ("2019-01-01", 7.0),
                    ("2021-01-01", 9.0),
                    ("2023-01-01", 10.0),
                ]),
                https_adoption: Timeline::new(&[
                    ("2013-01-01", 0.15),
                    ("2016-01-01", 0.35),
                    ("2018-01-01", 0.65),
                    ("2020-01-01", 0.85),
                    ("2023-01-01", 0.95),
                ]),
                cdn_share: Timeline::new(&[
                    ("2013-01-01", 0.04),
                    ("2016-01-01", 0.12),
                    ("2018-01-01", 0.25),
                    ("2020-01-01", 0.33),
                    ("2023-01-01", 0.38),
                ]),
                webhost_share: Timeline::new(&[
                    ("2013-01-01", 0.06),
                    ("2018-01-01", 0.10),
                    ("2023-01-01", 0.12),
                ]),
                le_share: Timeline::new(&[
                    ("2015-12-01", 0.0),
                    ("2016-06-01", 0.15),
                    ("2018-01-01", 0.55),
                    ("2020-01-01", 0.75),
                    ("2023-01-01", 0.85),
                ]),
            },
            registration_term: Duration::days(365),
            domain_renewal_prob: 0.75,
            rereg_prob: 0.50,
            rereg_delay_max_days: 120,
            cdn_depart_prob: 0.70,
            cdn_depart_mean_days: 350.0,
            kc_prob_commercial: 0.007,
            kc_prob_automated: 0.002,
            kc_delay_mean_days: 25.0,
            other_revocation_prob: 0.12,
            malicious_prior_owner_prob: 0.01,
            max_rank: 1_000_000,
            le_launch: Date::parse("2015-12-01").expect("fixed"),
            le_kc_reporting_start: Date::parse("2022-07-01").expect("fixed"),
            cdn_own_ca_transition: Date::parse("2019-06-01").expect("fixed"),
            host_breach: Some(Date::parse("2021-11-17").expect("fixed")),
            host_breach_max_age_days: 40,
            adns_window: DateInterval::new(
                Date::parse("2022-08-01").expect("fixed"),
                Date::parse("2022-10-31").expect("fixed"),
            )
            .expect("valid window"),
            crl_window: DateInterval::new(
                Date::parse("2022-11-01").expect("fixed"),
                Date::parse("2023-05-06").expect("fixed"),
            )
            .expect("valid window"),
            crl_failure_default: 0.016,
            www_san_prob: 0.30,
            subdomain_cert_prob: 0.12,
        }
    }

    /// A reduced preset (~1/6 the population) for integration tests and
    /// benches that exercise the full pipeline quickly.
    pub fn small() -> Self {
        let mut cfg = Self::paper2023();
        cfg.initial_domains = 250;
        cfg.eras.domain_births_per_day = cfg.eras.domain_births_per_day.scaled(1.0 / 6.0);
        cfg
    }

    /// A minimal preset covering only 2021–2023 for fast unit tests.
    pub fn tiny() -> Self {
        let mut cfg = Self::paper2023();
        cfg.seed = 11;
        cfg.start = Date::parse("2021-01-01").expect("fixed");
        cfg.end = Date::parse("2023-05-13").expect("fixed");
        cfg.initial_domains = 120;
        cfg.eras.domain_births_per_day = Timeline::constant(0.8);
        cfg
    }

    /// Number of simulated days.
    pub fn sim_days(&self) -> i64 {
        (self.end - self.start).num_days()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_coherent() {
        for cfg in [
            ScenarioConfig::paper2023(),
            ScenarioConfig::small(),
            ScenarioConfig::tiny(),
        ] {
            assert!(cfg.start < cfg.end);
            assert!(cfg.sim_days() > 300);
            assert!(cfg.adns_window.start >= cfg.start && cfg.adns_window.end <= cfg.end);
            assert!(cfg.crl_window.start >= cfg.start);
            assert!((0.0..=1.0).contains(&cfg.domain_renewal_prob));
            assert!((0.0..=1.0).contains(&cfg.rereg_prob));
            assert!(cfg.kc_prob_commercial < 0.1, "compromise must stay rare");
        }
    }

    #[test]
    fn era_values_in_range_over_window() {
        let cfg = ScenarioConfig::paper2023();
        for day in cfg.start.iter_until(cfg.end).step_by(30) {
            for t in [
                &cfg.eras.https_adoption,
                &cfg.eras.cdn_share,
                &cfg.eras.webhost_share,
                &cfg.eras.le_share,
            ] {
                let v = t.at(day);
                assert!((0.0..=1.0).contains(&v), "{v} at {day}");
            }
            assert!(cfg.eras.domain_births_per_day.at(day) >= 0.0);
        }
    }

    #[test]
    fn le_share_zero_before_launch() {
        let cfg = ScenarioConfig::paper2023();
        assert_eq!(
            cfg.eras.le_share.at(Date::parse("2014-01-01").unwrap()),
            0.0
        );
        assert!(cfg.eras.le_share.at(Date::parse("2020-01-01").unwrap()) > 0.5);
    }
}
