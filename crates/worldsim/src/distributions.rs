//! Sampling helpers for the simulator.
//!
//! Only `rand`'s core RNG is a dependency; the distributions themselves
//! (exponential, bounded Zipf-like rank, weighted choice, piecewise-linear
//! interpolation over years) are implemented here so their exact shapes
//! are visible and testable.

use rand::Rng;
use stale_types::{Date, Duration};

/// Sample an exponential with the given mean (in days), as whole days.
pub fn exponential_days(rng: &mut impl Rng, mean_days: f64) -> Duration {
    debug_assert!(mean_days > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    Duration::days((-mean_days * u.ln()).round() as i64)
}

/// Sample a popularity rank in `[1, max_rank]` with a Zipf-ish heavy tail:
/// most domains are unpopular, a few are highly ranked.
///
/// Uses inverse-CDF of `P(rank ≤ r) ∝ r^(1-s)` with `s ≈ 0.6`, which gives
/// the long-tail shape Table 6 relies on without needing a harmonic sum.
pub fn popularity_rank(rng: &mut impl Rng, max_rank: u32) -> u32 {
    let u: f64 = rng.gen_range(0.0f64..1.0);
    // P(rank ≤ r) = (r/max)^1.3: most mass in the long tail, but popular
    // ranks occur at a small non-zero rate (Table 6's shape at sim scale).
    let exponent = 1.3;
    let r = (u.powf(1.0 / exponent) * max_rank as f64).ceil() as u32;
    r.clamp(1, max_rank)
}

/// Choose an index by weight. Zero total weight picks index 0.
pub fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// A piecewise-linear function of time, keyed by dates.
///
/// Used for era parameters (HTTPS adoption, CDN share, birth rates) that
/// drift over the 2013–2023 window.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// `(date, value)` knots in ascending date order.
    knots: Vec<(Date, f64)>,
}

impl Timeline {
    /// Build from `(YYYY-MM-DD, value)` pairs; they must be in date order.
    pub fn new(points: &[(&str, f64)]) -> Timeline {
        let knots: Vec<(Date, f64)> = points
            .iter()
            .map(|(s, v)| (Date::parse(s).expect("valid timeline date"), *v))
            .collect();
        assert!(!knots.is_empty(), "timeline needs at least one knot");
        assert!(
            knots.windows(2).all(|w| w[0].0 <= w[1].0),
            "knots must be date-ordered"
        );
        Timeline { knots }
    }

    /// A constant function.
    pub fn constant(value: f64) -> Timeline {
        Timeline {
            knots: vec![(Date::EPOCH, value)],
        }
    }

    /// Value at `date`: linear interpolation between knots, clamped at the
    /// ends.
    pub fn at(&self, date: Date) -> f64 {
        let knots = &self.knots;
        if date <= knots[0].0 {
            return knots[0].1;
        }
        if date >= knots[knots.len() - 1].0 {
            return knots[knots.len() - 1].1;
        }
        let idx = knots.partition_point(|(d, _)| *d <= date);
        let (d0, v0) = knots[idx - 1];
        let (d1, v1) = knots[idx];
        let span = (d1 - d0).num_days() as f64;
        let t = (date - d0).num_days() as f64 / span;
        v0 + (v1 - v0) * t
    }

    /// Scale every knot value by `factor`.
    pub fn scaled(&self, factor: f64) -> Timeline {
        Timeline {
            knots: self.knots.iter().map(|(d, v)| (*d, v * factor)).collect(),
        }
    }
}

/// Bernoulli draw from a probability that may be outside \[0,1\] (clamped).
pub fn chance(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Sample an integer count from a fractional daily rate: `floor(rate)`
/// guaranteed plus one more with probability `fract(rate)`.
pub fn rate_to_count(rng: &mut impl Rng, rate: f64) -> usize {
    let base = rate.floor().max(0.0) as usize;
    let extra = chance(rng, rate.fract());
    base + usize::from(extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = rng();
        let n = 20_000;
        let total: i64 = (0..n)
            .map(|_| exponential_days(&mut r, 30.0).num_days())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 30.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn popularity_rank_is_heavy_tailed() {
        let mut r = rng();
        let n = 50_000;
        let ranks: Vec<u32> = (0..n).map(|_| popularity_rank(&mut r, 1_000_000)).collect();
        assert!(ranks.iter().all(|&x| (1..=1_000_000).contains(&x)));
        let top_1pct = ranks.iter().filter(|&&x| x <= 10_000).count() as f64 / n as f64;
        // With the chosen skew, far fewer than 1% more... actually the top
        // 1% of ranks should hold noticeably more than 1% of mass... the
        // shape requirement for Table 6 is simply "a small but non-zero
        // share of domains is popular".
        assert!(top_1pct > 0.0005 && top_1pct < 0.2, "top share {top_1pct}");
        let bottom_half = ranks.iter().filter(|&&x| x > 500_000).count() as f64 / n as f64;
        assert!(
            bottom_half > 0.5,
            "most domains are unpopular: {bottom_half}"
        );
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let weights = [0.1, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_choice(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
        // Degenerate weights.
        assert_eq!(weighted_choice(&mut r, &[0.0, 0.0]), 0);
    }

    #[test]
    fn timeline_interpolates() {
        let t = Timeline::new(&[("2015-01-01", 0.0), ("2017-01-01", 1.0)]);
        assert_eq!(t.at(Date::parse("2014-06-01").unwrap()), 0.0);
        assert_eq!(t.at(Date::parse("2018-06-01").unwrap()), 1.0);
        let mid = t.at(Date::parse("2016-01-01").unwrap());
        assert!((mid - 0.5).abs() < 0.01, "mid {mid}");
        let c = Timeline::constant(0.3);
        assert_eq!(c.at(Date::parse("2022-05-05").unwrap()), 0.3);
        let s = t.scaled(2.0);
        assert_eq!(s.at(Date::parse("2018-01-01").unwrap()), 2.0);
    }

    #[test]
    #[should_panic(expected = "date-ordered")]
    fn timeline_rejects_unordered() {
        let _ = Timeline::new(&[("2017-01-01", 0.0), ("2015-01-01", 1.0)]);
    }

    #[test]
    fn rate_to_count_expectation() {
        let mut r = rng();
        let n = 20_000;
        let total: usize = (0..n).map(|_| rate_to_count(&mut r, 2.3)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.3).abs() < 0.05, "mean {mean}");
        assert_eq!(rate_to_count(&mut r, 0.0), 0);
    }
}
