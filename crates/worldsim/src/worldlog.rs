//! The world-fact log: layer 1 of the three-layer audit model.
//!
//! [`obs::audit`] records *decisions* (layer 2) and the trace/metrics
//! plane records *operations* (layer 3), but the facts those layers
//! refer to — which certificates existed, which CRL entries appeared,
//! which domains changed hands or left their CDN — lived only in
//! process memory until now. [`WorldLog`] is the canonical, append-only
//! record of those facts: every observable event of a simulated world,
//! day-stamped, deterministically ordered, and serialized as the
//! `stale-obs-worldlog` v1 JSONL schema (header line, one event per
//! line in canonical order, tally trailer — the same shape as the audit
//! schema, so the same tooling habits apply).
//!
//! The log is **complete**: [`WorldLog::to_datasets`] reconstructs a
//! [`WorldDatasets`] that is indistinguishable from the original to the
//! entire measurement pipeline (same structural fingerprint, same
//! detector outputs, byte-identical tables — `tests/worldlog_replay.rs`
//! proves it across shard counts and batch/incremental modes). The
//! enrichment side-channels (popularity, reputation) and the
//! ground-truth ledger are deliberately *not* world facts — they are
//! simulator internals no real measurement could observe — so replayed
//! worlds have them empty and Tables 5/6 are out of replay scope
//! (DESIGN.md).
//!
//! Because replay is exact, what-if analyses become log rewrites:
//! [`WorldLog::rewrite_cap_days`] clamps every certificate's validity to
//! a maximum lifetime and re-derives the affected facts, which is how
//! `stale-bench replay --rewrite cap-days=N` reruns the paper's §6
//! lifetime-cap simulations without constructing a fresh world.
//!
//! Determinism invariants:
//! * events sort by [`WorldEvent::sort_key`] — `(day, kind rank,
//!   CRL index, natural key)` — which is a total order over any valid
//!   log, so serialization is canonical: one world, one byte stream;
//! * every fact is day-stamped with the day it became observable
//!   (CT first-seen, CRL observation day, WHOIS creation date, DNS
//!   change day);
//! * DER is carried as lowercase hex by reference, so certificate
//!   bodies round-trip bit-exactly and `cert` ids can be re-verified;
//! * the header fingerprint is [`fold_fingerprint`] over the same
//!   components the live datasets fold, recomputable from the log alone.

use crate::bundle::{decode_hex, encode_hex};
use crate::datasets::{fold_fingerprint, GroundTruth, WorldDatasets};
use crate::popularity::PopularityArchive;
use crate::reputation::ReputationFeed;
use ca::scraper::{CrlDataset, RevocationRecord, ScrapeStats};
use cdn::provider::{DelegationKind, ProviderConfig};
use ct::monitor::CtMonitor;
use dns::scan::{DnsHistory, DnsView};
use registry::whois::WhoisDataset;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use stale_types::{Date, DateInterval, DomainName, Duration, KeyId, SerialNumber};
use std::collections::{BTreeMap, BTreeSet};
use x509::revocation::RevocationReason;
use x509::Certificate;

/// Schema tag on the JSONL header line.
pub const WORLDLOG_SCHEMA: &str = "stale-obs-worldlog";
/// Current world-log schema version.
pub const WORLDLOG_VERSION: u32 = 1;

/// Every event kind, in canonical rank order (the trailer tally is keyed
/// by these, pre-seeded so absent kinds show as zero).
pub const EVENT_KINDS: [&str; 9] = [
    "cert-issued",
    "cert-expired",
    "crl-published",
    "crl-entry-added",
    "domain-registered",
    "domain-re-registered",
    "domain-dropped",
    "delegation-added",
    "delegation-dropped",
];

/// One observable world fact. Dates are day-granular; hex is lowercase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldEvent {
    /// A certificate first appeared in CT.
    CertIssued {
        /// Earliest log timestamp across the entries that deduped here.
        day: Date,
        /// Dedup identity ([`Certificate::cert_id`]), 64 hex chars — the
        /// join key against audit decisions.
        cert: String,
        /// Full DER encoding, hex. The body of record: validity, SANs,
        /// AKI and serial are all re-derivable from it.
        der: String,
        /// Raw log entries that collapsed into this certificate.
        entry_count: u64,
    },
    /// A certificate's validity ended (`notAfter`, exclusive).
    CertExpired {
        /// First day the certificate is invalid.
        day: Date,
        /// Dedup identity, 64 hex chars.
        cert: String,
    },
    /// A CA's CRL scrape tally for the collection window (Table 7 row).
    CrlPublished {
        /// Last scrape day of the collection window.
        day: Date,
        /// CA display name.
        ca: String,
        /// Downloads attempted.
        attempted: u64,
        /// Downloads that succeeded.
        ok: u64,
    },
    /// A revocation entry was first observed on a CRL.
    CrlEntryAdded {
        /// Observation day.
        day: Date,
        /// Position in the global CRL dataset (the audit provenance key).
        crl_index: u64,
        /// Issuing authority key id, 40 hex chars.
        authority_key_id: String,
        /// Revoked serial, 32 hex chars.
        serial: String,
        /// Revocation effective date.
        revoked: Date,
        /// RFC 5280 CRLReason code.
        reason: u8,
    },
    /// A domain's first observed WHOIS creation date.
    DomainRegistered {
        /// The creation date itself (thin WHOIS is day-granular).
        day: Date,
        /// The e2LD.
        domain: String,
    },
    /// A later creation date — the domain was deleted and re-registered.
    DomainReRegistered {
        /// The new creation date.
        day: Date,
        /// The e2LD.
        domain: String,
    },
    /// A domain's DNS went dark (empty resolution view).
    DomainDropped {
        /// First day the scan saw nothing.
        day: Date,
        /// The e2LD.
        domain: String,
    },
    /// A domain's resolution changed to (or first appeared with) the
    /// recorded view; covers gaining a managed delegation and generic
    /// changes alike.
    DelegationAdded {
        /// First day of the new view.
        day: Date,
        /// The e2LD.
        domain: String,
        /// NS targets, sorted.
        ns: Vec<String>,
        /// CNAME targets, sorted.
        cname: Vec<String>,
        /// A records (dotted quads), sorted.
        a: Vec<String>,
    },
    /// A domain's resolution lost its managed delegation (the §6
    /// departure signal) while still resolving.
    DelegationDropped {
        /// First day without the delegation.
        day: Date,
        /// The e2LD.
        domain: String,
        /// NS targets, sorted.
        ns: Vec<String>,
        /// CNAME targets, sorted.
        cname: Vec<String>,
        /// A records (dotted quads), sorted.
        a: Vec<String>,
    },
}

impl WorldEvent {
    /// The kind tag used on the wire and in the trailer tally.
    pub fn kind(&self) -> &'static str {
        match self {
            WorldEvent::CertIssued { .. } => "cert-issued",
            WorldEvent::CertExpired { .. } => "cert-expired",
            WorldEvent::CrlPublished { .. } => "crl-published",
            WorldEvent::CrlEntryAdded { .. } => "crl-entry-added",
            WorldEvent::DomainRegistered { .. } => "domain-registered",
            WorldEvent::DomainReRegistered { .. } => "domain-re-registered",
            WorldEvent::DomainDropped { .. } => "domain-dropped",
            WorldEvent::DelegationAdded { .. } => "delegation-added",
            WorldEvent::DelegationDropped { .. } => "delegation-dropped",
        }
    }

    /// The day the fact became observable.
    pub fn day(&self) -> Date {
        match self {
            WorldEvent::CertIssued { day, .. }
            | WorldEvent::CertExpired { day, .. }
            | WorldEvent::CrlPublished { day, .. }
            | WorldEvent::CrlEntryAdded { day, .. }
            | WorldEvent::DomainRegistered { day, .. }
            | WorldEvent::DomainReRegistered { day, .. }
            | WorldEvent::DomainDropped { day, .. }
            | WorldEvent::DelegationAdded { day, .. }
            | WorldEvent::DelegationDropped { day, .. } => *day,
        }
    }

    fn kind_rank(&self) -> u8 {
        match self {
            WorldEvent::CertIssued { .. } => 0,
            WorldEvent::CertExpired { .. } => 1,
            WorldEvent::CrlPublished { .. } => 2,
            WorldEvent::CrlEntryAdded { .. } => 3,
            WorldEvent::DomainRegistered { .. } => 4,
            WorldEvent::DomainReRegistered { .. } => 5,
            WorldEvent::DomainDropped { .. } => 6,
            WorldEvent::DelegationAdded { .. } => 7,
            WorldEvent::DelegationDropped { .. } => 8,
        }
    }

    /// The canonical total order: day first (so a sorted log *is* a
    /// timeline), then kind rank, then the CRL dataset index, then the
    /// event's natural key. Day-major order is also exactly the order
    /// [`WorldLog::to_datasets`] must apply facts in: per-domain WHOIS
    /// and DNS streams stay chronological, and the global CRL index —
    /// nondecreasing in observation day by construction — is preserved.
    pub fn sort_key(&self) -> (Date, u8, u64, &str) {
        let idx = match self {
            WorldEvent::CrlEntryAdded { crl_index, .. } => *crl_index,
            _ => 0,
        };
        let natural = match self {
            WorldEvent::CertIssued { cert, .. } | WorldEvent::CertExpired { cert, .. } => {
                cert.as_str()
            }
            WorldEvent::CrlPublished { ca, .. } => ca.as_str(),
            WorldEvent::CrlEntryAdded { .. } => "",
            WorldEvent::DomainRegistered { domain, .. }
            | WorldEvent::DomainReRegistered { domain, .. }
            | WorldEvent::DomainDropped { domain, .. }
            | WorldEvent::DelegationAdded { domain, .. }
            | WorldEvent::DelegationDropped { domain, .. } => domain.as_str(),
        };
        (self.day(), self.kind_rank(), idx, natural)
    }
}

fn parse_ipv4(s: &str) -> Option<dns::Ipv4Addr> {
    let mut octets = [0u8; 4];
    let mut parts = s.split('.');
    for slot in &mut octets {
        let part = parts.next()?;
        // Reject empty/padded forms so parsing stays canonical.
        if part.is_empty() || (part.len() > 1 && part.starts_with('0')) {
            return None;
        }
        *slot = part.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(dns::Ipv4Addr(octets))
}

fn str_arr(items: &[String]) -> Value {
    Value::Arr(items.iter().map(|s| Value::Str(s.clone())).collect())
}

impl Serialize for WorldEvent {
    fn serialize(&self) -> Value {
        let kind = ("kind".to_string(), Value::Str(self.kind().to_string()));
        let day = ("day".to_string(), Value::Str(self.day().to_string()));
        let s = |v: &str| Value::Str(v.to_string());
        let n = |v: u64| Value::UInt(u128::from(v));
        match self {
            WorldEvent::CertIssued {
                cert,
                der,
                entry_count,
                ..
            } => Value::Obj(vec![
                kind,
                day,
                ("cert".to_string(), s(cert)),
                ("der".to_string(), s(der)),
                ("entry_count".to_string(), n(*entry_count)),
            ]),
            WorldEvent::CertExpired { cert, .. } => {
                Value::Obj(vec![kind, day, ("cert".to_string(), s(cert))])
            }
            WorldEvent::CrlPublished {
                ca, attempted, ok, ..
            } => Value::Obj(vec![
                kind,
                day,
                ("ca".to_string(), s(ca)),
                ("attempted".to_string(), n(*attempted)),
                ("ok".to_string(), n(*ok)),
            ]),
            WorldEvent::CrlEntryAdded {
                crl_index,
                authority_key_id,
                serial,
                revoked,
                reason,
                ..
            } => Value::Obj(vec![
                kind,
                day,
                ("crl_index".to_string(), n(*crl_index)),
                ("authority_key_id".to_string(), s(authority_key_id)),
                ("serial".to_string(), s(serial)),
                ("revoked".to_string(), Value::Str(revoked.to_string())),
                ("reason".to_string(), n(u64::from(*reason))),
            ]),
            WorldEvent::DomainRegistered { domain, .. }
            | WorldEvent::DomainReRegistered { domain, .. }
            | WorldEvent::DomainDropped { domain, .. } => {
                Value::Obj(vec![kind, day, ("domain".to_string(), s(domain))])
            }
            WorldEvent::DelegationAdded {
                domain,
                ns,
                cname,
                a,
                ..
            }
            | WorldEvent::DelegationDropped {
                domain,
                ns,
                cname,
                a,
                ..
            } => Value::Obj(vec![
                kind,
                day,
                ("domain".to_string(), s(domain)),
                ("ns".to_string(), str_arr(ns)),
                ("cname".to_string(), str_arr(cname)),
                ("a".to_string(), str_arr(a)),
            ]),
        }
    }
}

fn day_field(v: &Value, name: &str) -> Result<Date, serde::de::Error> {
    let s: String = serde::de::field(v, name)?;
    Date::parse(&s).map_err(|_| serde::de::Error::msg(format!("bad day {s:?} in field {name:?}")))
}

impl Deserialize for WorldEvent {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        let kind: String = serde::de::field(v, "kind")?;
        let day = day_field(v, "day")?;
        match kind.as_str() {
            "cert-issued" => Ok(WorldEvent::CertIssued {
                day,
                cert: serde::de::field(v, "cert")?,
                der: serde::de::field(v, "der")?,
                entry_count: serde::de::field(v, "entry_count")?,
            }),
            "cert-expired" => Ok(WorldEvent::CertExpired {
                day,
                cert: serde::de::field(v, "cert")?,
            }),
            "crl-published" => Ok(WorldEvent::CrlPublished {
                day,
                ca: serde::de::field(v, "ca")?,
                attempted: serde::de::field(v, "attempted")?,
                ok: serde::de::field(v, "ok")?,
            }),
            "crl-entry-added" => {
                let reason: u64 = serde::de::field(v, "reason")?;
                Ok(WorldEvent::CrlEntryAdded {
                    day,
                    crl_index: serde::de::field(v, "crl_index")?,
                    authority_key_id: serde::de::field(v, "authority_key_id")?,
                    serial: serde::de::field(v, "serial")?,
                    revoked: day_field(v, "revoked")?,
                    reason: u8::try_from(reason).map_err(|_| {
                        serde::de::Error::msg(format!("reason code {reason} out of range"))
                    })?,
                })
            }
            "domain-registered" => Ok(WorldEvent::DomainRegistered {
                day,
                domain: serde::de::field(v, "domain")?,
            }),
            "domain-re-registered" => Ok(WorldEvent::DomainReRegistered {
                day,
                domain: serde::de::field(v, "domain")?,
            }),
            "domain-dropped" => Ok(WorldEvent::DomainDropped {
                day,
                domain: serde::de::field(v, "domain")?,
            }),
            "delegation-added" => Ok(WorldEvent::DelegationAdded {
                day,
                domain: serde::de::field(v, "domain")?,
                ns: serde::de::field(v, "ns")?,
                cname: serde::de::field(v, "cname")?,
                a: serde::de::field(v, "a")?,
            }),
            "delegation-dropped" => Ok(WorldEvent::DelegationDropped {
                day,
                domain: serde::de::field(v, "domain")?,
                ns: serde::de::field(v, "ns")?,
                cname: serde::de::field(v, "cname")?,
                a: serde::de::field(v, "a")?,
            }),
            other => Err(serde::de::Error::msg(format!(
                "unknown world-event kind {other:?}"
            ))),
        }
    }
}

/// The CDN's delegation/marker configuration, carried in the header so a
/// replayed world knows what §4.3's detector is allowed to know.
/// ([`ProviderConfig`] itself stays serde-free; this is its wire form.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdnSettings {
    /// Provider display name.
    pub name: String,
    /// NS-delegation targets.
    pub nameservers: Vec<String>,
    /// CNAME-delegation suffix.
    pub cname_base: String,
    /// Marker-SAN base, if the provider has one.
    pub marker_base: Option<String>,
    /// Customer domains per certificate.
    pub sans_per_cert: u64,
    /// `"ns"` or `"cname"`.
    pub delegation: String,
}

impl CdnSettings {
    /// Capture a provider configuration.
    pub fn from_provider(cfg: &ProviderConfig) -> CdnSettings {
        CdnSettings {
            name: cfg.name.clone(),
            nameservers: cfg.nameservers.iter().map(|n| n.to_string()).collect(),
            cname_base: cfg.cname_base.to_string(),
            marker_base: cfg.marker_base.clone(),
            sans_per_cert: cfg.sans_per_cert as u64,
            delegation: match cfg.delegation {
                DelegationKind::Ns => "ns".to_string(),
                DelegationKind::Cname => "cname".to_string(),
            },
        }
    }

    /// Rebuild the provider configuration.
    pub fn to_provider(&self) -> Result<ProviderConfig, String> {
        let mut nameservers = Vec::with_capacity(self.nameservers.len());
        for ns in &self.nameservers {
            nameservers
                .push(DomainName::parse(ns).map_err(|e| format!("cdn nameserver {ns:?}: {e}"))?);
        }
        Ok(ProviderConfig {
            name: self.name.clone(),
            nameservers,
            cname_base: DomainName::parse(&self.cname_base)
                .map_err(|e| format!("cdn cname_base {:?}: {e}", self.cname_base))?,
            marker_base: self.marker_base.clone(),
            sans_per_cert: self.sans_per_cert as usize,
            delegation: match self.delegation.as_str() {
                "ns" => DelegationKind::Ns,
                "cname" => DelegationKind::Cname,
                other => return Err(format!("unknown delegation kind {other:?}")),
            },
        })
    }
}

impl Serialize for CdnSettings {
    fn serialize(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("nameservers".to_string(), str_arr(&self.nameservers)),
            (
                "cname_base".to_string(),
                Value::Str(self.cname_base.clone()),
            ),
            ("marker_base".to_string(), self.marker_base.serialize()),
            (
                "sans_per_cert".to_string(),
                Value::UInt(u128::from(self.sans_per_cert)),
            ),
            (
                "delegation".to_string(),
                Value::Str(self.delegation.clone()),
            ),
        ])
    }
}

impl Deserialize for CdnSettings {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        Ok(CdnSettings {
            name: serde::de::field(v, "name")?,
            nameservers: serde::de::field(v, "nameservers")?,
            cname_base: serde::de::field(v, "cname_base")?,
            marker_base: serde::de::field(v, "marker_base")?,
            sans_per_cert: serde::de::field(v, "sans_per_cert")?,
            delegation: serde::de::field(v, "delegation")?,
        })
    }
}

/// The JSONL header line: schema identity, event count, the structural
/// fingerprint, and the world parameters that are configuration rather
/// than events (windows, CT shard counts, CDN settings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldLogHeader {
    /// Always [`WORLDLOG_SCHEMA`].
    pub schema: String,
    /// Always [`WORLDLOG_VERSION`].
    pub version: u32,
    /// Number of event lines that follow.
    pub events: usize,
    /// [`fold_fingerprint`] over the log's own components — what a
    /// reconstructed [`WorldDatasets::fingerprint`] must equal.
    pub fingerprint: u64,
    /// Simulated window.
    pub sim_window: DateInterval,
    /// aDNS scan window.
    pub adns_window: DateInterval,
    /// CRL collection window.
    pub crl_window: DateInterval,
    /// Raw CT log entries before dedup.
    pub ct_raw_entries: u64,
    /// Number of CT logs.
    pub ct_log_count: u64,
    /// The CDN configuration the detectors may consult.
    pub cdn: CdnSettings,
}

fn window_value(w: DateInterval) -> Value {
    Value::Arr(vec![
        Value::Str(w.start.to_string()),
        Value::Str(w.end.to_string()),
    ])
}

fn window_field(v: &Value, name: &str) -> Result<DateInterval, serde::de::Error> {
    let pair: Vec<String> = serde::de::field(v, name)?;
    let [start, end] = pair.as_slice() else {
        return Err(serde::de::Error::msg(format!(
            "field {name:?}: expected [start, end]"
        )));
    };
    let bad = |s: &str| serde::de::Error::msg(format!("field {name:?}: bad day {s:?}"));
    let start_day = Date::parse(start).map_err(|_| bad(start))?;
    let end_day = Date::parse(end).map_err(|_| bad(end))?;
    DateInterval::new(start_day, end_day)
        .map_err(|_| serde::de::Error::msg(format!("field {name:?}: degenerate window")))
}

impl Serialize for WorldLogHeader {
    fn serialize(&self) -> Value {
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(self.schema.clone())),
            ("version".to_string(), Value::UInt(u128::from(self.version))),
            ("events".to_string(), Value::UInt(self.events as u128)),
            (
                "fingerprint".to_string(),
                Value::UInt(u128::from(self.fingerprint)),
            ),
            ("sim_window".to_string(), window_value(self.sim_window)),
            ("adns_window".to_string(), window_value(self.adns_window)),
            ("crl_window".to_string(), window_value(self.crl_window)),
            (
                "ct_raw_entries".to_string(),
                Value::UInt(u128::from(self.ct_raw_entries)),
            ),
            (
                "ct_log_count".to_string(),
                Value::UInt(u128::from(self.ct_log_count)),
            ),
            ("cdn".to_string(), self.cdn.serialize()),
        ])
    }
}

impl Deserialize for WorldLogHeader {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        Ok(WorldLogHeader {
            schema: serde::de::field(v, "schema")?,
            version: serde::de::field(v, "version")?,
            events: serde::de::field(v, "events")?,
            fingerprint: serde::de::field(v, "fingerprint")?,
            sim_window: window_field(v, "sim_window")?,
            adns_window: window_field(v, "adns_window")?,
            crl_window: window_field(v, "crl_window")?,
            ct_raw_entries: serde::de::field(v, "ct_raw_entries")?,
            ct_log_count: serde::de::field(v, "ct_log_count")?,
            cdn: CdnSettings::deserialize(
                v.get("cdn")
                    .ok_or_else(|| serde::de::Error::msg("missing field \"cdn\""))?,
            )?,
        })
    }
}

/// The JSONL trailer line: per-kind event tally plus total, so a
/// truncated file is detectable without re-reading the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldLogTally {
    /// Kind tag → count, every kind of [`EVENT_KINDS`] present.
    pub tally: BTreeMap<String, u64>,
    /// Total event lines.
    pub total: u64,
}

impl Serialize for WorldLogTally {
    fn serialize(&self) -> Value {
        Value::Obj(vec![
            ("tally".to_string(), self.tally.serialize()),
            ("total".to_string(), Value::UInt(u128::from(self.total))),
        ])
    }
}

impl Deserialize for WorldLogTally {
    fn deserialize(v: &Value) -> Result<Self, serde::de::Error> {
        Ok(WorldLogTally {
            tally: serde::de::field(v, "tally")?,
            total: serde::de::field(v, "total")?,
        })
    }
}

/// A complete world-fact log: header + canonically ordered events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldLog {
    /// Schema identity and world parameters.
    pub header: WorldLogHeader,
    /// Every event, in [`WorldEvent::sort_key`] order.
    pub events: Vec<WorldEvent>,
}

impl WorldLog {
    /// Extract the world-fact log from live datasets. The inverse of
    /// [`WorldLog::to_datasets`]: extracting and reconstructing yields a
    /// world with the same fingerprint and byte-identical pipeline
    /// outputs.
    pub fn from_datasets(data: &WorldDatasets) -> WorldLog {
        let mut events = Vec::new();
        for c in data.monitor.corpus_unfiltered() {
            let cert = c.cert_id.to_string();
            events.push(WorldEvent::CertIssued {
                day: c.first_seen,
                cert: cert.clone(),
                der: encode_hex(&c.certificate.encode()),
                entry_count: c.entry_count as u64,
            });
            events.push(WorldEvent::CertExpired {
                day: c.certificate.tbs.not_after(),
                cert,
            });
        }
        // A CA's scrape tally is "published" on the last collection day.
        let crl_day = if data.crl_window.is_empty() {
            data.crl_window.start
        } else {
            data.crl_window.end.pred()
        };
        for (ca, (attempted, ok)) in &data.crl_stats.per_ca {
            events.push(WorldEvent::CrlPublished {
                day: crl_day,
                ca: ca.clone(),
                attempted: *attempted,
                ok: *ok,
            });
        }
        for (i, rec) in data.crl.records().iter().enumerate() {
            events.push(WorldEvent::CrlEntryAdded {
                day: rec.observed,
                crl_index: i as u64,
                authority_key_id: rec.authority_key_id.to_string(),
                serial: rec.serial.to_string(),
                revoked: rec.revocation_date,
                reason: rec.reason.code(),
            });
        }
        let mut seen_domains: BTreeSet<&DomainName> = BTreeSet::new();
        for (domain, creation) in data.whois.observations() {
            let name = domain.to_string();
            if seen_domains.insert(domain) {
                events.push(WorldEvent::DomainRegistered {
                    day: creation,
                    domain: name,
                });
            } else {
                events.push(WorldEvent::DomainReRegistered {
                    day: creation,
                    domain: name,
                });
            }
        }
        let is_provider =
            |view: &DnsView| view.any_delegation(|t| data.cdn_config.is_delegation_target(t));
        for domain in data.adns.domains() {
            let log = data.adns.change_log(domain);
            for (i, (day, view)) in log.iter().enumerate() {
                let empty = view.ns.is_empty() && view.cname.is_empty() && view.a.is_empty();
                if empty {
                    events.push(WorldEvent::DomainDropped {
                        day: *day,
                        domain: domain.to_string(),
                    });
                    continue;
                }
                let was_provider = i > 0 && is_provider(&log[i - 1].1);
                let ns = view.ns.iter().map(|n| n.to_string()).collect();
                let cname = view.cname.iter().map(|n| n.to_string()).collect();
                let a = view.a.iter().map(|ip| ip.to_string()).collect();
                let domain = domain.to_string();
                if was_provider && !is_provider(view) {
                    events.push(WorldEvent::DelegationDropped {
                        day: *day,
                        domain,
                        ns,
                        cname,
                        a,
                    });
                } else {
                    events.push(WorldEvent::DelegationAdded {
                        day: *day,
                        domain,
                        ns,
                        cname,
                        a,
                    });
                }
            }
        }
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        WorldLog {
            header: WorldLogHeader {
                schema: WORLDLOG_SCHEMA.to_string(),
                version: WORLDLOG_VERSION,
                events: events.len(),
                fingerprint: data.fingerprint(),
                sim_window: data.sim_window,
                adns_window: data.adns_window,
                crl_window: data.crl_window,
                ct_raw_entries: data.ct_raw_entries as u64,
                ct_log_count: data.ct_log_count as u64,
                cdn: CdnSettings::from_provider(&data.cdn_config),
            },
            events,
        }
    }

    /// Reconstruct the datasets from facts alone. Popularity, reputation
    /// and ground truth are not world facts and come back empty — every
    /// replay-scoped output (Tables 3/4/7, Figs. 4/6/8/9, the audit) is
    /// byte-identical regardless. Fails if any event is malformed or the
    /// reconstructed fingerprint disagrees with the header.
    pub fn to_datasets(&self) -> Result<WorldDatasets, String> {
        let mut order: Vec<&WorldEvent> = self.events.iter().collect();
        order.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut monitor = CtMonitor::new();
        let mut crl = CrlDataset::new();
        crl.window = Some(self.header.crl_window);
        let mut crl_stats = ScrapeStats::default();
        let mut whois = WhoisDataset::new();
        let mut adns = DnsHistory::new();
        for ev in order {
            match ev {
                WorldEvent::CertIssued {
                    day,
                    cert,
                    der,
                    entry_count,
                } => {
                    let bytes = decode_hex(der)
                        .ok_or_else(|| format!("cert-issued {cert}: der is not hex"))?;
                    let parsed = Certificate::decode(&bytes)
                        .map_err(|e| format!("cert-issued {cert}: bad DER: {e:?}"))?;
                    if parsed.cert_id().to_string() != *cert {
                        return Err(format!(
                            "cert-issued {cert}: DER decodes to a different certificate ({})",
                            parsed.cert_id()
                        ));
                    }
                    if *entry_count == 0 {
                        return Err(format!("cert-issued {cert}: entry_count is zero"));
                    }
                    for _ in 0..*entry_count {
                        monitor.ingest(parsed.clone(), *day);
                    }
                }
                // Expiry is implied by the DER; the event exists so the
                // log reads as a timeline without decoding anything.
                WorldEvent::CertExpired { .. } => {}
                WorldEvent::CrlPublished {
                    ca, attempted, ok, ..
                } => {
                    crl_stats.per_ca.insert(ca.clone(), (*attempted, *ok));
                }
                WorldEvent::CrlEntryAdded {
                    day,
                    crl_index,
                    authority_key_id,
                    serial,
                    revoked,
                    reason,
                } => {
                    if *crl_index != crl.len() as u64 {
                        return Err(format!(
                            "crl-entry-added: index {crl_index} where {} was expected",
                            crl.len()
                        ));
                    }
                    let aki = decode_hex(authority_key_id)
                        .and_then(|b| <[u8; 20]>::try_from(b).ok())
                        .ok_or_else(|| {
                            format!("crl-entry-added #{crl_index}: bad authority key id")
                        })?;
                    let serial = u128::from_str_radix(serial, 16)
                        .map_err(|_| format!("crl-entry-added #{crl_index}: bad serial"))?;
                    let reason = RevocationReason::from_code(*reason).ok_or_else(|| {
                        format!("crl-entry-added #{crl_index}: unknown reason code {reason}")
                    })?;
                    if !crl.add(RevocationRecord {
                        authority_key_id: KeyId::from_bytes(aki),
                        serial: SerialNumber(serial),
                        revocation_date: *revoked,
                        reason,
                        observed: *day,
                    }) {
                        return Err(format!("crl-entry-added #{crl_index}: duplicate entry"));
                    }
                }
                WorldEvent::DomainRegistered { day, domain }
                | WorldEvent::DomainReRegistered { day, domain } => {
                    let name = DomainName::parse(domain)
                        .map_err(|e| format!("{} {domain:?}: {e}", ev.kind()))?;
                    whois.observe(name, *day);
                }
                WorldEvent::DomainDropped { day, domain } => {
                    let name = DomainName::parse(domain)
                        .map_err(|e| format!("domain-dropped {domain:?}: {e}"))?;
                    adns.record_change(name, *day, DnsView::default());
                }
                WorldEvent::DelegationAdded {
                    day,
                    domain,
                    ns,
                    cname,
                    a,
                }
                | WorldEvent::DelegationDropped {
                    day,
                    domain,
                    ns,
                    cname,
                    a,
                } => {
                    let kind = ev.kind();
                    let name =
                        DomainName::parse(domain).map_err(|e| format!("{kind} {domain:?}: {e}"))?;
                    let mut view = DnsView::default();
                    for t in ns {
                        view.ns.insert(
                            DomainName::parse(t).map_err(|e| format!("{kind} {domain:?}: {e}"))?,
                        );
                    }
                    for t in cname {
                        view.cname.insert(
                            DomainName::parse(t).map_err(|e| format!("{kind} {domain:?}: {e}"))?,
                        );
                    }
                    for ip in a {
                        view.a.insert(
                            parse_ipv4(ip)
                                .ok_or_else(|| format!("{kind} {domain:?}: bad address {ip:?}"))?,
                        );
                    }
                    adns.record_change(name, *day, view);
                }
            }
        }
        let data = WorldDatasets {
            monitor,
            crl,
            crl_stats,
            whois,
            adns,
            popularity: PopularityArchive::new(),
            reputation: ReputationFeed::new(),
            ground_truth: GroundTruth::default(),
            cdn_config: self.header.cdn.to_provider()?,
            sim_window: self.header.sim_window,
            adns_window: self.header.adns_window,
            crl_window: self.header.crl_window,
            ct_raw_entries: self.header.ct_raw_entries as usize,
            ct_log_count: self.header.ct_log_count as usize,
        };
        let fp = data.fingerprint();
        if fp != self.header.fingerprint {
            return Err(format!(
                "reconstructed fingerprint {fp:#018x} does not match header {:#018x}",
                self.header.fingerprint
            ));
        }
        Ok(data)
    }

    /// Per-kind event tally, every kind pre-seeded at zero.
    pub fn tally(&self) -> WorldLogTally {
        let mut tally: BTreeMap<String, u64> = EVENT_KINDS
            .iter()
            .map(|k| ((*k).to_string(), 0u64))
            .collect();
        for ev in &self.events {
            *tally.entry(ev.kind().to_string()).or_insert(0) += 1;
        }
        WorldLogTally {
            tally,
            total: self.events.len() as u64,
        }
    }

    /// Export as JSONL: header line, one event per line in canonical
    /// order, tally trailer.
    // stale-lint: entry(serial)
    pub fn to_jsonl(&self) -> String {
        let mut order: Vec<&WorldEvent> = self.events.iter().collect();
        order.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut out = serde_json::to_string(&self.header).unwrap_or_default();
        out.push('\n');
        for ev in order {
            out.push_str(&serde_json::to_string(ev).unwrap_or_default());
            out.push('\n');
        }
        out.push_str(&serde_json::to_string(&self.tally()).unwrap_or_default());
        out.push('\n');
        out
    }

    /// Parse a JSONL export. Checks schema identity, the trailer tally
    /// and the header event count; use [`validate_worldlog_jsonl`] for
    /// full per-line diagnostics.
    pub fn from_jsonl(text: &str) -> Result<WorldLog, String> {
        let mut lines = text.lines();
        let first = lines.next().ok_or("empty world log")?;
        let header_value: Value =
            serde_json::from_str(first).map_err(|e| format!("world-log header: {e}"))?;
        let header = WorldLogHeader::deserialize(&header_value)
            .map_err(|e| format!("world-log header: {e}"))?;
        if header.schema != WORLDLOG_SCHEMA {
            return Err(format!(
                "schema {:?} is not {WORLDLOG_SCHEMA:?}",
                header.schema
            ));
        }
        if header.version != WORLDLOG_VERSION {
            return Err(format!(
                "version {} is not {WORLDLOG_VERSION}",
                header.version
            ));
        }
        let mut events = Vec::with_capacity(header.events);
        let mut trailer: Option<WorldLogTally> = None;
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if trailer.is_some() {
                return Err(format!("line {}: content after the trailer", lineno + 2));
            }
            let value: Value =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 2))?;
            if value.get("kind").is_some() {
                let ev = WorldEvent::deserialize(&value)
                    .map_err(|e| format!("line {}: {e}", lineno + 2))?;
                events.push(ev);
            } else {
                let t = WorldLogTally::deserialize(&value)
                    .map_err(|e| format!("line {}: trailer: {e}", lineno + 2))?;
                trailer = Some(t);
            }
        }
        let trailer = trailer.ok_or("missing trailer line")?;
        let mut log = WorldLog { header, events };
        log.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        if trailer.total != log.events.len() as u64 {
            return Err(format!(
                "trailer declares {} event(s) but the file holds {}",
                trailer.total,
                log.events.len()
            ));
        }
        if trailer != log.tally() {
            return Err("trailer tally does not match the event lines".to_string());
        }
        if log.header.events != log.events.len() {
            return Err(format!(
                "header declares {} event(s) but the file holds {}",
                log.header.events,
                log.events.len()
            ));
        }
        Ok(log)
    }

    /// The §6 lifetime-cap rewrite: clamp every certificate's validity
    /// to at most `cap_days` days, re-derive the dependent facts
    /// (DER bytes, dedup identities, expiry events) and refresh the
    /// header. The result is a valid log of the what-if world — replay
    /// it to get the capped Figs. 8–9 without building a fresh world.
    pub fn rewrite_cap_days(&self, cap_days: i64) -> Result<WorldLog, String> {
        if cap_days <= 0 {
            return Err(format!("cap-days must be positive, got {cap_days}"));
        }
        let cap = Duration::days(cap_days);
        let mut events = Vec::with_capacity(self.events.len());
        let mut expiries: Vec<(Date, String)> = Vec::new();
        for ev in &self.events {
            match ev {
                WorldEvent::CertIssued {
                    day,
                    cert,
                    der,
                    entry_count,
                } => {
                    let bytes = decode_hex(der)
                        .ok_or_else(|| format!("cert-issued {cert}: der is not hex"))?;
                    let mut parsed = Certificate::decode(&bytes)
                        .map_err(|e| format!("cert-issued {cert}: bad DER: {e:?}"))?;
                    parsed.tbs.validity = parsed.tbs.validity.cap_len(cap);
                    let capped_cert = parsed.cert_id().to_string();
                    expiries.push((parsed.tbs.not_after(), capped_cert.clone()));
                    events.push(WorldEvent::CertIssued {
                        day: *day,
                        cert: capped_cert,
                        der: encode_hex(&parsed.encode()),
                        entry_count: *entry_count,
                    });
                }
                // Re-emitted below from the capped validity.
                WorldEvent::CertExpired { .. } => {}
                other => events.push(other.clone()),
            }
        }
        for (day, cert) in expiries {
            events.push(WorldEvent::CertExpired { day, cert });
        }
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        let mut header = self.header.clone();
        header.events = events.len();
        let log = WorldLog { header, events };
        // Capping can in principle collapse dedup identities, so re-fold
        // the fingerprint from the rewritten stream.
        let mut log = log;
        log.header.fingerprint = fold_from_events(&log.header, &log.events);
        Ok(log)
    }
}

/// [`fold_fingerprint`] computed from an event stream plus header
/// configuration — no reconstruction needed, so validation can check the
/// fingerprint cheaply and rewrites can refresh it.
fn fold_from_events(header: &WorldLogHeader, events: &[WorldEvent]) -> u64 {
    let mut certs: BTreeSet<&str> = BTreeSet::new();
    let mut crl_len = 0usize;
    let mut whois_records = 0usize;
    let mut whois_domains: BTreeSet<&str> = BTreeSet::new();
    let mut adns_domains: BTreeSet<&str> = BTreeSet::new();
    for ev in events {
        match ev {
            WorldEvent::CertIssued { cert, .. } => {
                certs.insert(cert);
            }
            WorldEvent::CrlEntryAdded { .. } => crl_len += 1,
            WorldEvent::DomainRegistered { domain, .. }
            | WorldEvent::DomainReRegistered { domain, .. } => {
                whois_records += 1;
                whois_domains.insert(domain);
            }
            WorldEvent::DomainDropped { domain, .. }
            | WorldEvent::DelegationAdded { domain, .. }
            | WorldEvent::DelegationDropped { domain, .. } => {
                adns_domains.insert(domain);
            }
            WorldEvent::CertExpired { .. } | WorldEvent::CrlPublished { .. } => {}
        }
    }
    fold_fingerprint(
        certs.len(),
        header.ct_raw_entries as usize,
        header.ct_log_count as usize,
        crl_len,
        whois_records,
        whois_domains.len(),
        adns_domains.len(),
        [header.sim_window, header.adns_window, header.crl_window],
    )
}

fn is_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Shape checks for one parsed event; one message per violation.
fn check_event(ev: &WorldEvent, lineno: usize, out: &mut Vec<String>) {
    let mut bad = |msg: String| out.push(format!("line {lineno}: {msg}"));
    match ev {
        WorldEvent::CertIssued {
            cert,
            der,
            entry_count,
            ..
        } => {
            if cert.len() != 64 || !is_hex(cert) {
                bad(format!("cert {cert:?} is not 64 lowercase hex chars"));
            }
            if decode_hex(der).is_none() {
                bad("der is not well-formed hex".to_string());
            }
            if *entry_count == 0 {
                bad("entry_count is zero".to_string());
            }
        }
        WorldEvent::CertExpired { cert, .. } => {
            if cert.len() != 64 || !is_hex(cert) {
                bad(format!("cert {cert:?} is not 64 lowercase hex chars"));
            }
        }
        WorldEvent::CrlPublished {
            ca, attempted, ok, ..
        } => {
            if ca.is_empty() {
                bad("ca name is empty".to_string());
            }
            if ok > attempted {
                bad(format!("{ok} successes out of {attempted} attempts"));
            }
        }
        WorldEvent::CrlEntryAdded {
            authority_key_id,
            serial,
            reason,
            ..
        } => {
            if authority_key_id.len() != 40 || !is_hex(authority_key_id) {
                bad(format!(
                    "authority_key_id {authority_key_id:?} is not 40 lowercase hex chars"
                ));
            }
            if serial.len() != 32 || !is_hex(serial) {
                bad(format!("serial {serial:?} is not 32 lowercase hex chars"));
            }
            if RevocationReason::from_code(*reason).is_none() {
                bad(format!("unknown revocation reason code {reason}"));
            }
        }
        WorldEvent::DomainRegistered { domain, .. }
        | WorldEvent::DomainReRegistered { domain, .. }
        | WorldEvent::DomainDropped { domain, .. } => {
            if DomainName::parse(domain).is_err() {
                bad(format!("bad domain name {domain:?}"));
            }
        }
        WorldEvent::DelegationAdded {
            domain,
            ns,
            cname,
            a,
            ..
        }
        | WorldEvent::DelegationDropped {
            domain,
            ns,
            cname,
            a,
            ..
        } => {
            if DomainName::parse(domain).is_err() {
                bad(format!("bad domain name {domain:?}"));
            }
            for t in ns.iter().chain(cname) {
                if DomainName::parse(t).is_err() {
                    bad(format!("bad delegation target {t:?}"));
                }
            }
            for ip in a {
                if parse_ipv4(ip).is_none() {
                    bad(format!("bad address {ip:?}"));
                }
            }
            if ns.is_empty() && cname.is_empty() && a.is_empty() {
                bad("delegation event with an empty view (should be domain-dropped)".to_string());
            }
        }
    }
}

/// Full structural validation of a `stale-obs-worldlog` JSONL stream:
/// schema/version header, every line parses with well-formed hex and
/// days, events in canonical (monotone-day) order, CRL indices dense
/// and ascending, a trailer whose tally matches the lines, and a header
/// fingerprint that re-folds from the stream. Returns one message per
/// violation; empty means clean. Pure and panic-free on any input —
/// `stale-lint preflight` wraps it.
pub fn validate_worldlog_jsonl(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return vec!["empty file (expected a world-log header line)".to_string()];
    };
    let header = match serde_json::from_str::<Value>(first)
        .map_err(|e| format!("{e}"))
        .and_then(|v| WorldLogHeader::deserialize(&v).map_err(|e| format!("{e}")))
    {
        Ok(h) => h,
        Err(e) => return vec![format!("header line does not parse: {e}")],
    };
    if header.schema != WORLDLOG_SCHEMA {
        out.push(format!(
            "header schema {:?} (expected {WORLDLOG_SCHEMA:?})",
            header.schema
        ));
    }
    if header.version != WORLDLOG_VERSION {
        out.push(format!(
            "header version {} (expected {WORLDLOG_VERSION})",
            header.version
        ));
    }
    let mut events: Vec<WorldEvent> = Vec::new();
    let mut trailer: Option<WorldLogTally> = None;
    let mut next_crl_index = 0u64;
    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 2;
        if line.trim().is_empty() {
            continue;
        }
        if trailer.is_some() {
            out.push(format!("line {lineno}: content after the trailer"));
            continue;
        }
        let value: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                out.push(format!("line {lineno}: does not parse as JSON: {e}"));
                continue;
            }
        };
        if value.get("kind").is_none() {
            match WorldLogTally::deserialize(&value) {
                Ok(t) => trailer = Some(t),
                Err(e) => out.push(format!("line {lineno}: neither event nor trailer: {e}")),
            }
            continue;
        }
        let ev = match WorldEvent::deserialize(&value) {
            Ok(ev) => ev,
            Err(e) => {
                out.push(format!("line {lineno}: does not parse as an event: {e}"));
                continue;
            }
        };
        check_event(&ev, lineno, &mut out);
        if let WorldEvent::CrlEntryAdded { crl_index, .. } = &ev {
            if *crl_index != next_crl_index {
                out.push(format!(
                    "line {lineno}: crl_index {crl_index} where {next_crl_index} was expected"
                ));
            }
            next_crl_index = crl_index.saturating_add(1);
        }
        if let Some(prev) = events.last() {
            if prev.sort_key() > ev.sort_key() {
                out.push(format!("line {lineno}: events out of canonical order"));
            }
        }
        events.push(ev);
    }
    match &trailer {
        None => out.push("missing trailer line".to_string()),
        Some(t) => {
            if t.total != events.len() as u64 {
                out.push(format!(
                    "trailer declares {} event(s) but the file holds {}",
                    t.total,
                    events.len()
                ));
            }
            let log = WorldLog {
                header: header.clone(),
                events: events.clone(),
            };
            if *t != log.tally() {
                out.push("trailer tally does not match the event lines".to_string());
            }
        }
    }
    if header.events != events.len() {
        out.push(format!(
            "header declares {} event(s) but the file holds {}",
            header.events,
            events.len()
        ));
    }
    // Only check the fingerprint on an otherwise-clean stream: a
    // truncated or corrupted file already has a sharper diagnostic.
    if out.is_empty() {
        let folded = fold_from_events(&header, &events);
        if folded != header.fingerprint {
            out.push(format!(
                "header fingerprint {:#018x} does not re-fold from the events ({folded:#018x})",
                header.fingerprint
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::world::World;

    fn tiny_log() -> (WorldDatasets, WorldLog) {
        let data = World::run(ScenarioConfig::tiny());
        let log = WorldLog::from_datasets(&data);
        (data, log)
    }

    #[test]
    fn log_round_trips_through_jsonl() {
        let (_, log) = tiny_log();
        let jsonl = log.to_jsonl();
        let parsed = WorldLog::from_jsonl(&jsonl).expect("parses");
        assert_eq!(parsed, log);
        assert_eq!(parsed.to_jsonl(), jsonl, "canonical serialization");
    }

    #[test]
    fn reconstruction_preserves_the_fingerprint_and_summary() {
        let (data, log) = tiny_log();
        assert!(!log.events.is_empty());
        let rebuilt = log.to_datasets().expect("reconstructs");
        assert_eq!(rebuilt.fingerprint(), data.fingerprint());
        assert_eq!(rebuilt.summary(), data.summary());
        assert_eq!(rebuilt.crl.records(), data.crl.records());
        assert_eq!(rebuilt.crl_stats.per_ca, data.crl_stats.per_ca);
    }

    #[test]
    fn events_are_canonically_sorted_and_day_monotone() {
        let (_, log) = tiny_log();
        for pair in log.events.windows(2) {
            assert!(pair[0].sort_key() <= pair[1].sort_key());
        }
        let validation = validate_worldlog_jsonl(&log.to_jsonl());
        assert!(validation.is_empty(), "clean log: {validation:?}");
    }

    #[test]
    fn tally_counts_every_kind() {
        let (data, log) = tiny_log();
        let tally = log.tally();
        assert_eq!(tally.total, log.events.len() as u64);
        assert_eq!(tally.tally.len(), EVENT_KINDS.len());
        assert_eq!(
            tally.tally["cert-issued"],
            data.monitor.dedup_count() as u64
        );
        assert_eq!(tally.tally["crl-entry-added"], data.crl.len() as u64);
    }

    #[test]
    fn truncated_log_is_rejected() {
        let (_, log) = tiny_log();
        let jsonl = log.to_jsonl();
        let truncated: String = jsonl
            .lines()
            .take(jsonl.lines().count() - 1)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(WorldLog::from_jsonl(&truncated)
            .unwrap_err()
            .contains("missing trailer"));
        assert!(!validate_worldlog_jsonl(&truncated).is_empty());
    }

    #[test]
    fn corrupted_der_fails_reconstruction() {
        let (_, log) = tiny_log();
        let mut broken = log.clone();
        for ev in &mut broken.events {
            if let WorldEvent::CertIssued { der, .. } = ev {
                // Flip one hex digit in the DER body.
                let flipped = if der.as_bytes()[10] == b'0' { "1" } else { "0" };
                der.replace_range(10..11, flipped);
                break;
            }
        }
        assert!(broken.to_datasets().is_err());
    }

    #[test]
    fn reordered_events_fail_validation() {
        let (_, log) = tiny_log();
        let jsonl = log.to_jsonl();
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines.swap(1, 2);
        let swapped: String = lines.iter().map(|l| format!("{l}\n")).collect();
        assert!(validate_worldlog_jsonl(&swapped)
            .iter()
            .any(|m| m.contains("canonical order") || m.contains("crl_index")));
    }

    #[test]
    fn cap_rewrite_caps_every_validity_and_replays() {
        let (_, log) = tiny_log();
        let capped = log.rewrite_cap_days(90).expect("rewrites");
        assert_eq!(
            capped.tally().tally["cert-issued"],
            log.tally().tally["cert-issued"]
        );
        let rebuilt = capped.to_datasets().expect("capped log replays");
        for c in rebuilt.monitor.corpus_unfiltered() {
            assert!(c.certificate.tbs.validity.len() <= Duration::days(90));
        }
        let validation = validate_worldlog_jsonl(&capped.to_jsonl());
        assert!(validation.is_empty(), "capped log is clean: {validation:?}");
    }

    #[test]
    fn cap_rewrite_rejects_nonpositive_caps() {
        let (_, log) = tiny_log();
        assert!(log.rewrite_cap_days(0).is_err());
        assert!(log.rewrite_cap_days(-3).is_err());
    }
}
