//! Serialized world bundles: a [`WorldDatasets`] snapshot on disk.
//!
//! A bundle captures everything the measurement pipeline consumes —
//! certificates as DER, the CRL feed, per-domain WHOIS creation-date
//! histories and DNS change logs — plus the windows and the structural
//! fingerprint, in a stable JSON form. `stale-lint preflight` validates a
//! bundle *before* any detector runs: the fingerprint is recomputable
//! from the payload ([`WorldBundle::recompute_fingerprint`]), so a
//! truncated or bit-flipped file fails with a named diagnostic instead
//! of a panic or a silently-wrong report.

use ct::monitor::DedupedCert;
use dns::scan::DnsView;
use serde::{Deserialize, Serialize};
use stale_types::{Date, DateInterval, DomainName};

use crate::datasets::{fold_fingerprint, WorldDatasets};

pub use ca::scraper::RevocationRecord;

/// One certificate in a bundle: the DER body plus its CT observability.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleCert {
    /// Hex-encoded DER of the full certificate.
    pub der: String,
    /// First CT observation day.
    pub first_seen: Date,
    /// Raw CT entries deduplicated into this certificate.
    pub entry_count: usize,
}

/// A complete serialized world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldBundle {
    /// Schema version; see [`WorldBundle::VERSION`].
    pub version: u32,
    /// Structural fingerprint of the datasets (same fold the engine's
    /// checkpoints use).
    pub fingerprint: u64,
    /// Simulated window.
    pub sim_window: DateInterval,
    /// aDNS scan window.
    pub adns_window: DateInterval,
    /// CRL collection window.
    pub crl_window: DateInterval,
    /// Raw CT log entries before dedup.
    pub ct_raw_entries: usize,
    /// Number of CT logs.
    pub ct_log_count: usize,
    /// Deduplicated CT corpus.
    pub certs: Vec<BundleCert>,
    /// CRL revocation records.
    pub crl: Vec<RevocationRecord>,
    /// Per-domain WHOIS creation-date histories (chronological).
    pub whois: Vec<(DomainName, Vec<Date>)>,
    /// Per-domain DNS change logs (chronological).
    pub dns: Vec<(DomainName, Vec<(Date, DnsView)>)>,
}

impl WorldBundle {
    /// Current bundle schema version.
    pub const VERSION: u32 = 1;

    /// Snapshot a dataset bundle. Certificates, domains and logs are
    /// emitted in a deterministic order so identical worlds serialize to
    /// identical bytes.
    pub fn from_datasets(data: &WorldDatasets) -> Self {
        let mut certs: Vec<BundleCert> = data
            .monitor
            .corpus_unfiltered()
            .map(|c: &DedupedCert| BundleCert {
                der: encode_hex(&c.certificate.encode()),
                first_seen: c.first_seen,
                entry_count: c.entry_count,
            })
            .collect();
        certs.sort_by(|a, b| (a.first_seen, &a.der).cmp(&(b.first_seen, &b.der)));

        let mut whois_domains: Vec<&DomainName> =
            data.whois.observations().map(|(d, _)| d).collect();
        whois_domains.sort();
        whois_domains.dedup();
        let whois = whois_domains
            .into_iter()
            .map(|d| (d.clone(), data.whois.creation_dates(d).to_vec()))
            .collect();

        let mut dns_domains: Vec<&DomainName> = data.adns.domains().collect();
        dns_domains.sort();
        let dns = dns_domains
            .into_iter()
            .map(|d| (d.clone(), data.adns.change_log(d).to_vec()))
            .collect();

        Self {
            version: Self::VERSION,
            fingerprint: data.fingerprint(),
            sim_window: data.sim_window,
            adns_window: data.adns_window,
            crl_window: data.crl_window,
            ct_raw_entries: data.ct_raw_entries,
            ct_log_count: data.ct_log_count,
            certs,
            crl: data.crl.records().to_vec(),
            whois,
            dns,
        }
    }

    /// Recompute the structural fingerprint from the payload — the same
    /// fold [`WorldDatasets::fingerprint`] performs over the live
    /// datasets. A mismatch against the recorded `fingerprint` field
    /// means the payload was altered after serialization.
    pub fn recompute_fingerprint(&self) -> u64 {
        fold_fingerprint(
            self.certs.len(),
            self.ct_raw_entries,
            self.ct_log_count,
            self.crl.len(),
            self.whois.iter().map(|(_, dates)| dates.len()).sum(),
            self.whois.len(),
            self.dns.len(),
            [self.sim_window, self.adns_window, self.crl_window],
        )
    }
}

/// Lowercase hex encoding.
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decode lowercase/uppercase hex; `None` on odd length or a non-hex
/// digit.
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        let hex = encode_hex(&data);
        assert_eq!(hex, "00017f80ff");
        assert_eq!(decode_hex(&hex).unwrap(), data);
        assert_eq!(decode_hex("0"), None);
        assert_eq!(decode_hex("zz"), None);
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }
}
