//! Per-day delta feed over a completed dataset bundle.
//!
//! The paper's detectors consume *daily* feeds — CT monitors tail log
//! entries, CRLs are downloaded every day (§4.1), WHOIS is snapshotted
//! (§4.2) and aDNS scans run daily (§4.3). [`DayFeed`] recovers that shape
//! from a [`WorldDatasets`] bundle: every item is assigned to the day it
//! became observable, and the engine's incremental driver pulls one
//! [`DayDelta`] per day (or per day-batch) instead of re-scanning the full
//! ten-year corpus.
//!
//! Observability dates:
//! * CT: `DedupedCert::first_seen` (earliest log entry timestamp);
//! * CRL: `RevocationRecord::observed` (first scrape day that served it);
//! * WHOIS: the registry creation date of each `(domain, creation)` pair
//!   (the day the snapshot first shows the new date);
//! * DNS: the date of each change-log entry (the scan that saw it).
//!
//! Ingesting every delta of the feed reconstructs exactly the batch
//! detectors' inputs — the equivalence the incremental engine's tests
//! assert byte-for-byte.

use crate::datasets::WorldDatasets;
use ca::scraper::RevocationRecord;
use ct::monitor::DedupedCert;
use dns::scan::DnsView;
use stale_types::{Date, DomainName};
use std::collections::BTreeMap;

/// Everything that became observable in one day range (inclusive).
///
/// Item order within a delta is deterministic: date-major, then the
/// underlying dataset's iteration order (cert-id order for CT, CRL-record
/// order, domain order for WHOIS/DNS). Multi-day deltas are therefore
/// exactly the concatenation of their single-day deltas.
#[derive(Default)]
pub struct DayDelta<'w> {
    /// First day covered (inclusive).
    pub from: Date,
    /// Last day covered (inclusive).
    pub to: Date,
    /// Certificates first seen in CT during the range.
    pub certs: Vec<&'w DedupedCert>,
    /// CRL records first observed during the range, with their global
    /// index in `CrlDataset::records()`.
    pub crl: Vec<(usize, &'w RevocationRecord)>,
    /// WHOIS `(domain, creation)` observations dated in the range,
    /// chronological per domain.
    pub whois: Vec<(&'w DomainName, Date)>,
    /// DNS change-log entries dated in the range, chronological per
    /// domain.
    pub dns: Vec<(Date, &'w DomainName, &'w DnsView)>,
}

impl DayDelta<'_> {
    /// Total items carried by this delta.
    pub fn items(&self) -> usize {
        self.certs.len() + self.crl.len() + self.whois.len() + self.dns.len()
    }
}

/// A date-indexed view of the four datasets. Construction is one linear
/// pass over the bundle; each [`Self::delta`] is a range query.
pub struct DayFeed<'w> {
    certs: BTreeMap<Date, Vec<&'w DedupedCert>>,
    crl: BTreeMap<Date, Vec<(usize, &'w RevocationRecord)>>,
    whois: BTreeMap<Date, Vec<(&'w DomainName, Date)>>,
    dns: BTreeMap<Date, Vec<(&'w DomainName, &'w DnsView)>>,
    start: Date,
    end: Date,
}

impl<'w> DayFeed<'w> {
    /// Index `data` by observability day.
    pub fn new(data: &'w WorldDatasets) -> Self {
        let mut certs: BTreeMap<Date, Vec<&DedupedCert>> = BTreeMap::new();
        for cert in data.monitor.corpus_unfiltered() {
            certs.entry(cert.first_seen).or_default().push(cert);
        }
        let mut crl: BTreeMap<Date, Vec<(usize, &RevocationRecord)>> = BTreeMap::new();
        for (index, rec) in data.crl.records().iter().enumerate() {
            crl.entry(rec.observed).or_default().push((index, rec));
        }
        let mut whois: BTreeMap<Date, Vec<(&DomainName, Date)>> = BTreeMap::new();
        for (domain, creation) in data.whois.observations() {
            whois.entry(creation).or_default().push((domain, creation));
        }
        let mut dns: BTreeMap<Date, Vec<(&DomainName, &DnsView)>> = BTreeMap::new();
        for domain in data.adns.domains() {
            for (date, view) in data.adns.change_log(domain) {
                dns.entry(*date).or_default().push((domain, view));
            }
        }
        let first = [
            certs.keys().next(),
            crl.keys().next(),
            whois.keys().next(),
            dns.keys().next(),
        ]
        .into_iter()
        .flatten()
        .copied()
        .min();
        let last = [
            certs.keys().next_back(),
            crl.keys().next_back(),
            whois.keys().next_back(),
            dns.keys().next_back(),
        ]
        .into_iter()
        .flatten()
        .copied()
        .max();
        // An empty world still yields a well-formed (empty) feed.
        let start = first.unwrap_or(data.sim_window.start);
        let end = last
            .unwrap_or(data.sim_window.start)
            .max(data.sim_window.end.pred());
        DayFeed {
            certs,
            crl,
            whois,
            dns,
            start,
            end,
        }
    }

    /// First day with any observable item (or the simulation start).
    pub fn start(&self) -> Date {
        self.start
    }

    /// Last day of the feed (at least the last simulated day).
    pub fn end(&self) -> Date {
        self.end
    }

    /// Number of days the feed spans.
    pub fn day_count(&self) -> usize {
        ((self.end - self.start).num_days() + 1).max(0) as usize
    }

    /// Everything observable in `[from, to]`, date-major.
    pub fn delta(&self, from: Date, to: Date) -> DayDelta<'w> {
        let mut delta = DayDelta {
            from,
            to,
            ..Default::default()
        };
        for items in self.certs.range(from..=to).map(|(_, v)| v) {
            delta.certs.extend(items.iter().copied());
        }
        for items in self.crl.range(from..=to).map(|(_, v)| v) {
            delta.crl.extend(items.iter().copied());
        }
        for items in self.whois.range(from..=to).map(|(_, v)| v) {
            delta.whois.extend(items.iter().copied());
        }
        for (date, items) in self.dns.range(from..=to) {
            delta.dns.extend(items.iter().map(|(d, v)| (*date, *d, *v)));
        }
        delta
    }

    /// Consecutive deltas of `day_batch` days covering `[self.start, through]`.
    pub fn batches(&self, day_batch: usize, through: Date) -> Vec<(Date, Date)> {
        let step = day_batch.max(1) as i64;
        let mut out = Vec::new();
        let mut from = self.start;
        let through = through.min(self.end);
        while from <= through {
            let to = (from + stale_types::Duration::days(step - 1)).min(through);
            out.push((from, to));
            from = to.succ();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::world::World;

    #[test]
    fn feed_covers_every_dataset_item_exactly_once() {
        let data = World::run(ScenarioConfig::tiny());
        let feed = DayFeed::new(&data);
        let full = feed.delta(feed.start(), feed.end());
        assert_eq!(full.certs.len(), data.monitor.dedup_count());
        assert_eq!(full.crl.len(), data.crl.records().len());
        assert_eq!(full.whois.len(), data.whois.observations().count());
        assert_eq!(full.dns.len(), data.adns.change_count());
        // Indices cover 0..len uniquely.
        let mut idx: Vec<usize> = full.crl.iter().map(|(i, _)| *i).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), data.crl.records().len());
    }

    #[test]
    fn batches_tile_the_feed_without_overlap() {
        let data = World::run(ScenarioConfig::tiny());
        let feed = DayFeed::new(&data);
        for width in [1usize, 7, 30] {
            let batches = feed.batches(width, feed.end());
            assert_eq!(batches.first().map(|b| b.0), Some(feed.start()));
            assert_eq!(batches.last().map(|b| b.1), Some(feed.end()));
            for pair in batches.windows(2) {
                assert_eq!(pair[0].1.succ(), pair[1].0, "gap or overlap");
            }
            let total: usize = batches
                .iter()
                .map(|(f, t)| feed.delta(*f, *t).items())
                .sum();
            assert_eq!(total, feed.delta(feed.start(), feed.end()).items());
        }
    }

    #[test]
    fn per_domain_streams_are_chronological() {
        let data = World::run(ScenarioConfig::tiny());
        let feed = DayFeed::new(&data);
        let mut last_whois: std::collections::HashMap<&DomainName, Date> = Default::default();
        let mut last_dns: std::collections::HashMap<&DomainName, Date> = Default::default();
        for (from, to) in feed.batches(7, feed.end()) {
            let delta = feed.delta(from, to);
            for (domain, creation) in &delta.whois {
                if let Some(prev) = last_whois.insert(domain, *creation) {
                    assert!(prev < *creation, "whois out of order for {domain}");
                }
            }
            for (date, domain, _) in &delta.dns {
                if let Some(prev) = last_dns.insert(domain, *date) {
                    assert!(prev < *date, "dns out of order for {domain}");
                }
            }
        }
    }
}
