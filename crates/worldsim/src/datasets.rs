//! The simulator's outputs: the Table 3 dataset bundle plus ground truth.

use ca::scraper::{CrlDataset, ScrapeStats};
use cdn::provider::ProviderConfig;
use ct::monitor::CtMonitor;
use dns::scan::DnsHistory;
use registry::whois::WhoisDataset;
use stale_types::{Date, DateInterval, DomainName, KeyId, SerialNumber};

use crate::popularity::PopularityArchive;
use crate::reputation::ReputationFeed;

/// One recorded key compromise (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompromiseEvent {
    /// Issuing CA key.
    pub ca_key: KeyId,
    /// Compromised certificate serial.
    pub serial: SerialNumber,
    /// Day the key leaked.
    pub date: Date,
}

/// What actually happened in the world — the detectors are validated
/// against this, and the limitations of each detector (transfers without
/// re-registration, non-Cloudflare providers) show up as the gap between
/// ground truth and detection.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// `(domain, change day)` for every re-registration by a new owner.
    pub registrant_changes: Vec<(DomainName, Date)>,
    /// Intra-registry transfers — ownership changes the creation-date
    /// method cannot see (§4.4).
    pub invisible_transfers: Vec<(DomainName, Date)>,
    /// `(domain, departure day)` for every managed-TLS departure.
    pub cdn_departures: Vec<(DomainName, Date)>,
    /// Individual key compromises.
    pub compromises: Vec<CompromiseEvent>,
    /// Serials revoked in the scripted web-host breach.
    pub breach_serials: Vec<SerialNumber>,
    /// Day of the scripted breach, if it fired.
    pub breach_date: Option<Date>,
}

/// Everything the measurement pipeline consumes.
pub struct WorldDatasets {
    /// Deduplicated CT corpus (plays the role of the 5B-cert CT dataset).
    pub monitor: CtMonitor,
    /// The CRL revocation feed (plays the role of the 31M-CRL download).
    pub crl: CrlDataset,
    /// CRL scrape coverage (Table 7).
    pub crl_stats: ScrapeStats,
    /// Registry creation dates (plays the role of the Verisign WHOIS bulk
    /// feed).
    pub whois: WhoisDataset,
    /// Daily DNS scan history (plays the role of the aDNS feed).
    pub adns: DnsHistory,
    /// Popularity samples (Alexa Top-1M analogue).
    pub popularity: PopularityArchive,
    /// Reputation feed (VirusTotal analogue).
    pub reputation: ReputationFeed,
    /// What really happened.
    pub ground_truth: GroundTruth,
    /// The CDN's delegation/marker configuration — what §4.3's detector
    /// is allowed to know about Cloudflare.
    pub cdn_config: ProviderConfig,
    /// Simulated window.
    pub sim_window: DateInterval,
    /// aDNS scan window (§4.3).
    pub adns_window: DateInterval,
    /// CRL collection window (§4.1).
    pub crl_window: DateInterval,
    /// Raw CT log entries before dedup.
    pub ct_raw_entries: usize,
    /// Number of CT logs (shards).
    pub ct_log_count: usize,
}

/// Table 3 shaped dataset summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    /// Dataset name, date range, size description — one row per dataset.
    pub rows: Vec<(String, String, String)>,
}

/// Fold the structural fingerprint from its raw components — FNV-1a over
/// dataset sizes and window bounds. Shared between
/// [`WorldDatasets::fingerprint`] (live datasets) and
/// [`crate::bundle::WorldBundle::recompute_fingerprint`] (serialized
/// payload), so preflight can verify a bundle without rebuilding the
/// world.
#[allow(clippy::too_many_arguments)]
pub fn fold_fingerprint(
    dedup_count: usize,
    ct_raw_entries: usize,
    ct_log_count: usize,
    crl_len: usize,
    whois_records: usize,
    whois_domains: usize,
    adns_domains: usize,
    windows: [DateInterval; 3],
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(dedup_count as u64);
    mix(ct_raw_entries as u64);
    mix(ct_log_count as u64);
    mix(crl_len as u64);
    mix(whois_records as u64);
    mix(whois_domains as u64);
    mix(adns_domains as u64);
    for window in windows {
        for date in [window.start, window.end] {
            let (y, m, d) = date.ymd();
            mix(((y as u64) << 16) | ((m as u64) << 8) | d as u64);
        }
    }
    h
}

impl WorldDatasets {
    /// A cheap structural fingerprint of the dataset bundle, used by the
    /// engine's checkpoint files to refuse resuming against a different
    /// world. Folds dataset sizes and window bounds through FNV-1a; it is
    /// not cryptographic and does not hash certificate bodies.
    pub fn fingerprint(&self) -> u64 {
        fold_fingerprint(
            self.monitor.dedup_count(),
            self.ct_raw_entries,
            self.ct_log_count,
            self.crl.len(),
            self.whois.record_count(),
            self.whois.domain_count(),
            self.adns.domain_count(),
            [self.sim_window, self.adns_window, self.crl_window],
        )
    }

    /// Build the Table 3 summary.
    pub fn summary(&self) -> DatasetSummary {
        let mut rows = Vec::new();
        rows.push((
            "CT".to_string(),
            format!("{} – {}", self.sim_window.start, self.sim_window.end),
            format!(
                "{} certs (deduplicated from {} entries in {} logs)",
                self.monitor.dedup_count(),
                self.ct_raw_entries,
                self.ct_log_count
            ),
        ));
        rows.push((
            "CRL".to_string(),
            format!("{} – {}", self.crl_window.start, self.crl_window.end),
            format!(
                "{} revocations from {} CAs",
                self.crl.len(),
                self.crl_stats.per_ca.len()
            ),
        ));
        rows.push((
            "WHOIS".to_string(),
            self.whois
                .window_start
                .zip(self.whois.window_end)
                .map(|(a, b)| format!("{a} – {b}"))
                .unwrap_or_else(|| "(empty)".to_string()),
            format!(
                "{} records ({} domains)",
                self.whois.record_count(),
                self.whois.domain_count()
            ),
        ));
        rows.push((
            "aDNS".to_string(),
            format!("{} – {}", self.adns_window.start, self.adns_window.end),
            format!(
                "{} domains scanned daily (~{} records/day)",
                self.adns.domain_count(),
                self.adns.record_count_at(self.adns_window.start)
            ),
        ));
        DatasetSummary { rows }
    }
}
