//! The shared immutable world arena: one flat, indexable certificate
//! array over a [`WorldDatasets`] bundle.
//!
//! The sharded engine used to hand each shard worker owned clones of its
//! slice of the world. The arena replaces that with a single shared
//! borrow: the corpus is flattened once, in cert-id order, into a vector
//! of references, and every downstream consumer (partition views, shard
//! workers, checkpoints) addresses certificates by their `u32` arena
//! index. Shard "inputs" become index lists — zero-copy views — and the
//! world itself is never duplicated.

use crate::datasets::WorldDatasets;
use ct::monitor::DedupedCert;

/// A flat, immutable view over one world's certificate corpus.
///
/// Indices are stable for the lifetime of the borrow: position `i` is the
/// `i`-th certificate of `corpus_unfiltered()` in cert-id order. All shard
/// views and view-based checkpoints are expressed in these indices.
pub struct WorldArena<'w> {
    /// The underlying dataset bundle (CRL, WHOIS, DNS, windows).
    pub data: &'w WorldDatasets,
    certs: Vec<&'w DedupedCert>,
}

impl<'w> WorldArena<'w> {
    /// Flatten `data`'s corpus into an indexable arena.
    pub fn new(data: &'w WorldDatasets) -> Self {
        WorldArena {
            data,
            certs: data.monitor.corpus_unfiltered().collect(),
        }
    }

    /// Number of certificates in the arena.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// The certificate at arena index `i`.
    pub fn cert(&self, i: u32) -> &'w DedupedCert {
        self.certs[i as usize]
    }

    /// All certificates, in arena (cert-id) order.
    pub fn certs(&self) -> &[&'w DedupedCert] {
        &self.certs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::world::World;

    #[test]
    fn arena_matches_corpus_order() {
        let data = World::run(ScenarioConfig::tiny());
        let arena = WorldArena::new(&data);
        assert_eq!(arena.len(), data.monitor.corpus_unfiltered().count());
        for (i, cert) in data.monitor.corpus_unfiltered().enumerate() {
            assert_eq!(arena.cert(i as u32).cert_id, cert.cert_id);
        }
    }
}
