//! The world simulator: a discrete-event model of the 2013–2023 web PKI
//! that generates the four datasets of the paper's Table 3.
//!
//! The paper measures real CT logs, CRLs, WHOIS and active-DNS feeds. Our
//! reproduction substitutes a calibrated simulation (DESIGN.md §2): domains
//! are born, adopt HTTPS, pick hosting (self-managed, Cloudflare-like CDN,
//! AutoSSL web host), renew certificates, lapse, get re-registered by new
//! owners, migrate off their CDN, and occasionally leak keys — including
//! scripted historical events (Let's Encrypt's launch, the COMODO
//! cruise-liner era and Cloudflare's own-CA transition, the September 2020
//! 398-day limit, the GoDaddy managed-WordPress breach of November 2021,
//! Let's Encrypt's July 2022 key-compromise reporting start).
//!
//! Outputs ([`datasets::WorldDatasets`]):
//! * a CT corpus ([`ct::CtMonitor`]) fed through real logs,
//! * a CRL dataset scraped daily from every CA with failure rates,
//! * a WHOIS creation-date feed,
//! * an interval-compressed daily DNS scan,
//! * popularity and reputation side-channels (Tables 5–6),
//! * and the ground-truth event log the detectors are validated against.

pub mod arena;
pub mod bundle;
pub mod config;
pub mod datasets;
pub mod dayfeed;
pub mod distributions;
pub mod popularity;
pub mod reputation;
pub mod world;
pub mod worldlog;

pub use arena::WorldArena;
pub use bundle::WorldBundle;
pub use config::{EraTable, ScenarioConfig};
pub use datasets::{DatasetSummary, GroundTruth, WorldDatasets};
pub use dayfeed::{DayDelta, DayFeed};
pub use popularity::PopularityArchive;
pub use reputation::{DomainReputation, ReputationFeed};
pub use world::World;
pub use worldlog::{WorldEvent, WorldLog};
