//! Domain reputation feed (the VirusTotal analogue for Table 5).
//!
//! Table 5 queries VirusTotal for 100K randomly sampled registrant-change
//! domains, keeping detections flagged by ≥5 vendors, splitting them into
//! malware-file associations (with AVClass2 family labels) and malicious
//! URL verdicts (malware / phishing / malicious), and correlating the
//! first-submission date with the staleness window. This module is the
//! synthetic feed those queries run against.

use serde::{Deserialize, Serialize};
use stale_types::{Date, DomainName};
use std::collections::BTreeMap;

/// Table 5's detection threshold: at least five vendors must flag.
pub const VENDOR_THRESHOLD: u8 = 5;

/// Malware family labels (the AVClass2-style vocabulary the paper tallies,
/// Table 5 left column).
pub const MALWARE_FAMILIES: &[&str] = &[
    "grayware",
    "backdoor",
    "downloader",
    "virus",
    "spyware",
    "ransomware",
];

/// URL verdict labels (Table 5 right column).
pub const URL_LABELS: &[&str] = &["phishing", "malicious", "malware"];

/// One domain's reputation record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainReputation {
    /// Malware families associated via file submissions ("Unknown" when
    /// the family could not be resolved, as AVClass2 sometimes reports).
    pub malware_families: Vec<String>,
    /// URL verdict labels.
    pub url_labels: Vec<String>,
    /// Minimum first-submission date across associated artifacts.
    pub first_submission: Date,
    /// How many vendors flagged the domain.
    pub vendor_count: u8,
}

impl DomainReputation {
    /// Whether the record clears the ≥5-vendor bar.
    pub fn above_threshold(&self) -> bool {
        self.vendor_count >= VENDOR_THRESHOLD
    }

    /// Whether any malware-file association exists.
    pub fn has_malware(&self) -> bool {
        !self.malware_families.is_empty()
    }

    /// Whether any URL verdict exists.
    pub fn has_url_verdict(&self) -> bool {
        !self.url_labels.is_empty()
    }
}

/// The queryable feed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReputationFeed {
    records: BTreeMap<DomainName, DomainReputation>,
}

impl ReputationFeed {
    /// Empty feed.
    pub fn new() -> Self {
        ReputationFeed::default()
    }

    /// Insert a record.
    pub fn insert(&mut self, domain: DomainName, reputation: DomainReputation) {
        self.records.insert(domain, reputation);
    }

    /// Query one domain (the per-domain VT lookup).
    pub fn query(&self, domain: &DomainName) -> Option<&DomainReputation> {
        self.records.get(domain)
    }

    /// Number of records in the feed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all records.
    pub fn iter(&self) -> impl Iterator<Item = (&DomainName, &DomainReputation)> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    #[test]
    fn threshold_logic() {
        let hot = DomainReputation {
            malware_families: vec!["backdoor".into()],
            url_labels: vec![],
            first_submission: Date::parse("2020-05-01").unwrap(),
            vendor_count: 7,
        };
        assert!(hot.above_threshold());
        assert!(hot.has_malware());
        assert!(!hot.has_url_verdict());
        let cold = DomainReputation {
            vendor_count: 3,
            ..hot.clone()
        };
        assert!(!cold.above_threshold());
    }

    #[test]
    fn feed_query() {
        let mut feed = ReputationFeed::new();
        assert!(feed.is_empty());
        feed.insert(
            dn("evil.com"),
            DomainReputation {
                malware_families: vec![],
                url_labels: vec!["phishing".into()],
                first_submission: Date::parse("2019-01-01").unwrap(),
                vendor_count: 9,
            },
        );
        assert_eq!(feed.len(), 1);
        assert!(feed.query(&dn("evil.com")).unwrap().has_url_verdict());
        assert!(feed.query(&dn("good.com")).is_none());
    }
}
