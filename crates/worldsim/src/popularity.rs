//! Popularity ranking archive (the Alexa Top-1M analogue for Table 6).
//!
//! The paper takes a biannual sample of the Alexa Top 1M from 2014–2022
//! and, for each domain seen in a stale certificate, records the best
//! (lowest) rank it ever held. The archive here stores those samples;
//! each sample lists the e2LDs that made the cut on that day with their
//! rank.

use serde::{Deserialize, Serialize};
use stale_types::{Date, DomainName};
use std::collections::HashMap;

/// One biannual ranking sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankSample {
    /// Sample day.
    pub date: Date,
    /// e2LD → rank (1 = most popular). Only ranks ≤ the list size appear.
    pub ranks: HashMap<DomainName, u32>,
}

/// The longitudinal archive of samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopularityArchive {
    /// Samples in chronological order.
    pub samples: Vec<RankSample>,
}

impl PopularityArchive {
    /// Empty archive.
    pub fn new() -> Self {
        PopularityArchive::default()
    }

    /// Append a sample (must be chronologically after the previous one).
    pub fn add_sample(&mut self, sample: RankSample) {
        if let Some(last) = self.samples.last() {
            assert!(last.date < sample.date, "samples must be chronological");
        }
        self.samples.push(sample);
    }

    /// The best (lowest) rank `domain` ever held across samples.
    pub fn best_rank(&self, domain: &DomainName) -> Option<u32> {
        self.samples
            .iter()
            .filter_map(|s| s.ranks.get(domain).copied())
            .min()
    }

    /// Number of samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// The biannual sample dates covering `[start, end]`: January 1 and
    /// July 1 of each year.
    pub fn biannual_dates(start_year: i32, end_year: i32) -> Vec<Date> {
        let mut dates = Vec::new();
        for year in start_year..=end_year {
            dates.push(Date::from_ymd(year, 1, 1).expect("jan"));
            dates.push(Date::from_ymd(year, 7, 1).expect("jul"));
        }
        dates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stale_types::domain::dn;

    #[test]
    fn best_rank_across_samples() {
        let mut archive = PopularityArchive::new();
        let mut r1 = HashMap::new();
        r1.insert(dn("foo.com"), 5000u32);
        archive.add_sample(RankSample {
            date: Date::parse("2014-01-01").unwrap(),
            ranks: r1,
        });
        let mut r2 = HashMap::new();
        r2.insert(dn("foo.com"), 800u32);
        r2.insert(dn("bar.com"), 100_000u32);
        archive.add_sample(RankSample {
            date: Date::parse("2014-07-01").unwrap(),
            ranks: r2,
        });
        assert_eq!(archive.best_rank(&dn("foo.com")), Some(800));
        assert_eq!(archive.best_rank(&dn("bar.com")), Some(100_000));
        assert_eq!(archive.best_rank(&dn("ghost.com")), None);
        assert_eq!(archive.sample_count(), 2);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn out_of_order_sample_panics() {
        let mut archive = PopularityArchive::new();
        archive.add_sample(RankSample {
            date: Date::parse("2015-01-01").unwrap(),
            ranks: HashMap::new(),
        });
        archive.add_sample(RankSample {
            date: Date::parse("2014-01-01").unwrap(),
            ranks: HashMap::new(),
        });
    }

    #[test]
    fn biannual_dates_cover_years() {
        let dates = PopularityArchive::biannual_dates(2014, 2022);
        assert_eq!(dates.len(), 18);
        assert_eq!(dates[0], Date::parse("2014-01-01").unwrap());
        assert_eq!(dates[17], Date::parse("2022-07-01").unwrap());
    }
}
