//! HTTP-plane robustness: a hostile or broken HTTP peer can hurt only
//! itself.
//!
//! One daemon serves every scenario here. Malformed request lines,
//! oversized request lines and header blocks, unsupported methods,
//! unknown routes, and mid-response disconnects must never panic the
//! daemon or corrupt its state — after all the abuse, the HTTP table
//! bodies are still byte-identical to the frame-protocol answers they
//! matched before it.

use stale_served::{Client, Daemon, DaemonConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use worldsim::ScenarioConfig;

fn start_daemon() -> (Daemon, String, SocketAddr) {
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.http = Some("127.0.0.1:0".to_string());
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let addr = daemon.addr().to_string();
    let http = daemon.http_addr().expect("http bound");
    (daemon, addr, http)
}

fn ok(client: &mut Client, line: &str) -> String {
    client
        .request(line)
        .expect("transport")
        .unwrap_or_else(|e| panic!("{line:?} should succeed, got err {e:?}"))
}

/// Send raw bytes to the HTTP listener and return the full response
/// text (empty when the daemon just closed the connection).
fn raw_http(http: SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(http).expect("http connect");
    stream.write_all(request).expect("send");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    String::from_utf8_lossy(&raw).into_owned()
}

/// Status code of a raw response capture (0 when the connection was
/// closed without a response).
fn status_code(response: &str) -> u16 {
    response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or(0)
}

#[test]
fn http_plane_survives_malformed_requests() {
    let (_daemon, addr, http) = start_daemon();
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(ok(&mut client, "ping"), "pong");

    // Ingest a few days so answers cover real state, and pin the bytes
    // the plane must keep returning.
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    let t4_before = ok(&mut client, "table4");
    let http_t4 = raw_http(http, b"GET /tables/table4 HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&http_t4), 200, "{http_t4}");
    let body_before = http_t4.split_once("\r\n\r\n").expect("body").1.to_string();
    assert_eq!(body_before, t4_before);

    // 1. Garbage request line: 400, connection survives long enough to
    //    deliver the error.
    let resp = raw_http(http, b"\xff\xfe garbage\r\n\r\n");
    assert_eq!(status_code(&resp), 400, "{resp}");

    // 2. Missing HTTP version (two words only): 400.
    let resp = raw_http(http, b"GET /healthz\r\n\r\n");
    assert_eq!(status_code(&resp), 400, "{resp}");

    // 3. Wrong protocol token: 400.
    let resp = raw_http(http, b"GET /healthz GOPHER/1.0\r\n\r\n");
    assert_eq!(status_code(&resp), 400, "{resp}");

    // 4. Unsupported methods: 405 with an Allow header; the daemon's
    //    HTTP plane is read-only by design.
    for method in ["POST", "PUT", "DELETE", "HEAD"] {
        let resp = raw_http(
            http,
            format!("{method} /healthz HTTP/1.1\r\n\r\n").as_bytes(),
        );
        assert_eq!(status_code(&resp), 405, "{method}: {resp}");
        assert!(resp.contains("Allow: GET"), "{method}: {resp}");
    }

    // 5. Request line beyond the 4 KiB bound: 414 without reading the
    //    rest of it.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8 * 1024));
    let resp = raw_http(http, long.as_bytes());
    assert_eq!(status_code(&resp), 414, "{resp}");

    // 6. Header block beyond the 16 KiB bound: 431.
    let mut fat = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..10 {
        fat.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "b".repeat(2 * 1024)).as_bytes());
    }
    fat.extend_from_slice(b"\r\n");
    let resp = raw_http(http, &fat);
    assert_eq!(status_code(&resp), 431, "{resp}");

    // 7. Unknown route: 404. Query strings are rejected everywhere but
    //    /status: 400.
    let resp = raw_http(http, b"GET /frobnicate HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 404, "{resp}");
    let resp = raw_http(http, b"GET /status?frobnicate=1 HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 400, "{resp}");
    let resp = raw_http(http, b"GET /metrics?x=1 HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 400, "{resp}");

    // 8. Mid-response disconnect: ask for a large body, read one byte,
    //    vanish.
    {
        let mut stream = TcpStream::connect(http).expect("http connect");
        stream
            .write_all(b"GET /tables/table4 HTTP/1.1\r\n\r\n")
            .expect("send");
        let mut one = [0u8; 1];
        stream.read_exact(&mut one).expect("first byte");
        drop(stream);
    }

    // 9. Silent peer: connect and leave without sending a byte.
    {
        let stream = TcpStream::connect(http).expect("http connect");
        drop(stream);
    }

    // After all of it: same bytes on both planes, daemon still alive.
    let http_t4 = raw_http(http, b"GET /tables/table4 HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&http_t4), 200, "{http_t4}");
    assert_eq!(http_t4.split_once("\r\n\r\n").expect("body").1, body_before);
    let mut fresh = Client::connect(&addr).expect("connect");
    assert_eq!(ok(&mut fresh, "ping"), "pong");
    assert_eq!(ok(&mut fresh, "table4"), t4_before);
    let health = raw_http(http, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&health), 200, "{health}");
}

#[test]
fn readyz_reports_syncing_under_consistency_delay() {
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 1;
    cfg.delay_days = 3;
    cfg.http = Some("127.0.0.1:0".to_string());
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let http = daemon.http_addr().expect("http bound");
    let mut client = Client::connect(daemon.addr()).expect("connect");

    // Nothing fed yet: the daemon is ready (it is serving its empty
    // state, not catching up).
    let resp = raw_http(http, b"GET /readyz HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 200, "{resp}");

    // Fed days held behind the delay: not ready until they apply.
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    let resp = raw_http(http, b"GET /readyz HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 200, "{resp}");
    assert!(resp.contains("nothing visible yet"), "{resp}");

    // Health never depends on ingest progress.
    let resp = raw_http(http, b"GET /healthz HTTP/1.1\r\n\r\n");
    assert_eq!(status_code(&resp), 200, "{resp}");
}
