//! Protocol robustness: a hostile or broken peer can hurt only itself.
//!
//! One daemon serves every scenario here. Malformed frames, oversized
//! length prefixes, truncated payloads, byte-at-a-time writes, and
//! mid-response disconnects must never panic the daemon or corrupt its
//! state — after all the abuse, the same queries return the same bytes
//! they returned before it.

use stale_served::{proto, Client, Daemon, DaemonConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use worldsim::ScenarioConfig;

fn start_daemon() -> (Daemon, String) {
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let addr = daemon.addr().to_string();
    (daemon, addr)
}

fn ok(client: &mut Client, line: &str) -> String {
    client
        .request(line)
        .expect("transport")
        .unwrap_or_else(|e| panic!("{line:?} should succeed, got err {e:?}"))
}

fn err(client: &mut Client, line: &str) -> String {
    client
        .request(line)
        .expect("transport")
        .expect_err("should be an err response")
}

#[test]
fn daemon_survives_protocol_abuse() {
    let (_daemon, addr) = start_daemon();
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(ok(&mut client, "ping"), "pong");

    // Ingest a few days so queries answer over real state.
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    let t4_before = ok(&mut client, "table4");
    let status_before = ok(&mut client, "status");

    // 1. Oversized length prefix: refused before any payload is read,
    //    with an err response on the way out.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&u32::MAX.to_be_bytes()).expect("write");
        raw.write_all(b"junk that should never be read")
            .expect("write");
        let mut buf = Vec::new();
        let _ = raw.read_to_end(&mut buf);
        let resp = proto::decode_response(&decode_one_frame(&buf)).expect("frame");
        let msg = resp.expect_err("oversized length must be refused");
        assert!(msg.contains("exceeds"), "{msg}");
    }

    // 2. Truncated header: peer gives up after two bytes.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&[0, 0]).expect("write");
        drop(raw);
    }

    // 3. Truncated payload: header promises 10 bytes, only 4 arrive.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&10u32.to_be_bytes()).expect("write");
        raw.write_all(b"ping").expect("write");
        drop(raw);
    }

    // 4. Byte-at-a-time writes: slow but well-formed frames parse.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.set_nodelay(true).expect("nodelay");
        let mut frame = Vec::new();
        proto::write_frame(&mut frame, b"ping").expect("encode");
        for byte in frame {
            raw.write_all(&[byte]).expect("write");
            raw.flush().expect("flush");
        }
        let payload = proto::read_frame(&mut raw, proto::MAX_FRAME).expect("response");
        assert_eq!(
            proto::decode_response(&payload).expect("frame"),
            Ok("pong".to_string())
        );
    }

    // 5. Mid-response disconnect: ask for a large body, read one byte,
    //    vanish.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        proto::write_frame(&mut raw, b"table4").expect("request");
        let mut one = [0u8; 1];
        raw.read_exact(&mut one).expect("first byte");
        drop(raw);
    }

    // 6. Garbage on an otherwise healthy connection: non-UTF-8 payload,
    //    unknown command, wrong arity, bad date, empty command — each an
    //    err response, none fatal to the connection.
    {
        let mut raw = TcpStream::connect(&addr).expect("connect");
        proto::write_frame(&mut raw, &[0xff, 0xfe, 0xfd]).expect("request");
        let payload = proto::read_frame(&mut raw, proto::MAX_FRAME).expect("response");
        let msg = proto::decode_response(&payload)
            .expect("frame")
            .expect_err("non-UTF-8 payload");
        assert!(msg.contains("UTF-8"), "{msg}");
        // Same connection still serves.
        proto::write_frame(&mut raw, b"ping").expect("request");
        let payload = proto::read_frame(&mut raw, proto::MAX_FRAME).expect("response");
        assert_eq!(
            proto::decode_response(&payload).expect("frame"),
            Ok("pong".to_string())
        );
    }
    let mut abusive = Client::connect(&addr).expect("connect");
    assert!(err(&mut abusive, "frobnicate").contains("unknown command"));
    assert!(err(&mut abusive, "explain a b").contains("exactly one"));
    assert!(err(&mut abusive, "feed-day yesterday").contains("YYYY-MM-DD"));
    assert!(err(&mut abusive, "").contains("empty command"));
    assert!(err(&mut abusive, "feed-day 1970-01-01").contains("already fed"));
    assert!(err(&mut abusive, "feed-day 2099-01-01").contains("feed ends"));
    // `/dev/null` is a file, so the snapshot's parent can't be created.
    assert!(err(&mut abusive, "snapshot /dev/null/cp.json").contains("cannot write"));
    assert!(err(&mut abusive, "status zz").contains("no decision"));

    // After all of it: same state, same bytes, still alive.
    let mut fresh = Client::connect(&addr).expect("connect");
    assert_eq!(ok(&mut fresh, "ping"), "pong");
    assert_eq!(ok(&mut fresh, "table4"), t4_before);
    assert_eq!(ok(&mut fresh, "status"), status_before);
}

/// Pull the first frame's payload out of a raw byte capture.
fn decode_one_frame(buf: &[u8]) -> Vec<u8> {
    let mut r = buf;
    proto::read_frame(&mut r, proto::MAX_FRAME).expect("response frame")
}

#[test]
fn consistency_delay_holds_fed_days_back() {
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 1;
    cfg.delay_days = 3;
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");

    // Nothing fed: nothing applied.
    let status = ok(&mut client, "status");
    assert!(status.contains("delay-days 3"), "{status}");
    assert!(status.contains("fed-through none"), "{status}");
    assert!(status.contains("applied-through none"), "{status}");

    // The first fed days stay entirely behind the delay.
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    let status = ok(&mut client, "status");
    assert!(status.contains("applied-through none"), "{status}");
    assert!(status.contains("pending-days 2"), "{status}");

    // Day D becomes visible once fed reaches D + delay.
    ok(&mut client, "feed-day");
    ok(&mut client, "feed-day");
    let status = ok(&mut client, "status");
    let fed = field(&status, "fed-through");
    let applied = field(&status, "applied-through");
    let start = field(&status, "feed")
        .split("..")
        .next()
        .expect("start")
        .to_string();
    assert_eq!(applied, start, "{status}");
    assert!(status.contains("pending-days 3"), "{status}");
    assert_ne!(fed, applied);

    // Catching up in one multi-day feed applies everything newly visible.
    let target = "2017-02-01";
    ok(&mut client, &format!("feed-day {target}"));
    let status = ok(&mut client, "status");
    assert_eq!(field(&status, "fed-through"), target, "{status}");
    assert_eq!(field(&status, "applied-through"), "2017-01-29", "{status}");
}

/// Extract `key value` from a rendered status body.
fn field(status: &str, key: &str) -> String {
    status
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("no {key:?} in {status:?}"))
        .to_string()
}
