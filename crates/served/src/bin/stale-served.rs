//! `stale-served` — serve detection state over TCP.
//!
//! ```text
//! stale-served [preset] [--listen ADDR] [--shards N] [--delay-days N]
//!              [--checkpoint FILE]
//!
//! presets:      paper (default) | small | tiny
//! --listen ADDR bind address (default 127.0.0.1:7979; use :0 for an
//!               ephemeral port — the bound address is printed)
//! --shards N    partition width (answers are byte-identical for any N)
//! --delay-days N
//!               hold fed days back from queries for N fed days
//! --checkpoint FILE
//!               restore schema-v2 detector state from FILE at boot
//!               (when present and matching) and use it as the default
//!               `snapshot` target
//! ```
//!
//! Prints `listening on ADDR` once the socket is bound, then serves
//! until a client sends `shutdown`. The world builds in the background;
//! early requests queue, so a successful `ping` means the daemon is
//! ready. Query with `stale-bench query ADDR CMD [ARGS...]`.

use stale_served::{Daemon, DaemonConfig};
use worldsim::ScenarioConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = "paper".to_string();
    let mut listen = "127.0.0.1:7979".to_string();
    let mut shards = 1usize;
    let mut delay_days = 0i64;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "paper" | "small" | "tiny" => preset = arg.clone(),
            "--listen" => match it.next() {
                Some(addr) => listen = addr.clone(),
                None => usage_error("--listen needs an address"),
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage_error("--shards needs a positive integer"),
            },
            "--delay-days" => match it.next().and_then(|v| v.parse::<i64>().ok()) {
                Some(n) if n >= 0 => delay_days = n,
                _ => usage_error("--delay-days needs a non-negative integer"),
            },
            "--checkpoint" => match it.next() {
                Some(path) => checkpoint = Some(path.into()),
                None => usage_error("--checkpoint needs a file path"),
            },
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let scenario = match preset.as_str() {
        "small" => ScenarioConfig::small(),
        "tiny" => ScenarioConfig::tiny(),
        _ => ScenarioConfig::paper2023(),
    };
    let mut cfg = DaemonConfig::new(&preset, scenario);
    cfg.shards = shards;
    cfg.delay_days = delay_days;
    cfg.checkpoint = checkpoint;
    let daemon = match Daemon::start(cfg, &listen) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stale-served: cannot bind {listen}: {e}");
            std::process::exit(2);
        }
    };
    // The readiness line scripts scrape for the resolved port; flush so
    // it lands even when stdout is a pipe.
    println!("listening on {}", daemon.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    eprintln!(
        "stale-served: preset {preset}, {shards} shard(s), delay {delay_days} day(s); \
         send `shutdown` to exit"
    );
    daemon.wait_shutdown();
    daemon.stop();
}

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "stale-served: {msg}\n\
         usage: stale-served [paper|small|tiny] [--listen ADDR] [--shards N] \
         [--delay-days N] [--checkpoint FILE]"
    );
    std::process::exit(2);
}
