//! `stale-served` — serve detection state over TCP.
//!
//! ```text
//! stale-served [preset] [--listen ADDR] [--shards N] [--delay-days N]
//!              [--checkpoint FILE] [--checkpoint-every N] [--http ADDR]
//!              [--slow-query-us N] [--slow-query-log-len N]
//!              [--worldlog FILE]
//!
//! presets:      paper (default) | small | tiny
//! --listen ADDR bind address (default 127.0.0.1:7979; use :0 for an
//!               ephemeral port — the bound address is printed)
//! --shards N    partition width (answers are byte-identical for any N)
//! --delay-days N
//!               hold fed days back from queries for N fed days
//! --checkpoint FILE
//!               restore schema-v2 detector state from FILE at boot
//!               (when present and matching) and use it as the default
//!               `snapshot` target
//! --checkpoint-every N
//!               auto-snapshot to the --checkpoint file after every N
//!               ingested days (needs --checkpoint)
//! --http ADDR   also serve the read-only HTTP telemetry plane
//!               (/metrics, /healthz, /readyz, /status, /timeline,
//!               /tables/..., /slowlog, /window) on ADDR
//! --slow-query-us N
//!               capture queries at or above N µs (span tree included)
//!               in the slow-query log (`slowlog` / GET /slowlog)
//! --slow-query-log-len N
//!               slow-query ring length (default obs::slowlog cap;
//!               needs --slow-query-us)
//! --worldlog FILE
//!               boot the world from an exported stale-obs-worldlog
//!               JSONL file instead of simulating the preset
//! ```
//!
//! Prints `listening on ADDR` once the socket is bound (and `http on
//! ADDR` when `--http` is given), then serves until a client sends
//! `shutdown`. The world builds in the background; early requests
//! queue, so a successful `ping` means the daemon is ready. Query with
//! `stale-bench query ADDR CMD [ARGS...]`, watch live with
//! `stale-bench watch ADDR`.

use stale_served::{Daemon, DaemonConfig};
use worldsim::ScenarioConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = "paper".to_string();
    let mut listen = "127.0.0.1:7979".to_string();
    let mut shards = 1usize;
    let mut delay_days = 0i64;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut http: Option<String> = None;
    let mut slow_query_us: Option<u64> = None;
    let mut slow_query_log_len: Option<usize> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut worldlog: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "paper" | "small" | "tiny" => preset = arg.clone(),
            "--listen" => match it.next() {
                Some(addr) => listen = addr.clone(),
                None => usage_error("--listen needs an address"),
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => shards = n,
                _ => usage_error("--shards needs a positive integer"),
            },
            "--delay-days" => match it.next().and_then(|v| v.parse::<i64>().ok()) {
                Some(n) if n >= 0 => delay_days = n,
                _ => usage_error("--delay-days needs a non-negative integer"),
            },
            "--checkpoint" => match it.next() {
                Some(path) => checkpoint = Some(path.into()),
                None => usage_error("--checkpoint needs a file path"),
            },
            "--http" => match it.next() {
                Some(addr) => http = Some(addr.clone()),
                None => usage_error("--http needs an address"),
            },
            "--slow-query-us" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => slow_query_us = Some(n),
                None => usage_error("--slow-query-us needs a non-negative integer"),
            },
            "--slow-query-log-len" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => slow_query_log_len = Some(n),
                _ => usage_error("--slow-query-log-len needs a positive integer"),
            },
            "--checkpoint-every" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => checkpoint_every = Some(n),
                _ => usage_error("--checkpoint-every needs a positive integer"),
            },
            "--worldlog" => match it.next() {
                Some(path) => worldlog = Some(path.into()),
                None => usage_error("--worldlog needs a file path"),
            },
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if checkpoint_every.is_some() && checkpoint.is_none() {
        usage_error("--checkpoint-every needs --checkpoint for the snapshot target");
    }
    if slow_query_log_len.is_some() && slow_query_us.is_none() {
        usage_error("--slow-query-log-len needs --slow-query-us to arm the slowlog");
    }
    let scenario = match preset.as_str() {
        "small" => ScenarioConfig::small(),
        "tiny" => ScenarioConfig::tiny(),
        _ => ScenarioConfig::paper2023(),
    };
    let mut cfg = DaemonConfig::new(&preset, scenario);
    cfg.shards = shards;
    cfg.delay_days = delay_days;
    cfg.checkpoint = checkpoint;
    cfg.http = http;
    cfg.slow_query_us = slow_query_us;
    cfg.slow_query_log_len = slow_query_log_len;
    cfg.checkpoint_every = checkpoint_every;
    cfg.worldlog = worldlog;
    let daemon = match Daemon::start(cfg, &listen) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stale-served: cannot bind {listen}: {e}");
            std::process::exit(2);
        }
    };
    // The readiness line scripts scrape for the resolved port; flush so
    // it lands even when stdout is a pipe.
    println!("listening on {}", daemon.addr());
    if let Some(http_addr) = daemon.http_addr() {
        println!("http on {http_addr}");
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());
    eprintln!(
        "stale-served: preset {preset}, {shards} shard(s), delay {delay_days} day(s); \
         send `shutdown` to exit"
    );
    daemon.wait_shutdown();
    daemon.stop();
}

fn usage_error(msg: &str) -> ! {
    eprintln!(
        "stale-served: {msg}\n\
         usage: stale-served [paper|small|tiny] [--listen ADDR] [--shards N] \
         [--delay-days N] [--checkpoint FILE] [--checkpoint-every N] [--http ADDR] \
         [--slow-query-us N] [--slow-query-log-len N] [--worldlog FILE]"
    );
    std::process::exit(2);
}
