//! The resident daemon: a state-actor thread owning the world and the
//! incremental detector state, fronted by a TCP accept loop.
//!
//! # Architecture
//!
//! [`engine::IncrementalState`] borrows the [`worldsim::WorldDatasets`]
//! it detects over, so the daemon cannot share it across threads behind
//! a lock without self-referential ownership. Instead a single
//! **state-actor** thread builds the world, owns every borrow, and
//! serves commands from an mpsc queue; each TCP connection runs in its
//! own thread and exchanges [`Request`]s with the actor over a reply
//! channel. Serialized state access is also what makes ingestion
//! atomic: a `feed-day` either has not started or has fully finished by
//! the time any query is answered, so a concurrent client can never
//! observe a partially ingested day.
//!
//! # Consistency delay
//!
//! `delay_days` holds ingested days back from queries: day `D` becomes
//! visible only once the fed cursor reaches `D + delay_days`. The delay
//! is measured in fed days — never wall time — so a replay of the same
//! command sequence reproduces the same responses byte for byte. With
//! the default delay of 0, queries see every fed day immediately.
//!
//! # Equivalence
//!
//! Query answers are rendered from [`engine::StateView`] — the same
//! finish + merge the batch engine runs, including the one shared
//! sort-merge CRL×CT join (`stale_core::detector::key_compromise`'s
//! `CrlKeyIndex` probe) that batch and incremental shards use — and
//! from the shared [`stale_core::tables::TableView`] renderers, so
//! every `table3`, `table4`, `explain` and `report` body is
//! byte-identical to a fresh batch run over the same ingested days
//! (`tests/served_equivalence.rs` at the workspace root asserts this
//! across shard counts and across snapshot/restart boundaries).

// Query/build self-timing with `Instant` is sanctioned here; it feeds
// the metrics registry, never detection results.
// stale-lint: trusted-file(wallclock-in-detector)

use crate::proto;
use engine::{IncrementalState, StateView, StreamCheckpoint};
use obs::Obs;
use psl::SuffixList;
use stale_types::{Date, Duration};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use worldsim::{DayFeed, ScenarioConfig, World, WorldDatasets};

/// Daemon configuration: which world to boot, at what shard width, with
/// what visibility delay.
pub struct DaemonConfig {
    /// The scenario the state-actor simulates at boot.
    pub scenario: ScenarioConfig,
    /// Preset label reported by `status` (`paper`, `small`, `tiny`, …).
    pub preset: String,
    /// Partition width (answers are byte-identical for every width).
    pub shards: usize,
    /// Days a fed day is held back from queries (0 = immediate).
    pub delay_days: i64,
    /// Schema-v2 checkpoint path: restored at boot when present and
    /// matching, and the default target of the `snapshot` command.
    pub checkpoint: Option<PathBuf>,
    /// Maximum accepted request frame length.
    pub max_frame: usize,
}

impl DaemonConfig {
    /// A config over `scenario` with defaults: 1 shard, no delay, no
    /// checkpoint.
    pub fn new(preset: &str, scenario: ScenarioConfig) -> DaemonConfig {
        DaemonConfig {
            scenario,
            preset: preset.to_string(),
            shards: 1,
            delay_days: 0,
            checkpoint: None,
            max_frame: proto::MAX_FRAME,
        }
    }
}

/// One parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness (and readiness: the reply waits for the state-actor).
    Ping,
    /// Daemon status, or one certificate's verdict summary by prefix.
    Status(Option<String>),
    /// One certificate's full decision chain by fingerprint prefix.
    Explain(String),
    /// Table 3 (dataset inventory) over the visible days.
    Table3,
    /// Table 4 (detection rates) over the visible days.
    Table4,
    /// Decision-audit coverage over the visible days.
    Report,
    /// Advance the fed cursor to the next day, or through a date.
    FeedDay(Option<Date>),
    /// Snapshot applied state to the given path (or the boot checkpoint).
    Snapshot(Option<PathBuf>),
    /// Metrics-registry JSON export.
    Metrics,
    /// Reply, then shut the daemon down.
    Shutdown,
}

impl Request {
    /// Canonical command tag — the `served.query.<tag>_us` histogram
    /// key. A fixed vocabulary so client input can never mint
    /// unbounded metric names.
    pub fn tag(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Status(_) => "status",
            Request::Explain(_) => "explain",
            Request::Table3 => "table3",
            Request::Table4 => "table4",
            Request::Report => "report",
            Request::FeedDay(_) => "feed-day",
            Request::Snapshot(_) => "snapshot",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Parse one request line. Errors name the problem without echoing
/// unbounded input.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let Some(cmd) = words.next() else {
        return Err("empty command".to_string());
    };
    let rest: Vec<&str> = words.collect();
    let none = |req: Request| match rest.as_slice() {
        [] => Ok(req),
        _ => Err(format!("{cmd} takes no arguments")),
    };
    match cmd {
        "ping" => none(Request::Ping),
        "table3" => none(Request::Table3),
        "table4" => none(Request::Table4),
        "report" => none(Request::Report),
        "metrics" => none(Request::Metrics),
        "shutdown" => none(Request::Shutdown),
        "status" => match rest.as_slice() {
            [] => Ok(Request::Status(None)),
            [prefix] => Ok(Request::Status(Some((*prefix).to_string()))),
            _ => Err("status takes at most one fingerprint prefix".to_string()),
        },
        "explain" => match rest.as_slice() {
            [prefix] => Ok(Request::Explain((*prefix).to_string())),
            _ => Err("explain takes exactly one fingerprint prefix".to_string()),
        },
        "feed-day" => match rest.as_slice() {
            [] => Ok(Request::FeedDay(None)),
            [day] => Date::parse(day)
                .map(|d| Request::FeedDay(Some(d)))
                .map_err(|_| "feed-day takes an optional YYYY-MM-DD date".to_string()),
            _ => Err("feed-day takes at most one date".to_string()),
        },
        "snapshot" => match rest.as_slice() {
            [] => Ok(Request::Snapshot(None)),
            [path] => Ok(Request::Snapshot(Some(PathBuf::from(path)))),
            _ => Err("snapshot takes at most one path".to_string()),
        },
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Messages into the state-actor.
enum ActorMsg {
    Request {
        req: Request,
        reply: SyncSender<Result<String, String>>,
    },
    Stop,
}

/// The state-actor: owns the world, the feed and the incremental state,
/// and serves requests one at a time.
struct Actor<'w> {
    preset: String,
    data: &'w WorldDatasets,
    psl: &'w SuffixList,
    feed: DayFeed<'w>,
    state: IncrementalState<'w>,
    /// Last day the operator fed (>= applied cursor by `delay_days`).
    fed: Option<Date>,
    delay_days: i64,
    checkpoint: Option<PathBuf>,
    /// Stale events emitted since boot (not persisted in snapshots).
    events: usize,
    /// Cached merged view; invalidated by ingestion.
    view: Option<StateView>,
    obs: Obs,
}

impl<'w> Actor<'w> {
    /// The newest day visible to queries once `fed` days are in.
    fn visible_end(&self, fed: Date) -> Option<Date> {
        let end = fed - Duration::days(self.delay_days.max(0));
        (end >= self.feed.start()).then_some(end)
    }

    /// Advance the fed cursor to `target`, ingesting every newly visible
    /// day atomically.
    fn feed_to(&mut self, target: Date) -> Result<String, String> {
        if target > self.feed.end() {
            return Err(format!(
                "cannot feed through {target}: the feed ends {}",
                self.feed.end()
            ));
        }
        if let Some(fed) = self.fed {
            if target <= fed {
                return Err(format!("already fed through {fed}"));
            }
        }
        let mut emitted = 0usize;
        if let Some(visible) = self.visible_end(target) {
            let next = match self.state.through() {
                Some(applied) => applied.succ(),
                None => self.feed.start(),
            };
            if next <= visible {
                let delta = self.feed.delta(next, visible);
                emitted = self.state.ingest_delta(&delta, &self.obs.registry).len();
                self.events += emitted;
                self.view = None;
            }
        }
        self.fed = Some(target);
        let lag = match self.state.through() {
            Some(applied) => (target - applied).num_days().max(0) as u64,
            None => (target - self.feed.start()).num_days().max(0) as u64 + 1,
        };
        self.obs
            .registry
            .observe_depth("served.ingest.lag_days", lag);
        Ok(format!(
            "fed through {target}; applied through {}; {emitted} new event(s), {} since boot",
            self.applied_label(),
            self.events
        ))
    }

    fn applied_label(&self) -> String {
        match self.state.through() {
            Some(d) => d.to_string(),
            None => "none".to_string(),
        }
    }

    /// The cached merged view, rebuilt after ingestion. Always audited:
    /// `status`, `explain` and `report` need the decision store.
    fn view(&mut self) -> Result<&StateView, String> {
        if self.view.is_none() {
            let started = Instant::now();
            let view = self.state.view(true).map_err(|e| e.to_string())?;
            self.obs.registry.observe_latency_us(
                "served.view.rebuild_us",
                started.elapsed().as_micros() as u64,
            );
            self.obs.registry.add("served.view.rebuilds", 1);
            self.view = Some(view);
        }
        self.view
            .as_ref()
            .ok_or_else(|| "view unavailable".to_string())
    }

    /// The audited view's decision store.
    fn audit(&mut self) -> Result<&obs::AuditReport, String> {
        self.view()?
            .audit
            .as_ref()
            .ok_or_else(|| "decision audit unavailable".to_string())
    }

    // stale-lint: entry(actor)
    fn handle(&mut self, req: &Request) -> Result<String, String> {
        match req {
            Request::Ping => Ok("pong".to_string()),
            Request::Status(None) => Ok(self.status()),
            Request::Status(Some(prefix)) => self.status_cert(prefix),
            Request::Explain(prefix) => self.audit()?.render_explain(prefix),
            Request::Report => Ok(self.audit()?.render_coverage()),
            Request::Table3 => {
                let view = self.view_tables()?;
                Ok(view.table3())
            }
            Request::Table4 => {
                let view = self.view_tables()?;
                Ok(view.table4())
            }
            Request::FeedDay(target) => {
                let target = match target {
                    Some(d) => *d,
                    None => match self.fed {
                        Some(fed) => fed.succ(),
                        None => self.feed.start(),
                    },
                };
                self.feed_to(target)
            }
            Request::Snapshot(path) => self.snapshot(path.as_deref()),
            Request::Metrics => Ok(self.obs.registry.export_json()),
            Request::Shutdown => Ok("bye".to_string()),
        }
    }

    /// A table-render view borrowing the cached merged suite.
    fn view_tables(&mut self) -> Result<stale_core::tables::TableView<'_>, String> {
        // Split borrows: materialize the view first, then borrow it
        // alongside the world references.
        self.view()?;
        let suite = self
            .view
            .as_ref()
            .map(|v| &v.suite)
            .ok_or_else(|| "view unavailable".to_string())?;
        Ok(stale_core::tables::TableView {
            data: self.data,
            psl: self.psl,
            suite,
        })
    }

    fn status(&mut self) -> String {
        let fed = match self.fed {
            Some(d) => d.to_string(),
            None => "none".to_string(),
        };
        let pending = match (self.fed, self.state.through()) {
            (Some(fed), Some(applied)) => (fed - applied).num_days().max(0),
            (Some(fed), None) => (fed - self.feed.start()).num_days().max(0) + 1,
            _ => 0,
        };
        format!(
            "preset {}\nshards {}\ndelay-days {}\nfeed {}..{}\nfed-through {fed}\napplied-through {}\npending-days {pending}\nevents-since-boot {}\nfootprint {}\n",
            self.preset,
            self.state.shards(),
            self.delay_days.max(0),
            self.feed.start(),
            self.feed.end(),
            self.applied_label(),
            self.events,
            self.state.footprint(),
        )
    }

    /// One certificate's verdict summary (the quick form of `explain`).
    fn status_cert(&mut self, prefix: &str) -> Result<String, String> {
        let audit = self.audit()?;
        let (cert, chain) = audit.decisions_for(prefix)?;
        let kept = chain
            .iter()
            .filter(|d| d.verdict == obs::audit::Verdict::Kept)
            .count();
        Ok(format!(
            "fingerprint {cert}\ndecisions {}\nkept {kept}\ndropped {}\n",
            chain.len(),
            chain.len() - kept
        ))
    }

    fn snapshot(&mut self, path: Option<&std::path::Path>) -> Result<String, String> {
        let path = path
            .or(self.checkpoint.as_deref())
            .ok_or_else(|| "no snapshot path: pass one or boot with --checkpoint".to_string())?;
        let cp = self
            .state
            .snapshot()
            .ok_or_else(|| "nothing ingested yet; nothing to snapshot".to_string())?;
        let started = Instant::now();
        cp.save(path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        self.obs.registry.add("served.checkpoint.saves", 1);
        self.obs.registry.observe_latency_us(
            "served.checkpoint.save_us",
            started.elapsed().as_micros() as u64,
        );
        Ok(format!(
            "wrote checkpoint through {} ({} shard(s)) to {}",
            cp.through,
            cp.shards,
            path.display()
        ))
    }
}

/// Build the world and serve actor messages until `Stop` or `shutdown`.
// stale-lint: entry(actor)
fn run_actor(cfg: DaemonConfig, rx: Receiver<ActorMsg>, obs: Obs) {
    let build_start = Instant::now();
    let data = World::run(cfg.scenario);
    let psl = SuffixList::default_list();
    obs.registry.observe_latency_us(
        "served.boot.world_build_us",
        build_start.elapsed().as_micros() as u64,
    );
    let shards = cfg.shards.max(1);
    let restored = cfg
        .checkpoint
        .as_deref()
        .filter(|p| p.exists())
        .and_then(|p| StreamCheckpoint::load(p, data.fingerprint(), shards))
        .and_then(|cp| IncrementalState::restore(&data, &psl, &cp));
    if restored.is_some() {
        obs.registry.add("served.checkpoint.restores", 1);
    }
    let state = restored.unwrap_or_else(|| IncrementalState::new(&data, &psl, shards));
    let fed = state.through();
    let mut actor = Actor {
        preset: cfg.preset,
        data: &data,
        psl: &psl,
        feed: DayFeed::new(&data),
        state,
        fed,
        delay_days: cfg.delay_days,
        checkpoint: cfg.checkpoint,
        events: 0,
        view: None,
        obs: obs.clone(),
    };
    obs.registry.add("served.ready", 1);
    while let Ok(msg) = rx.recv() {
        match msg {
            ActorMsg::Stop => break,
            ActorMsg::Request { req, reply } => {
                let stop = req == Request::Shutdown;
                let resp = actor.handle(&req);
                let _ = reply.send(resp);
                if stop {
                    // The connection thread signals the daemon's shutdown
                    // channel once the `bye` response is on the wire.
                    break;
                }
            }
        }
    }
}

/// Serve one connection: read request frames, relay them to the actor,
/// write response frames. Every failure path drops the connection
/// without touching daemon state — a hostile peer can only hurt itself.
///
/// A `shutdown` request is signalled on `shutdown_tx` only after its
/// response frame has been written (or the write has failed), so the
/// process never exits before the `bye` reaches the wire.
// stale-lint: entry(conn)
fn handle_conn(
    stream: TcpStream,
    tx: Sender<ActorMsg>,
    obs: Obs,
    max_frame: usize,
    shutdown_tx: Sender<()>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader, max_frame) {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix: the stream is unframed from
                // here, so reply (best-effort) and close.
                obs.registry.add("served.conn.oversized_frames", 1);
                let resp = Err(e.to_string());
                let _ = proto::write_frame(&mut writer, &proto::encode_response(&resp));
                return;
            }
            // EOF, truncated frame or transport error: just close.
            Err(_) => return,
        };
        let started = Instant::now();
        let (tag, resp) = match String::from_utf8(payload) {
            Err(_) => ("invalid", Err("request payload is not UTF-8".to_string())),
            Ok(line) => match parse_request(&line) {
                Err(e) => ("invalid", Err(e)),
                Ok(req) => {
                    let tag = req.tag();
                    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
                    let resp = if tx
                        .send(ActorMsg::Request {
                            req,
                            reply: reply_tx,
                        })
                        .is_err()
                    {
                        Err("daemon is shutting down".to_string())
                    } else {
                        reply_rx
                            .recv()
                            .unwrap_or_else(|_| Err("daemon dropped the request".to_string()))
                    };
                    (tag, resp)
                }
            },
        };
        obs.registry.observe_latency_us(
            &format!("served.query.{tag}_us"),
            started.elapsed().as_micros() as u64,
        );
        if resp.is_err() {
            obs.registry.add("served.query.errors", 1);
        }
        let written = proto::write_frame(&mut writer, &proto::encode_response(&resp));
        if tag == "shutdown" {
            let _ = shutdown_tx.send(());
            return;
        }
        if written.is_err() {
            // Client disconnected mid-response; nothing shared is dirty.
            return;
        }
    }
}

/// Accept connections until the stop flag is raised (a wake connection
/// is made by [`Daemon::stop`] so the blocking accept returns).
fn run_accept(
    listener: TcpListener,
    tx: Sender<ActorMsg>,
    obs: Obs,
    stop: Arc<AtomicBool>,
    max_frame: usize,
    shutdown_tx: Sender<()>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        obs.registry.add("served.conn.accepted", 1);
        let tx = tx.clone();
        let obs = obs.clone();
        let shutdown_tx = shutdown_tx.clone();
        let _ = std::thread::Builder::new()
            .name("served-conn".to_string())
            .spawn(move || handle_conn(stream, tx, obs, max_frame, shutdown_tx));
    }
}

/// A running daemon: the state-actor plus the TCP front end.
///
/// Dropping the daemon shuts it down (joining both threads); `shutdown`
/// over the wire unblocks [`Daemon::wait_shutdown`] so a binary can
/// serve until a client asks it to exit.
pub struct Daemon {
    addr: SocketAddr,
    tx: Sender<ActorMsg>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    actor: Option<JoinHandle<()>>,
    shutdown_rx: Receiver<()>,
    obs: Obs,
}

impl Daemon {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and boot the state-actor.
    ///
    /// Returns as soon as the socket is bound — the world builds in the
    /// actor thread, and early requests queue until it is ready, so a
    /// successful `ping` doubles as a readiness probe.
    // The listener is bound on the caller's thread before the actor
    // spawns; nothing is resident yet to stall.
    // stale-lint: trusted(blocking-io-in-actor)
    pub fn start(cfg: DaemonConfig, listen: &str) -> io::Result<Daemon> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let obs = Obs::disabled();
        let max_frame = cfg.max_frame.max(proto::HEADER_LEN);
        let (tx, rx) = mpsc::channel();
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let actor_obs = obs.clone();
        let actor = std::thread::Builder::new()
            .name("served-state".to_string())
            .spawn(move || run_actor(cfg, rx, actor_obs))?;
        let accept_tx = tx.clone();
        let accept_obs = obs.clone();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("served-accept".to_string())
            .spawn(move || {
                run_accept(
                    listener,
                    accept_tx,
                    accept_obs,
                    accept_stop,
                    max_frame,
                    shutdown_tx,
                )
            })?;
        Ok(Daemon {
            addr,
            tx,
            stop,
            accept: Some(accept),
            actor: Some(actor),
            shutdown_rx,
            obs,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics registry (latency histograms, ingest lag).
    pub fn registry(&self) -> &obs::Registry {
        &self.obs.registry
    }

    /// Block until a client sends `shutdown` (or the actor exits).
    pub fn wait_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Stop the daemon and join its threads.
    pub fn stop(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.tx.send(ActorMsg::Stop);
        // Wake the blocking accept so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.actor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("  table4  ").unwrap(), Request::Table4);
        assert_eq!(parse_request("status").unwrap(), Request::Status(None));
        assert_eq!(
            parse_request("status ab01").unwrap(),
            Request::Status(Some("ab01".to_string()))
        );
        assert_eq!(
            parse_request("explain ab01").unwrap(),
            Request::Explain("ab01".to_string())
        );
        assert_eq!(parse_request("feed-day").unwrap(), Request::FeedDay(None));
        assert_eq!(
            parse_request("feed-day 2022-01-05").unwrap(),
            Request::FeedDay(Some(Date::parse("2022-01-05").unwrap()))
        );
        assert_eq!(
            parse_request("snapshot /tmp/cp.json").unwrap(),
            Request::Snapshot(Some(PathBuf::from("/tmp/cp.json")))
        );
        for bad in [
            "",
            "   ",
            "frobnicate",
            "ping now",
            "explain",
            "explain a b",
            "feed-day not-a-date",
            "table4 extra",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn request_tags_are_fixed() {
        assert_eq!(Request::Ping.tag(), "ping");
        assert_eq!(Request::FeedDay(None).tag(), "feed-day");
        assert_eq!(Request::Snapshot(None).tag(), "snapshot");
    }
}
