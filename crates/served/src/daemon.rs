//! The resident daemon: a state-actor thread owning the world and the
//! incremental detector state, fronted by a TCP accept loop.
//!
//! # Architecture
//!
//! [`engine::IncrementalState`] borrows the [`worldsim::WorldDatasets`]
//! it detects over, so the daemon cannot share it across threads behind
//! a lock without self-referential ownership. Instead a single
//! **state-actor** thread builds the world, owns every borrow, and
//! serves commands from an mpsc queue; each TCP connection runs in its
//! own thread and exchanges [`Request`]s with the actor over a reply
//! channel. Serialized state access is also what makes ingestion
//! atomic: a `feed-day` either has not started or has fully finished by
//! the time any query is answered, so a concurrent client can never
//! observe a partially ingested day.
//!
//! # Consistency delay
//!
//! `delay_days` holds ingested days back from queries: day `D` becomes
//! visible only once the fed cursor reaches `D + delay_days`. The delay
//! is measured in fed days — never wall time — so a replay of the same
//! command sequence reproduces the same responses byte for byte. With
//! the default delay of 0, queries see every fed day immediately.
//!
//! # Equivalence
//!
//! Query answers are rendered from [`engine::StateView`] — the same
//! finish + merge the batch engine runs, including the one shared
//! sort-merge CRL×CT join (`stale_core::detector::key_compromise`'s
//! `CrlKeyIndex` probe) that batch and incremental shards use — and
//! from the shared [`stale_core::tables::TableView`] renderers, so
//! every `table3`, `table4`, `explain` and `report` body is
//! byte-identical to a fresh batch run over the same ingested days
//! (`tests/served_equivalence.rs` at the workspace root asserts this
//! across shard counts and across snapshot/restart boundaries).

// Query/build self-timing with `Instant` is sanctioned here; it feeds
// the metrics registry, never detection results.
// stale-lint: trusted-file(wallclock-in-detector)

use crate::proto;
use crate::subs::{Subscribers, KIND_EVENT, KIND_SPAN};
use engine::{IncrementalState, StateView, StreamCheckpoint};
use obs::trace::{SpanId, Trace};
use obs::{Obs, SlowLog, WindowedHistogram};
use psl::SuffixList;
use serde::Serialize;
use stale_types::{Date, Duration};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use worldsim::{DayFeed, ScenarioConfig, World, WorldDatasets};

/// Daemon configuration: which world to boot, at what shard width, with
/// what visibility delay.
pub struct DaemonConfig {
    /// The scenario the state-actor simulates at boot.
    pub scenario: ScenarioConfig,
    /// Preset label reported by `status` (`paper`, `small`, `tiny`, …).
    pub preset: String,
    /// Partition width (answers are byte-identical for every width).
    pub shards: usize,
    /// Days a fed day is held back from queries (0 = immediate).
    pub delay_days: i64,
    /// Schema-v2 checkpoint path: restored at boot when present and
    /// matching, and the default target of the `snapshot` command.
    pub checkpoint: Option<PathBuf>,
    /// Maximum accepted request frame length.
    pub max_frame: usize,
    /// Address for the read-only HTTP telemetry plane (`None` = off).
    pub http: Option<String>,
    /// Capture queries at or above this wall time in the slow-query log
    /// (`None` = slowlog off, no per-query tracing).
    pub slow_query_us: Option<u64>,
    /// Slow-query ring length (`None` = [`obs::slowlog::SLOWLOG_CAP`]).
    pub slow_query_log_len: Option<usize>,
    /// Auto-checkpoint: snapshot applied state to the boot checkpoint
    /// after every N ingested days (`None` = only on explicit
    /// `snapshot` commands). Needs `checkpoint`.
    pub checkpoint_every: Option<u64>,
    /// Boot the world from an exported `stale-obs-worldlog` JSONL file
    /// instead of simulating `scenario` (the daemon as a log consumer:
    /// `feed-day` then replays log segments).
    pub worldlog: Option<PathBuf>,
    /// Per-subscriber push-queue depth (full queues drop, never block).
    pub sub_queue: usize,
    /// Rolling-window ring capacity (last N ingest batches).
    pub window: usize,
}

impl DaemonConfig {
    /// A config over `scenario` with defaults: 1 shard, no delay, no
    /// checkpoint.
    pub fn new(preset: &str, scenario: ScenarioConfig) -> DaemonConfig {
        DaemonConfig {
            scenario,
            preset: preset.to_string(),
            shards: 1,
            delay_days: 0,
            checkpoint: None,
            max_frame: proto::MAX_FRAME,
            http: None,
            slow_query_us: None,
            slow_query_log_len: None,
            checkpoint_every: None,
            worldlog: None,
            sub_queue: 256,
            window: 16,
        }
    }
}

/// One parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness (and readiness: the reply waits for the state-actor).
    Ping,
    /// Daemon status, or one certificate's verdict summary by prefix.
    Status(Option<String>),
    /// One certificate's full decision chain by fingerprint prefix.
    Explain(String),
    /// One certificate's joined world-event + audit-decision timeline.
    Timeline(String),
    /// Table 3 (dataset inventory) over the visible days.
    Table3,
    /// Table 4 (detection rates) over the visible days.
    Table4,
    /// Decision-audit coverage over the visible days.
    Report,
    /// Advance the fed cursor to the next day, or through a date.
    FeedDay(Option<Date>),
    /// Snapshot applied state to the given path (or the boot checkpoint).
    Snapshot(Option<PathBuf>),
    /// Metrics-registry JSON export.
    Metrics,
    /// Readiness: world built and the consistency delay satisfied.
    Ready,
    /// Rolling-window ingest metrics (last N batches).
    Window,
    /// The slow-query log (queries over `--slow-query-us`, span trees).
    SlowLog,
    /// Flip this connection into push mode (handled connection-side;
    /// the state-actor never sees it).
    Subscribe,
    /// Reply, then shut the daemon down.
    Shutdown,
}

impl Request {
    /// Canonical command tag — the `served.query.<tag>_us` histogram
    /// key. A fixed vocabulary so client input can never mint
    /// unbounded metric names.
    pub fn tag(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Status(_) => "status",
            Request::Explain(_) => "explain",
            Request::Timeline(_) => "timeline",
            Request::Table3 => "table3",
            Request::Table4 => "table4",
            Request::Report => "report",
            Request::FeedDay(_) => "feed-day",
            Request::Snapshot(_) => "snapshot",
            Request::Metrics => "metrics",
            Request::Ready => "ready",
            Request::Window => "window",
            Request::SlowLog => "slowlog",
            Request::Subscribe => "subscribe",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Parse one request line. Errors name the problem without echoing
/// unbounded input.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let Some(cmd) = words.next() else {
        return Err("empty command".to_string());
    };
    let rest: Vec<&str> = words.collect();
    let none = |req: Request| match rest.as_slice() {
        [] => Ok(req),
        _ => Err(format!("{cmd} takes no arguments")),
    };
    match cmd {
        "ping" => none(Request::Ping),
        "table3" => none(Request::Table3),
        "table4" => none(Request::Table4),
        "report" => none(Request::Report),
        "metrics" => none(Request::Metrics),
        "ready" => none(Request::Ready),
        "window" => none(Request::Window),
        "slowlog" => none(Request::SlowLog),
        "subscribe" => none(Request::Subscribe),
        "shutdown" => none(Request::Shutdown),
        "status" => match rest.as_slice() {
            [] => Ok(Request::Status(None)),
            [prefix] => Ok(Request::Status(Some((*prefix).to_string()))),
            _ => Err("status takes at most one fingerprint prefix".to_string()),
        },
        "explain" => match rest.as_slice() {
            [prefix] => Ok(Request::Explain((*prefix).to_string())),
            _ => Err("explain takes exactly one fingerprint prefix".to_string()),
        },
        "timeline" => match rest.as_slice() {
            [prefix] => Ok(Request::Timeline((*prefix).to_string())),
            _ => Err("timeline takes exactly one fingerprint prefix".to_string()),
        },
        "feed-day" => match rest.as_slice() {
            [] => Ok(Request::FeedDay(None)),
            [day] => Date::parse(day)
                .map(|d| Request::FeedDay(Some(d)))
                .map_err(|_| "feed-day takes an optional YYYY-MM-DD date".to_string()),
            _ => Err("feed-day takes at most one date".to_string()),
        },
        "snapshot" => match rest.as_slice() {
            [] => Ok(Request::Snapshot(None)),
            [path] => Ok(Request::Snapshot(Some(PathBuf::from(path)))),
            _ => Err("snapshot takes at most one path".to_string()),
        },
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Messages into the state-actor.
pub(crate) enum ActorMsg {
    Request {
        req: Request,
        reply: SyncSender<Result<String, String>>,
    },
    Stop,
}

/// Relay one request to the state-actor and wait for its reply. Shared
/// by the frame-protocol connections and the HTTP plane so both fronts
/// see identical actor semantics (and identical shutdown errors).
pub(crate) fn ask_actor(tx: &Sender<ActorMsg>, req: Request) -> Result<String, String> {
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    if tx
        .send(ActorMsg::Request {
            req,
            reply: reply_tx,
        })
        .is_err()
    {
        return Err("daemon is shutting down".to_string());
    }
    reply_rx
        .recv()
        .unwrap_or_else(|_| Err("daemon dropped the request".to_string()))
}

/// The per-batch ingest completion record published to subscribers.
#[derive(Serialize)]
struct IngestSpanRecord {
    name: String,
    fed_through: String,
    applied_through: String,
    days: i64,
    events: usize,
    wall_us: u64,
}

/// The state-actor: owns the world, the feed and the incremental state,
/// and serves requests one at a time.
struct Actor<'w> {
    preset: String,
    data: &'w WorldDatasets,
    psl: &'w SuffixList,
    feed: DayFeed<'w>,
    state: IncrementalState<'w>,
    /// Last day the operator fed (>= applied cursor by `delay_days`).
    fed: Option<Date>,
    delay_days: i64,
    checkpoint: Option<PathBuf>,
    /// Stale events emitted since boot (not persisted in snapshots).
    events: usize,
    /// Auto-checkpoint period in ingested days (`None` = off).
    checkpoint_every: Option<u64>,
    /// Days ingested since the last (auto or explicit) checkpoint.
    days_since_checkpoint: u64,
    /// Cached merged view; invalidated by ingestion.
    view: Option<StateView>,
    /// Cached fingerprint → decision-index map over the view's audit;
    /// invalidated with the view, so `explain`/`status <fp>` lookups
    /// stay O(log n) between ingests however large the store grows.
    explain_index: Option<std::collections::BTreeMap<String, Vec<usize>>>,
    /// Lazily extracted world-fact log (layer 1 of the `timeline`
    /// join). The world is immutable for the daemon's lifetime, so this
    /// never invalidates.
    worldlog: Option<worldsim::WorldLog>,
    obs: Obs,
    /// Attached push subscribers (publishing never blocks the actor).
    subs: Subscribers,
    /// Bounded slow-query log (`--slow-query-us`).
    slowlog: SlowLog,
    /// Rolling per-ingest-batch wall times (last N batches).
    window: WindowedHistogram,
    /// Per-query trace, live only while the slowlog is armed and a
    /// request is being handled; `view()` parents its rebuild span here.
    query_trace: Trace,
    query_span: SpanId,
}

impl<'w> Actor<'w> {
    /// The newest day visible to queries once `fed` days are in.
    fn visible_end(&self, fed: Date) -> Option<Date> {
        let end = fed - Duration::days(self.delay_days.max(0));
        (end >= self.feed.start()).then_some(end)
    }

    /// Advance the fed cursor to `target`, ingesting every newly visible
    /// day atomically.
    fn feed_to(&mut self, target: Date) -> Result<String, String> {
        if target > self.feed.end() {
            return Err(format!(
                "cannot feed through {target}: the feed ends {}",
                self.feed.end()
            ));
        }
        if let Some(fed) = self.fed {
            if target <= fed {
                return Err(format!("already fed through {fed}"));
            }
        }
        let mut emitted = 0usize;
        if let Some(visible) = self.visible_end(target) {
            let next = match self.state.through() {
                Some(applied) => applied.succ(),
                None => self.feed.start(),
            };
            if next <= visible {
                let started = Instant::now();
                let delta = self.feed.delta(next, visible);
                let events = self.state.ingest_delta(&delta, &self.obs.registry);
                let batch_us = started.elapsed().as_micros() as u64;
                emitted = events.len();
                self.events += emitted;
                self.view = None;
                self.explain_index = None;
                self.days_since_checkpoint += ((visible - next).num_days() + 1).max(0) as u64;
                // Publishing is observation only: records go out on
                // bounded queues after the state change is complete, so
                // attached subscribers cannot perturb ingest results.
                for event in &events {
                    self.obs.registry.add(detector_counter(event), 1);
                    if let Ok(body) = serde_json::to_string(event) {
                        self.subs.publish(KIND_EVENT, &body);
                    }
                }
                self.window.roll(&visible.to_string());
                self.window.observe(batch_us);
                self.obs
                    .registry
                    .observe_latency_us("served.ingest.batch_wall_us", batch_us);
                let span = IngestSpanRecord {
                    name: "served.ingest".to_string(),
                    fed_through: target.to_string(),
                    applied_through: visible.to_string(),
                    days: (visible - next).num_days() + 1,
                    events: emitted,
                    wall_us: batch_us,
                };
                if let Ok(body) = serde_json::to_string(&span) {
                    self.subs.publish(KIND_SPAN, &body);
                }
            }
        }
        // Auto-checkpoint (`--checkpoint-every N`): snapshot through the
        // same path as the explicit command once N days have been
        // ingested since the last save. A failed save is reported and
        // retried after the next batch; it never blocks ingestion.
        if let Some(every) = self.checkpoint_every {
            if self.days_since_checkpoint >= every {
                match self.snapshot(None) {
                    Ok(_) => {
                        self.days_since_checkpoint = 0;
                        self.obs.registry.add("served.checkpoint.auto", 1);
                    }
                    Err(e) => eprintln!("stale-served: auto-checkpoint failed: {e}"),
                }
            }
        }
        self.fed = Some(target);
        let lag = match self.state.through() {
            Some(applied) => (target - applied).num_days().max(0) as u64,
            None => (target - self.feed.start()).num_days().max(0) as u64 + 1,
        };
        self.obs
            .registry
            .observe_depth("served.ingest.lag_days", lag);
        Ok(format!(
            "fed through {target}; applied through {}; {emitted} new event(s), {} since boot",
            self.applied_label(),
            self.events
        ))
    }

    /// Readiness: the world is built (we are answering at all) and every
    /// day the consistency delay makes visible has been applied.
    fn ready(&self) -> Result<String, String> {
        let Some(fed) = self.fed else {
            return Ok("ready; nothing fed yet".to_string());
        };
        let Some(visible) = self.visible_end(fed) else {
            return Ok(format!(
                "ready; fed through {fed}, nothing visible yet (delay {})",
                self.delay_days.max(0)
            ));
        };
        match self.state.through() {
            Some(applied) if applied >= visible => Ok(format!("ready; applied through {applied}")),
            applied => Err(format!(
                "syncing: visible through {visible}, applied through {}",
                match applied {
                    Some(d) => d.to_string(),
                    None => "none".to_string(),
                }
            )),
        }
    }

    fn applied_label(&self) -> String {
        match self.state.through() {
            Some(d) => d.to_string(),
            None => "none".to_string(),
        }
    }

    /// The cached merged view, rebuilt after ingestion. Always audited:
    /// `status`, `explain` and `report` need the decision store.
    fn view(&mut self) -> Result<&StateView, String> {
        if self.view.is_none() {
            // Parents under the live query's root span when the slowlog
            // is armed; a disabled trace makes this a no-op.
            let _span = self.query_trace.child(self.query_span, "view.rebuild");
            let started = Instant::now();
            let view = self.state.view(true).map_err(|e| e.to_string())?;
            self.obs.registry.observe_latency_us(
                "served.view.rebuild_us",
                started.elapsed().as_micros() as u64,
            );
            self.obs.registry.add("served.view.rebuilds", 1);
            self.view = Some(view);
        }
        self.view
            .as_ref()
            .ok_or_else(|| "view unavailable".to_string())
    }

    /// The audited view's decision store.
    fn audit(&mut self) -> Result<&obs::AuditReport, String> {
        self.view()?
            .audit
            .as_ref()
            .ok_or_else(|| "decision audit unavailable".to_string())
    }

    /// The decision store plus its cached fingerprint index. The index
    /// is built once per view rebuild (invalidated together with the
    /// view on ingest), so repeated `explain`/`status <fp>` lookups
    /// stay logarithmic however large the store grows.
    fn audit_indexed(
        &mut self,
    ) -> Result<
        (
            &obs::AuditReport,
            &std::collections::BTreeMap<String, Vec<usize>>,
        ),
        String,
    > {
        self.view()?;
        let audit = self
            .view
            .as_ref()
            .and_then(|v| v.audit.as_ref())
            .ok_or_else(|| "decision audit unavailable".to_string())?;
        if self.explain_index.is_none() {
            let started = Instant::now();
            let index = audit.fingerprint_index();
            self.obs.registry.observe_latency_us(
                "served.explain.index_build_us",
                started.elapsed().as_micros() as u64,
            );
            self.obs.registry.add("served.explain.index_builds", 1);
            self.explain_index = Some(index);
        }
        let index = self
            .explain_index
            .as_ref()
            .ok_or_else(|| "explain index unavailable".to_string())?;
        Ok((audit, index))
    }

    /// The joined timeline for one certificate: layer-1 world facts from
    /// the (lazily extracted) world log and layer-2 audit decisions from
    /// the visible view. Layer-3 spans live client-side, so the daemon
    /// renders the first two layers; `stale-bench timeline --trace`
    /// joins spans offline.
    fn timeline(&mut self, prefix: &str) -> Result<String, String> {
        self.view()?;
        if self.worldlog.is_none() {
            let started = Instant::now();
            let log = worldsim::WorldLog::from_datasets(self.data);
            self.obs.registry.observe_latency_us(
                "served.timeline.extract_us",
                started.elapsed().as_micros() as u64,
            );
            self.worldlog = Some(log);
        }
        let log = self
            .worldlog
            .as_ref()
            .ok_or_else(|| "world log unavailable".to_string())?;
        let audit = self.view.as_ref().and_then(|v| v.audit.as_ref());
        stale_core::timeline::render_timeline(log, audit, None, prefix)
    }

    // stale-lint: entry(actor)
    fn handle(&mut self, req: &Request) -> Result<String, String> {
        if !self.slowlog.enabled() {
            return self.dispatch(req);
        }
        // Slowlog armed: trace the query so a capture carries its span
        // tree. Tracing is write-only — the response bytes are computed
        // exactly as in the untraced path.
        let started = Instant::now();
        let trace = Trace::enabled();
        self.query_trace = trace.clone();
        let resp = {
            // The guard closes the root span when this block ends, just
            // before the tree is rendered below.
            let root = trace.child(SpanId::none(), &format!("query.{}", req.tag()));
            self.query_span = root.id();
            self.dispatch(req)
        };
        self.query_trace = Trace::disabled();
        self.query_span = SpanId::none();
        let wall_us = started.elapsed().as_micros() as u64;
        if self
            .slowlog
            .record(req.tag(), wall_us, &trace.render_tree())
        {
            self.obs.registry.add("served.slowlog.recorded", 1);
        }
        resp
    }

    fn dispatch(&mut self, req: &Request) -> Result<String, String> {
        match req {
            Request::Ping => Ok("pong".to_string()),
            Request::Status(None) => Ok(self.status()),
            Request::Status(Some(prefix)) => self.status_cert(prefix),
            Request::Explain(prefix) => {
                let (audit, index) = self.audit_indexed()?;
                audit.render_explain_indexed(index, prefix)
            }
            Request::Timeline(prefix) => self.timeline(prefix),
            Request::Report => Ok(self.audit()?.render_coverage()),
            Request::Table3 => {
                let view = self.view_tables()?;
                Ok(view.table3())
            }
            Request::Table4 => {
                let view = self.view_tables()?;
                Ok(view.table4())
            }
            Request::FeedDay(target) => {
                let target = match target {
                    Some(d) => *d,
                    None => match self.fed {
                        Some(fed) => fed.succ(),
                        None => self.feed.start(),
                    },
                };
                self.feed_to(target)
            }
            Request::Snapshot(path) => self.snapshot(path.as_deref()),
            Request::Metrics => Ok(self.obs.registry.export_json()),
            Request::Ready => self.ready(),
            Request::Window => Ok(self.window.render("served.ingest.batch_wall_us")),
            Request::SlowLog => Ok(self.slowlog.render()),
            // Intercepted by the connection thread; reaching the actor
            // means a front end forgot to (HTTP has no push mode).
            Request::Subscribe => {
                Err("subscribe is only available on the frame protocol".to_string())
            }
            Request::Shutdown => Ok("bye".to_string()),
        }
    }

    /// A table-render view borrowing the cached merged suite.
    fn view_tables(&mut self) -> Result<stale_core::tables::TableView<'_>, String> {
        // Split borrows: materialize the view first, then borrow it
        // alongside the world references.
        self.view()?;
        let suite = self
            .view
            .as_ref()
            .map(|v| &v.suite)
            .ok_or_else(|| "view unavailable".to_string())?;
        Ok(stale_core::tables::TableView {
            data: self.data,
            psl: self.psl,
            suite,
        })
    }

    fn status(&mut self) -> String {
        let fed = match self.fed {
            Some(d) => d.to_string(),
            None => "none".to_string(),
        };
        let pending = match (self.fed, self.state.through()) {
            (Some(fed), Some(applied)) => (fed - applied).num_days().max(0),
            (Some(fed), None) => (fed - self.feed.start()).num_days().max(0) + 1,
            _ => 0,
        };
        format!(
            "preset {}\nshards {}\ndelay-days {}\nfeed {}..{}\nfed-through {fed}\napplied-through {}\npending-days {pending}\nevents-since-boot {}\nfootprint {}\n",
            self.preset,
            self.state.shards(),
            self.delay_days.max(0),
            self.feed.start(),
            self.feed.end(),
            self.applied_label(),
            self.events,
            self.state.footprint(),
        )
    }

    /// One certificate's verdict summary (the quick form of `explain`).
    fn status_cert(&mut self, prefix: &str) -> Result<String, String> {
        let (audit, index) = self.audit_indexed()?;
        let (cert, chain) = audit.decisions_for_indexed(index, prefix)?;
        let kept = chain
            .iter()
            .filter(|d| d.verdict == obs::audit::Verdict::Kept)
            .count();
        Ok(format!(
            "fingerprint {cert}\ndecisions {}\nkept {kept}\ndropped {}\n",
            chain.len(),
            chain.len() - kept
        ))
    }

    fn snapshot(&mut self, path: Option<&std::path::Path>) -> Result<String, String> {
        let path = path
            .or(self.checkpoint.as_deref())
            .ok_or_else(|| "no snapshot path: pass one or boot with --checkpoint".to_string())?;
        let cp = self
            .state
            .snapshot()
            .ok_or_else(|| "nothing ingested yet; nothing to snapshot".to_string())?;
        let started = Instant::now();
        cp.save(path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        self.obs.registry.add("served.checkpoint.saves", 1);
        self.obs.registry.observe_latency_us(
            "served.checkpoint.save_us",
            started.elapsed().as_micros() as u64,
        );
        Ok(format!(
            "wrote checkpoint through {} ({} shard(s)) to {}",
            cp.through,
            cp.shards,
            path.display()
        ))
    }
}

/// Fixed-vocabulary staleness counter for an event's detector.
fn detector_counter(event: &stale_core::StaleEvent) -> &'static str {
    use obs::audit::Provenance;
    match &event.provenance {
        Some(Provenance::CrlEntry { .. }) => "served.events.kc",
        Some(Provenance::WhoisCreation { .. }) => "served.events.rc",
        Some(Provenance::DnsDeparture { .. }) => "served.events.mtd",
        _ => "served.events.other",
    }
}

/// Read an exported world-fact log and reconstruct its datasets.
///
/// A deliberate blocking boundary, like [`StreamCheckpoint::load`]: this
/// runs once at boot, before the accept loop opens, so nothing is
/// resident yet to stall.
// stale-lint: trusted(blocking-io-in-actor)
fn load_worldlog(path: &std::path::Path) -> Result<WorldDatasets, String> {
    std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|jsonl| worldsim::WorldLog::from_jsonl(&jsonl))
        .and_then(|log| log.to_datasets())
}

/// Build the world and serve actor messages until `Stop` or `shutdown`.
// stale-lint: entry(actor)
fn run_actor(cfg: DaemonConfig, rx: Receiver<ActorMsg>, obs: Obs, subs: Subscribers) {
    let build_start = Instant::now();
    // Boot from an exported world-fact log when one is given: the daemon
    // then serves exactly the facts the log records, with no simulator
    // in the loop. A bad log fails the boot (the accept loop keeps
    // answering with "daemon is shutting down") rather than silently
    // falling back to simulation.
    let data = match &cfg.worldlog {
        Some(path) => match load_worldlog(path) {
            Ok(data) => {
                obs.registry.add("served.boot.worldlog", 1);
                data
            }
            Err(e) => {
                eprintln!("stale-served: cannot boot from {}: {e}", path.display());
                return;
            }
        },
        None => World::run(cfg.scenario),
    };
    let psl = SuffixList::default_list();
    obs.registry.observe_latency_us(
        "served.boot.world_build_us",
        build_start.elapsed().as_micros() as u64,
    );
    let shards = cfg.shards.max(1);
    let restored = cfg
        .checkpoint
        .as_deref()
        .filter(|p| p.exists())
        .and_then(|p| StreamCheckpoint::load(p, data.fingerprint(), shards))
        .and_then(|cp| IncrementalState::restore(&data, &psl, &cp));
    if restored.is_some() {
        obs.registry.add("served.checkpoint.restores", 1);
    }
    let state = restored.unwrap_or_else(|| IncrementalState::new(&data, &psl, shards));
    let fed = state.through();
    let mut actor = Actor {
        preset: cfg.preset,
        data: &data,
        psl: &psl,
        feed: DayFeed::new(&data),
        state,
        fed,
        delay_days: cfg.delay_days,
        checkpoint: cfg.checkpoint,
        events: 0,
        checkpoint_every: cfg.checkpoint_every,
        days_since_checkpoint: 0,
        view: None,
        explain_index: None,
        worldlog: None,
        obs: obs.clone(),
        subs,
        slowlog: match cfg.slow_query_us {
            Some(us) => SlowLog::new(
                us,
                cfg.slow_query_log_len.unwrap_or(obs::slowlog::SLOWLOG_CAP),
            ),
            None => SlowLog::disabled(),
        },
        window: WindowedHistogram::latency_us(cfg.window),
        query_trace: Trace::disabled(),
        query_span: SpanId::none(),
    };
    obs.registry.add("served.ready", 1);
    while let Ok(msg) = rx.recv() {
        match msg {
            ActorMsg::Stop => break,
            ActorMsg::Request { req, reply } => {
                let stop = req == Request::Shutdown;
                let resp = actor.handle(&req);
                let _ = reply.send(resp);
                if stop {
                    // The connection thread signals the daemon's shutdown
                    // channel once the `bye` response is on the wire.
                    break;
                }
            }
        }
    }
}

/// Serve one connection: read request frames, relay them to the actor,
/// write response frames. Every failure path drops the connection
/// without touching daemon state — a hostile peer can only hurt itself.
///
/// A `shutdown` request is signalled on `shutdown_tx` only after its
/// response frame has been written (or the write has failed), so the
/// process never exits before the `bye` reaches the wire.
// stale-lint: entry(conn)
fn handle_conn(
    stream: TcpStream,
    tx: Sender<ActorMsg>,
    obs: Obs,
    max_frame: usize,
    shutdown_tx: Sender<()>,
    subs: Subscribers,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match proto::read_frame(&mut reader, max_frame) {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized length prefix: the stream is unframed from
                // here, so reply (best-effort) and close.
                obs.registry.add("served.conn.oversized_frames", 1);
                let resp = Err(e.to_string());
                let _ = proto::write_frame(&mut writer, &proto::encode_response(&resp));
                return;
            }
            // EOF, truncated frame or transport error: just close.
            Err(_) => return,
        };
        let started = Instant::now();
        let parsed = match String::from_utf8(payload) {
            Err(_) => Err("request payload is not UTF-8".to_string()),
            Ok(line) => parse_request(&line),
        };
        // `subscribe` flips the connection into push mode: it is served
        // here, never relayed — the actor publishes to bounded queues
        // and must not block on any connection.
        if let Ok(Request::Subscribe) = parsed {
            let (id, rx) = subs.attach();
            let resp = Ok(format!(
                "subscribed #{id}; streaming event/span records until disconnect"
            ));
            obs.registry.observe_latency_us(
                "served.query.subscribe_us",
                started.elapsed().as_micros() as u64,
            );
            if proto::write_frame(&mut writer, &proto::encode_response(&resp)).is_err() {
                subs.detach(id);
                return;
            }
            while let Ok(record) = rx.recv() {
                if proto::write_frame(&mut writer, record.as_bytes()).is_err() {
                    break;
                }
            }
            subs.detach(id);
            return;
        }
        let (tag, resp) = match parsed {
            Err(e) => ("invalid", Err(e)),
            Ok(req) => {
                let tag = req.tag();
                (tag, ask_actor(&tx, req))
            }
        };
        obs.registry.observe_latency_us(
            &format!("served.query.{tag}_us"),
            started.elapsed().as_micros() as u64,
        );
        if resp.is_err() {
            obs.registry.add("served.query.errors", 1);
        }
        let written = proto::write_frame(&mut writer, &proto::encode_response(&resp));
        if tag == "shutdown" {
            let _ = shutdown_tx.send(());
            return;
        }
        if written.is_err() {
            // Client disconnected mid-response; nothing shared is dirty.
            return;
        }
    }
}

/// Accept connections until the stop flag is raised (a wake connection
/// is made by [`Daemon::stop`] so the blocking accept returns).
fn run_accept(
    listener: TcpListener,
    tx: Sender<ActorMsg>,
    obs: Obs,
    stop: Arc<AtomicBool>,
    max_frame: usize,
    shutdown_tx: Sender<()>,
    subs: Subscribers,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        obs.registry.add("served.conn.accepted", 1);
        let tx = tx.clone();
        let obs = obs.clone();
        let shutdown_tx = shutdown_tx.clone();
        let subs = subs.clone();
        let _ = std::thread::Builder::new()
            .name("served-conn".to_string())
            .spawn(move || handle_conn(stream, tx, obs, max_frame, shutdown_tx, subs));
    }
}

/// Accept HTTP connections until the stop flag is raised (the same
/// wake-connect trick as the frame listener).
fn run_http_accept(listener: TcpListener, tx: Sender<ActorMsg>, obs: Obs, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        obs.registry.add("served.http.accepted", 1);
        let tx = tx.clone();
        let obs = obs.clone();
        let _ = std::thread::Builder::new()
            .name("served-http".to_string())
            .spawn(move || crate::http::handle_http_conn(stream, tx, obs));
    }
}

/// A running daemon: the state-actor plus the TCP front end.
///
/// Dropping the daemon shuts it down (joining both threads); `shutdown`
/// over the wire unblocks [`Daemon::wait_shutdown`] so a binary can
/// serve until a client asks it to exit.
pub struct Daemon {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    tx: Sender<ActorMsg>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    http_accept: Option<JoinHandle<()>>,
    actor: Option<JoinHandle<()>>,
    shutdown_rx: Receiver<()>,
    obs: Obs,
    subs: Subscribers,
}

impl Daemon {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and boot the state-actor.
    ///
    /// Returns as soon as the socket is bound — the world builds in the
    /// actor thread, and early requests queue until it is ready, so a
    /// successful `ping` doubles as a readiness probe.
    // The listener is bound on the caller's thread before the actor
    // spawns; nothing is resident yet to stall.
    // stale-lint: trusted(blocking-io-in-actor)
    pub fn start(cfg: DaemonConfig, listen: &str) -> io::Result<Daemon> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let http_listener = match cfg.http.as_deref() {
            Some(http) => Some(TcpListener::bind(http)?),
            None => None,
        };
        let http_addr = match &http_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let obs = Obs::disabled();
        let subs = Subscribers::new(cfg.sub_queue, obs.registry.clone());
        let max_frame = cfg.max_frame.max(proto::HEADER_LEN);
        let (tx, rx) = mpsc::channel();
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let stop = Arc::new(AtomicBool::new(false));
        let actor_obs = obs.clone();
        let actor_subs = subs.clone();
        let actor = std::thread::Builder::new()
            .name("served-state".to_string())
            .spawn(move || run_actor(cfg, rx, actor_obs, actor_subs))?;
        let accept_tx = tx.clone();
        let accept_obs = obs.clone();
        let accept_stop = Arc::clone(&stop);
        let accept_subs = subs.clone();
        let accept = std::thread::Builder::new()
            .name("served-accept".to_string())
            .spawn(move || {
                run_accept(
                    listener,
                    accept_tx,
                    accept_obs,
                    accept_stop,
                    max_frame,
                    shutdown_tx,
                    accept_subs,
                )
            })?;
        let http_accept = match http_listener {
            Some(listener) => {
                let http_tx = tx.clone();
                let http_obs = obs.clone();
                let http_stop = Arc::clone(&stop);
                Some(
                    std::thread::Builder::new()
                        .name("served-http-accept".to_string())
                        .spawn(move || run_http_accept(listener, http_tx, http_obs, http_stop))?,
                )
            }
            None => None,
        };
        Ok(Daemon {
            addr,
            http_addr,
            tx,
            stop,
            accept: Some(accept),
            http_accept,
            actor: Some(actor),
            shutdown_rx,
            obs,
            subs,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound HTTP telemetry address, when `--http` is configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The daemon's metrics registry (latency histograms, ingest lag).
    pub fn registry(&self) -> &obs::Registry {
        &self.obs.registry
    }

    /// Block until a client sends `shutdown` (or the actor exits).
    pub fn wait_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Stop the daemon and join its threads.
    pub fn stop(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.tx.send(ActorMsg::Stop);
        // Close every subscriber queue so push-mode connection threads
        // unblock and exit.
        self.subs.close_all();
        // Wake the blocking accepts so they observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(http_addr) = self.http_addr {
            let _ = TcpStream::connect(http_addr);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.http_accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.actor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(parse_request("  table4  ").unwrap(), Request::Table4);
        assert_eq!(parse_request("status").unwrap(), Request::Status(None));
        assert_eq!(
            parse_request("status ab01").unwrap(),
            Request::Status(Some("ab01".to_string()))
        );
        assert_eq!(
            parse_request("explain ab01").unwrap(),
            Request::Explain("ab01".to_string())
        );
        assert_eq!(
            parse_request("timeline ab01").unwrap(),
            Request::Timeline("ab01".to_string())
        );
        assert_eq!(parse_request("feed-day").unwrap(), Request::FeedDay(None));
        assert_eq!(
            parse_request("feed-day 2022-01-05").unwrap(),
            Request::FeedDay(Some(Date::parse("2022-01-05").unwrap()))
        );
        assert_eq!(
            parse_request("snapshot /tmp/cp.json").unwrap(),
            Request::Snapshot(Some(PathBuf::from("/tmp/cp.json")))
        );
        assert_eq!(parse_request("ready").unwrap(), Request::Ready);
        assert_eq!(parse_request("window").unwrap(), Request::Window);
        assert_eq!(parse_request("slowlog").unwrap(), Request::SlowLog);
        assert_eq!(parse_request("subscribe").unwrap(), Request::Subscribe);
        for bad in [
            "",
            "   ",
            "frobnicate",
            "ping now",
            "explain",
            "explain a b",
            "timeline",
            "timeline a b",
            "feed-day not-a-date",
            "table4 extra",
            "ready now",
            "slowlog 5",
            "subscribe events",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn request_tags_are_fixed() {
        assert_eq!(Request::Ping.tag(), "ping");
        assert_eq!(Request::Timeline(String::new()).tag(), "timeline");
        assert_eq!(Request::FeedDay(None).tag(), "feed-day");
        assert_eq!(Request::Snapshot(None).tag(), "snapshot");
        assert_eq!(Request::Ready.tag(), "ready");
        assert_eq!(Request::Window.tag(), "window");
        assert_eq!(Request::SlowLog.tag(), "slowlog");
        assert_eq!(Request::Subscribe.tag(), "subscribe");
    }
}
