//! `stale-served` — a resident query daemon over the incremental
//! detection state and the decision-audit store.
//!
//! The batch pipeline answers one question per process: build the
//! world, run the detectors, render the tables, exit. This crate keeps
//! the expensive part resident instead: a daemon boots a world once,
//! ingests [`worldsim::DayFeed`] day-deltas through
//! [`engine::IncrementalState`] as they are fed, and serves concurrent
//! queries — per-certificate verdicts (`status`, `explain`), the
//! paper's live tables (`table3`, `table4`), audit coverage (`report`)
//! — over a hand-rolled length-prefixed TCP protocol ([`proto`], no
//! network dependencies).
//!
//! The correctness anchor is **batch equivalence**: every query answer
//! is byte-identical to a fresh batch run over the same ingested days,
//! for every shard width, across snapshot/restart boundaries
//! ([`daemon`] documents how, `tests/served_equivalence.rs` at the
//! workspace root proves it). On top of that, a configurable
//! *consistency delay* (in fed days, never wall time) holds the newest
//! days back from queries, modeling the lag between a feed landing and
//! its results being trusted downstream.
//!
//! The daemon also carries a **live telemetry plane**: a read-only
//! HTTP/1.1 front end ([`http`], `--http ADDR`) for scrapes and
//! probes, push subscriptions over the frame protocol ([`subs`],
//! `subscribe`) streaming stale events and ingest span records, and a
//! bounded slow-query log (`--slow-query-us`). All of it is write-only
//! observability: answers stay byte-identical with every telemetry
//! feature on.

pub mod client;
pub mod daemon;
pub mod http;
pub mod proto;
pub mod subs;

pub use client::{Client, Subscription};
pub use daemon::{parse_request, Daemon, DaemonConfig, Request};
pub use subs::Subscribers;
