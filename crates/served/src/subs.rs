//! The subscriber registry: push delivery of ingest records to attached
//! connections.
//!
//! A client that sends `subscribe` flips its connection into push mode:
//! the state-actor publishes one record per [`engine`] `StaleEvent` and
//! one span-completion record per ingest batch, and the connection
//! thread relays them as frames. Delivery is **bounded and lossy by
//! design** — each subscriber owns a fixed-depth queue, and a full
//! queue drops the record (counted under `served.sub.dropped`) instead
//! of blocking the actor. The actor therefore never waits on a slow
//! subscriber, which is what keeps ingestion byte-identical with zero
//! or many subscribers attached (`tests/served_equivalence.rs` proves
//! it): publishing is fire-and-forget, off the response path entirely.

use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Record kind tag for a serialized `StaleEvent`.
pub const KIND_EVENT: &str = "event";
/// Record kind tag for an ingest span-completion record.
pub const KIND_SPAN: &str = "span";

struct Sub {
    id: u64,
    tx: SyncSender<String>,
}

struct Inner {
    next_id: u64,
    subs: Vec<Sub>,
}

/// Shared registry of attached subscribers. Cloning shares the set.
#[derive(Clone)]
pub struct Subscribers {
    inner: Arc<Mutex<Inner>>,
    queue: usize,
    registry: obs::Registry,
}

impl Subscribers {
    /// An empty registry; each subscriber gets a queue of depth `queue`.
    pub fn new(queue: usize, registry: obs::Registry) -> Subscribers {
        Subscribers {
            inner: Arc::new(Mutex::new(Inner {
                next_id: 0,
                subs: Vec::new(),
            })),
            queue: queue.max(1),
            registry,
        }
    }

    /// Attach a subscriber; returns its id and the receiving end of its
    /// bounded queue.
    pub fn attach(&self) -> (u64, Receiver<String>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(self.queue);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.next_id;
        inner.next_id = inner.next_id.saturating_add(1);
        inner.subs.push(Sub { id, tx });
        self.registry.add("served.sub.attached", 1);
        (id, rx)
    }

    /// Detach a subscriber (its queue closes; pending records drain).
    pub fn detach(&self, id: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.subs.retain(|s| s.id != id);
        self.registry.add("served.sub.detached", 1);
    }

    /// Subscribers currently attached.
    pub fn active(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .subs
            .len()
    }

    /// Per-subscriber queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue
    }

    /// Drop every subscriber (daemon shutdown): queues close, so each
    /// connection thread's blocking `recv` errors out and it can exit.
    pub fn close_all(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.subs.clear();
    }

    /// Publish one record (`kind` newline `body` as the frame payload)
    /// to every subscriber. Never blocks: a full queue drops the record
    /// and counts `served.sub.dropped`; a disconnected subscriber is
    /// pruned.
    pub fn publish(&self, kind: &str, body: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.subs.is_empty() {
            return;
        }
        let payload = format!("{kind}\n{body}");
        let mut dropped = 0u64;
        inner
            .subs
            .retain(|sub| match sub.tx.try_send(payload.clone()) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) => {
                    dropped += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        if dropped > 0 {
            self.registry.add("served.sub.dropped", dropped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_every_subscriber() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(4, reg.clone());
        let (_a, rx_a) = subs.attach();
        let (_b, rx_b) = subs.attach();
        assert_eq!(subs.active(), 2);
        subs.publish(KIND_EVENT, "{\"x\":1}");
        assert_eq!(rx_a.recv().ok().as_deref(), Some("event\n{\"x\":1}"));
        assert_eq!(rx_b.recv().ok().as_deref(), Some("event\n{\"x\":1}"));
        assert_eq!(reg.snapshot().counters["served.sub.attached"], 2);
    }

    #[test]
    fn full_queue_drops_and_counts_without_blocking() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(2, reg.clone());
        let (_id, rx) = subs.attach();
        for i in 0..5 {
            subs.publish(KIND_SPAN, &format!("{{\"i\":{i}}}"));
        }
        // The first two records queued; the rest dropped.
        assert_eq!(rx.try_recv().ok().as_deref(), Some("span\n{\"i\":0}"));
        assert_eq!(rx.try_recv().ok().as_deref(), Some("span\n{\"i\":1}"));
        assert!(rx.try_recv().is_err());
        assert_eq!(reg.snapshot().counters["served.sub.dropped"], 3);
        assert_eq!(subs.active(), 1, "a lossy subscriber stays attached");
    }

    #[test]
    fn disconnected_subscriber_is_pruned() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(2, reg.clone());
        let (id, rx) = subs.attach();
        drop(rx);
        subs.publish(KIND_EVENT, "{}");
        assert_eq!(subs.active(), 0);
        // Detach after prune is a no-op.
        subs.detach(id);
        assert_eq!(subs.active(), 0);
    }

    #[test]
    fn detach_closes_the_queue() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(2, reg);
        let (id, rx) = subs.attach();
        subs.detach(id);
        assert_eq!(subs.active(), 0);
        assert!(rx.recv().is_err(), "sender dropped on detach");
    }

    #[test]
    fn drops_count_once_per_subscriber_per_record() {
        // One fast and one slow subscriber behind depth-1 queues: every
        // record the slow queue rejects counts exactly once, and the
        // fast subscriber's deliveries never inflate the counter.
        let reg = obs::Registry::new();
        let subs = Subscribers::new(1, reg.clone());
        let (_slow, slow_rx) = subs.attach();
        let (_fast, fast_rx) = subs.attach();
        subs.publish(KIND_EVENT, "{\"i\":0}");
        for i in 1..4 {
            // The fast subscriber drains before each publish; the slow
            // one never does, so its queue stays full.
            assert!(fast_rx.try_recv().is_ok());
            subs.publish(KIND_EVENT, &format!("{{\"i\":{i}}}"));
        }
        assert_eq!(reg.snapshot().counters["served.sub.dropped"], 3);
        assert_eq!(slow_rx.try_recv().ok().as_deref(), Some("event\n{\"i\":0}"));
        assert!(slow_rx.try_recv().is_err(), "dropped records never arrive");
        assert_eq!(subs.active(), 2, "lossy subscribers stay attached");
    }

    #[test]
    fn draining_restores_delivery_without_extra_drop_counts() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(1, reg.clone());
        let (_id, rx) = subs.attach();
        subs.publish(KIND_SPAN, "{\"i\":0}");
        subs.publish(KIND_SPAN, "{\"i\":1}"); // queue full: dropped
        assert_eq!(rx.try_recv().ok().as_deref(), Some("span\n{\"i\":0}"));
        subs.publish(KIND_SPAN, "{\"i\":2}"); // queued again after drain
        assert_eq!(rx.try_recv().ok().as_deref(), Some("span\n{\"i\":2}"));
        assert_eq!(reg.snapshot().counters["served.sub.dropped"], 1);
    }

    #[test]
    fn pruning_a_disconnected_subscriber_counts_no_drops() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(2, reg.clone());
        let (_gone, rx_gone) = subs.attach();
        let (_live, rx_live) = subs.attach();
        drop(rx_gone);
        subs.publish(KIND_EVENT, "{}");
        assert_eq!(subs.active(), 1, "disconnected subscriber pruned");
        assert_eq!(rx_live.try_recv().ok().as_deref(), Some("event\n{}"));
        assert!(
            !reg.snapshot().counters.contains_key("served.sub.dropped"),
            "a disconnect is a prune, not a drop"
        );
    }

    #[test]
    fn publish_to_nobody_is_free() {
        let reg = obs::Registry::new();
        let subs = Subscribers::new(1, reg.clone());
        subs.publish(KIND_EVENT, "{}");
        assert!(!reg.snapshot().counters.contains_key("served.sub.dropped"));
    }
}
