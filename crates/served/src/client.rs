//! A blocking protocol client: one TCP connection, request/response
//! frames in lockstep. Used by `stale-bench query`, the `--server`
//! modes of `stale-bench explain`/`report`, and the workspace tests.

use crate::proto;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `stale-served` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a daemon address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Connect with retries — for callers racing a daemon that is still
    /// binding its socket (`stale-bench query` against a just-spawned
    /// process). Requests queued before the world finishes building
    /// simply block, so a connected client needs no further waiting.
    pub fn connect_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        attempts: u32,
        backoff: Duration,
    ) -> io::Result<Client> {
        let mut last = io::Error::new(io::ErrorKind::NotConnected, "no connection attempts made");
        for attempt in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
            }
        }
        Err(last)
    }

    /// Send one command line and read the response: `Ok(body)` for an
    /// `ok` response, `Err(message)` for an `err` response. Transport
    /// and framing failures surface as the outer `io::Error`.
    pub fn request(&mut self, line: &str) -> io::Result<Result<String, String>> {
        proto::write_frame(&mut self.writer, line.as_bytes())?;
        let payload = proto::read_frame(&mut self.reader, proto::MAX_FRAME)?;
        proto::decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Send `subscribe` and flip this connection into push mode. On
    /// success the daemon's acknowledgement and a [`Subscription`]
    /// reading the pushed records are returned; an `err` response
    /// surfaces as `InvalidData`.
    pub fn subscribe(mut self) -> io::Result<(String, Subscription)> {
        proto::write_frame(&mut self.writer, b"subscribe")?;
        let payload = proto::read_frame(&mut self.reader, proto::MAX_FRAME)?;
        let ack = proto::decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok((
            ack,
            Subscription {
                reader: self.reader,
            },
        ))
    }
}

/// The receiving end of a `subscribe`d connection: one pushed record
/// per frame, each `kind\nbody` — kind `event` (a serialized
/// `StaleEvent`) or `span` (an ingest-batch completion record).
pub struct Subscription {
    reader: BufReader<TcpStream>,
}

impl Subscription {
    /// Block for the next pushed record, split into `(kind, body)`.
    /// `Err(UnexpectedEof)` once the daemon closes the stream.
    pub fn next_record(&mut self) -> io::Result<(String, String)> {
        let payload = proto::read_frame(&mut self.reader, proto::MAX_FRAME)?;
        let text = String::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "record is not UTF-8"))?;
        match text.split_once('\n') {
            Some((kind, body)) => Ok((kind.to_string(), body.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "record missing kind separator",
            )),
        }
    }
}
