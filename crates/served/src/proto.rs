//! The wire protocol: length-prefixed UTF-8 frames over TCP.
//!
//! Hand-rolled on `std::net` — the workspace takes no network
//! dependencies. A frame is a 4-byte big-endian length followed by that
//! many payload bytes. Requests are one command line (`table4`,
//! `explain <fingerprint>`, …); responses are `ok\n<body>` or
//! `err\n<message>`. Both directions enforce a maximum frame length
//! ([`MAX_FRAME`] by default): a peer declaring a larger frame is
//! refused before any payload is read, so a hostile or corrupt length
//! prefix cannot make the daemon allocate unboundedly.
//!
//! Every function here is panic-free on arbitrary input — the daemon
//! side sits inside `stale-lint`'s `panic-in-shard` scope, and a
//! malformed frame must produce an error (or a closed connection),
//! never a crash.

use std::io::{self, Read, Write};

/// Default maximum frame length (16 MiB) — comfortably above the
/// largest rendered table or metrics export, far below anything that
/// could exhaust memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Length-prefix width in bytes.
pub const HEADER_LEN: usize = 4;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds a u32 length",
        )
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, refusing any declared length above `max`.
///
/// A refused length returns [`io::ErrorKind::InvalidData`] without
/// consuming the payload — the stream is no longer framed after that,
/// so the caller should reply with an error (if it can) and close. A
/// short read (peer closed mid-frame) surfaces as
/// [`io::ErrorKind::UnexpectedEof`] from `read_exact`.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds the {max}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Encode a response payload: `ok\n<body>` or `err\n<message>`.
pub fn encode_response(resp: &Result<String, String>) -> Vec<u8> {
    let (tag, text) = match resp {
        Ok(body) => ("ok\n", body.as_str()),
        Err(msg) => ("err\n", msg.as_str()),
    };
    let mut out = Vec::with_capacity(tag.len() + text.len());
    out.extend_from_slice(tag.as_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

/// Decode a response payload back into `Ok(body)` / `Err(message)`.
/// The outer `Err` means the payload is not a response at all.
pub fn decode_response(payload: &[u8]) -> Result<Result<String, String>, String> {
    let text =
        std::str::from_utf8(payload).map_err(|_| "response payload is not UTF-8".to_string())?;
    match text.split_once('\n') {
        Some(("ok", body)) => Ok(Ok(body.to_string())),
        Some(("err", msg)) => Ok(Err(msg.to_string())),
        _ => Err(format!(
            "malformed response header {:?}",
            text.lines().next().unwrap_or_default()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"table4").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), b"table4");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME).is_err());
    }

    #[test]
    fn oversized_length_is_refused_before_payload() {
        let mut buf = Vec::from(u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"whatever");
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_eof() {
        let mut buf = Vec::from(8u32.to_be_bytes());
        buf.extend_from_slice(b"only5");
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn responses_roundtrip() {
        let ok = encode_response(&Ok("body\nlines".to_string()));
        assert_eq!(decode_response(&ok).unwrap(), Ok("body\nlines".to_string()));
        let err = encode_response(&Err("bad".to_string()));
        assert_eq!(decode_response(&err).unwrap(), Err("bad".to_string()));
        assert!(decode_response(b"ok-without-newline").is_err());
        assert!(decode_response(&[0xff, 0xfe]).is_err());
    }
}
