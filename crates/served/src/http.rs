//! The read-only HTTP/1.1 telemetry plane.
//!
//! A hand-rolled, dependency-free front end over the same state-actor
//! the frame protocol talks to — one listener (`--http ADDR`), one
//! thread per connection, one `GET` per connection (`Connection:
//! close`). Routes:
//!
//! | route                | source                                    |
//! |----------------------|-------------------------------------------|
//! | `/metrics`           | registry Prometheus export (no actor hop) |
//! | `/healthz`           | actor `ping` round-trip                   |
//! | `/readyz`            | actor `ready` (delay satisfied → 200)     |
//! | `/status[?prefix=P]` | actor `status [P]`                        |
//! | `/timeline?fp=P`     | actor `timeline P` (joined world + audit) |
//! | `/tables/table3`     | actor `table3`                            |
//! | `/tables/table4`     | actor `table4`                            |
//! | `/slowlog`           | actor `slowlog`                           |
//! | `/window`            | actor `window`                            |
//!
//! Every actor-backed body is **the frame-protocol response body,
//! verbatim** — both fronts call [`ask_actor`] with the same
//! [`Request`], so HTTP bytes equal frame bytes equal batch bytes
//! (`tests/served_equivalence.rs` asserts the chain). The plane is
//! strictly read-only: no route feeds, snapshots or shuts down, so an
//! exposed scrape port cannot mutate daemon state.
//!
//! Robustness mirrors the frame protocol's: bounded request line
//! (414 past [`MAX_REQUEST_LINE`]) and header block (431 past
//! [`MAX_HEADER_BYTES`]), `GET`-only (405), malformed syntax (400),
//! and every failure path drops only the offending connection
//! (`crates/served/tests/http_robustness.rs`).

// Request self-timing with `Instant` is sanctioned here for the same
// reason as in the daemon module: it feeds the latency histograms,
// never detection results.
// stale-lint: trusted-file(wallclock-in-detector)

use crate::daemon::{ask_actor, ActorMsg, Request};
use obs::Obs;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::mpsc::Sender;
use std::time::Instant;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4 * 1024;
/// Longest accepted header block (all header lines together).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// How reading a request can fail, mapped to a response status.
enum HttpError {
    /// Malformed syntax (bad request line, non-UTF-8, bad query).
    BadRequest(String),
    /// Request line over [`MAX_REQUEST_LINE`].
    UriTooLong,
    /// Header block over [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// Transport error or EOF mid-request: nothing to answer.
    Closed,
}

/// One parsed request: the method and the request target.
struct HttpRequest {
    method: String,
    target: String,
}

/// Serve one HTTP connection: read one request, answer it, close.
// stale-lint: entry(conn)
pub(crate) fn handle_http_conn(stream: TcpStream, tx: Sender<ActorMsg>, obs: Obs) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let started = Instant::now();
    obs.registry.add("served.http.requests", 1);
    let (status, reason, route_tag, body, allow) = match read_request(&mut reader) {
        Ok(req) => respond(&req, &tx, &obs),
        Err(HttpError::BadRequest(msg)) => {
            (400, "Bad Request", "invalid", format!("{msg}\n"), None)
        }
        Err(HttpError::UriTooLong) => (
            414,
            "URI Too Long",
            "invalid",
            format!("request line over {MAX_REQUEST_LINE} bytes\n"),
            None,
        ),
        Err(HttpError::HeadersTooLarge) => (
            431,
            "Request Header Fields Too Large",
            "invalid",
            format!("header block over {MAX_HEADER_BYTES} bytes\n"),
            None,
        ),
        Err(HttpError::Closed) => return,
    };
    if status >= 400 {
        obs.registry.add("served.http.errors", 1);
    }
    obs.registry.observe_latency_us(
        &format!("served.http.{route_tag}_us"),
        started.elapsed().as_micros() as u64,
    );
    let _ = write_response(&mut writer, status, reason, &body, allow);
}

/// Read and parse one request (request line + headers; bodies are not
/// accepted — `GET` has none).
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<HttpRequest, HttpError> {
    let line = match read_line_bounded(reader, MAX_REQUEST_LINE) {
        Ok(Some(line)) => line,
        Ok(None) => return Err(HttpError::Closed),
        Err(LineError::TooLong) => return Err(HttpError::UriTooLong),
        Err(LineError::NotUtf8) => {
            return Err(HttpError::BadRequest(
                "request line is not UTF-8".to_string(),
            ))
        }
        Err(LineError::Io) => return Err(HttpError::Closed),
    };
    let mut words = line.split_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (words.next(), words.next(), words.next(), words.next())
    else {
        return Err(HttpError::BadRequest(
            "malformed request line (expected METHOD TARGET HTTP/1.x)".to_string(),
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    // Drain headers up to the blank line, enforcing the block bound.
    // Header values are otherwise ignored: no route needs them.
    let mut header_bytes = 0usize;
    loop {
        let header = match read_line_bounded(reader, MAX_HEADER_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) | Err(LineError::Io) => return Err(HttpError::Closed),
            Err(LineError::TooLong) => return Err(HttpError::HeadersTooLarge),
            Err(LineError::NotUtf8) => {
                return Err(HttpError::BadRequest("header is not UTF-8".to_string()))
            }
        };
        if header.is_empty() {
            break;
        }
        header_bytes = header_bytes.saturating_add(header.len() + 2);
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
    }
    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
    })
}

/// Route the request and produce `(status, reason, route_tag, body,
/// allow_header)`. Route tags are a fixed vocabulary: client input can
/// never mint metric names.
fn respond(
    req: &HttpRequest,
    tx: &Sender<ActorMsg>,
    obs: &Obs,
) -> (
    u16,
    &'static str,
    &'static str,
    String,
    Option<&'static str>,
) {
    let (path, query) = match req.target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (req.target.as_str(), None),
    };
    if req.method != "GET" {
        return (
            405,
            "Method Not Allowed",
            "invalid",
            "telemetry plane is read-only; only GET is supported\n".to_string(),
            Some("GET"),
        );
    }
    let (tag, actor_req) = match path {
        "/metrics" => ("metrics", None),
        "/healthz" => ("healthz", Some(Request::Ping)),
        "/readyz" => ("readyz", Some(Request::Ready)),
        "/status" => {
            let prefix = match query {
                None | Some("") => None,
                Some(q) => match q.strip_prefix("prefix=") {
                    Some(p) if !p.is_empty() && !p.contains('&') => Some(p.to_string()),
                    _ => {
                        return (
                            400,
                            "Bad Request",
                            "status",
                            "unsupported query (expected ?prefix=<fingerprint-prefix>)\n"
                                .to_string(),
                            None,
                        )
                    }
                },
            };
            ("status", Some(Request::Status(prefix)))
        }
        "/timeline" => {
            let prefix = match query.and_then(|q| q.strip_prefix("fp=")) {
                Some(p) if !p.is_empty() && !p.contains('&') => p.to_string(),
                _ => {
                    return (
                        400,
                        "Bad Request",
                        "timeline",
                        "unsupported query (expected ?fp=<fingerprint-prefix>)\n".to_string(),
                        None,
                    )
                }
            };
            ("timeline", Some(Request::Timeline(prefix)))
        }
        "/tables/table3" => ("table3", Some(Request::Table3)),
        "/tables/table4" => ("table4", Some(Request::Table4)),
        "/slowlog" => ("slowlog", Some(Request::SlowLog)),
        "/window" => ("window", Some(Request::Window)),
        _ => {
            return (
                404,
                "Not Found",
                "invalid",
                "no such route\n".to_string(),
                None,
            )
        }
    };
    if query.is_some() && path != "/status" && path != "/timeline" {
        return (
            400,
            "Bad Request",
            tag,
            "this route takes no query parameters\n".to_string(),
            None,
        );
    }
    let Some(actor_req) = actor_req else {
        // `/metrics` is served straight off the shared registry — no
        // actor hop, so scrapes stay live even mid-ingest.
        return (200, "OK", tag, obs.registry.export_prom(), None);
    };
    match (tag, ask_actor(tx, actor_req)) {
        // The body is the frame-protocol response body, verbatim.
        (_, Ok(body)) => (200, "OK", tag, body, None),
        // Not-ready and shutdown are service states, not client errors.
        ("readyz" | "healthz", Err(msg)) => {
            (503, "Service Unavailable", tag, format!("{msg}\n"), None)
        }
        (_, Err(msg)) if msg.contains("shutting down") || msg.contains("dropped the request") => {
            (503, "Service Unavailable", tag, format!("{msg}\n"), None)
        }
        // Lookup misses (unknown fingerprint prefix) and the like.
        (_, Err(msg)) => (404, "Not Found", tag, format!("{msg}\n"), None),
    }
}

/// Write one response and flush. `Connection: close` always: the one
/// request this connection carried is answered.
fn write_response(
    writer: &mut BufWriter<TcpStream>,
    status: u16,
    reason: &str,
    body: &str,
    allow: Option<&str>,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    if let Some(allow) = allow {
        head.push_str(&format!("Allow: {allow}\r\n"));
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

/// How reading one line can fail.
enum LineError {
    TooLong,
    NotUtf8,
    Io,
}

/// Read one CRLF- (or LF-) terminated line with a hard byte bound.
/// `Ok(None)` is clean EOF before any byte.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max: usize,
) -> Result<Option<String>, LineError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf().map_err(|_| LineError::Io)?;
        if buf.is_empty() {
            // EOF: a clean close before the line is "no request".
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(LineError::Io)
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len().saturating_add(pos) > max {
                    return Err(LineError::TooLong);
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(_) => Err(LineError::NotUtf8),
                };
            }
            None => {
                if line.len().saturating_add(buf.len()) > max {
                    return Err(LineError::TooLong);
                }
                line.extend_from_slice(buf);
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}
