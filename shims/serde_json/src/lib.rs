//! Offline shim for `serde_json` 1 — `to_string`, `to_string_pretty` and
//! `from_str` over the shim `serde` crate's `value::Value` model.

use serde::de::Deserialize;
use serde::ser::Serialize;
use serde::value::Value;
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json(None))
}

/// Serialize to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json(Some(2)))
}

/// Serialize to a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize from a `Value` tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    Ok(T::deserialize(v)?)
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the raw bytes, strings decoded as UTF-8.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Value::Null),
            Some(b't') => self.eat_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped span.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(
            parse(r#""a\"b\ncA""#).unwrap(),
            Value::Str("a\"b\nA".replace('A', "c\u{41}"))
        );
    }

    #[test]
    fn roundtrip_collections() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Str("x".into())));
        let rendered = v.to_json(None);
        assert_eq!(parse(&rendered).unwrap(), v);
        let pretty = v.to_json(Some(2));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn u128_roundtrip() {
        let big = u128::MAX.to_string();
        assert_eq!(parse(&big).unwrap(), Value::UInt(u128::MAX));
    }

    #[test]
    fn typed_roundtrip() {
        let data: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let text = to_string(&data).unwrap();
        let back: Vec<(String, u64)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
    }
}
