//! Offline shim for `proptest` 1 — the API subset this workspace uses.
//!
//! Key differences from real proptest (see `shims/README.md`):
//! * the per-test RNG is seeded from the test's name, so runs are fully
//!   deterministic and failures reproduce;
//! * failing cases are reported but **not shrunk**;
//! * string strategies support the character-class regex subset the
//!   workspace uses (`[a-z]`, ranges, escapes, `{m,n}`/`{n}`/`*`/`+`/`?`),
//!   not full regex.

/// Test-case driving: config, RNG, pass/reject/fail plumbing.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// An assumption rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The RNG handed to strategies; seeded from the test name.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic RNG for the named test.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Drive one proptest-block test: draw cases until `config.cases`
    /// successes, panicking on the first failure.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).saturating_add(256);
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejected}; last: {why})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing cases:\n{msg}\n\
                         (shim proptest does not shrink; rerun reproduces deterministically)"
                    );
                }
            }
        }
    }
}

/// Strategies: how to generate values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `pred`, re-drawing (bounded) instead.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }
    }

    /// Always the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` adapter.
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason)
        }
    }

    /// `prop_oneof!` support: uniform choice between boxed strategies.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the macro's boxed arms.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    /// Box a strategy for `Union` (monomorphization helper for the macro).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Character-class regex subset strings: `"[a-z][a-z0-9-]{0,8}"` etc.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    class
                }
                '\\' => {
                    i += 1;
                    let c =
                        unescape(chars.get(i).copied().unwrap_or_else(|| {
                            panic!("string strategy `{pattern}`: dangling escape")
                        }));
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (lo, hi, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                let idx = rng.gen_range(0..alphabet.len());
                out.push(alphabet[idx]);
            }
        }
        out
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parse a `[...]` class starting just after the `[`; returns the
    /// expanded alphabet and the index just past the `]`.
    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut alphabet = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                unescape(chars[i])
            } else {
                chars[i]
            };
            i += 1;
            // Range `a-z` unless the `-` is the final class member.
            if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                i += 1;
                let end = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i])
                } else {
                    chars[i]
                };
                i += 1;
                alphabet.extend((c as u32..=end as u32).filter_map(char::from_u32));
            } else {
                alphabet.push(c);
            }
        }
        assert!(
            i < chars.len(),
            "string strategy `{pattern}`: unterminated character class"
        );
        assert!(
            !alphabet.is_empty(),
            "string strategy `{pattern}`: empty character class"
        );
        (alphabet, i + 1)
    }

    /// Parse an optional quantifier at `i`; returns (min, max, next index).
    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("string strategy `{pattern}`: unclosed {{"));
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            Some('?') => (0, 1, i + 1),
            _ => (1, 1, i),
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(
        u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
    );

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (`prop::collection::vec` and friends).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a collection size.
        pub trait SizeRange {
            /// Draw a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }
        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }
        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }
        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Same bias as real proptest's default: 3:1 towards Some.
                if rng.gen_range(0u32..4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// `prop::option::of`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::arbitrary::Arbitrary;
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy choosing one of the given values.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// `prop::sample::select`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty options");
            Select(options)
        }

        /// A deferred index into a collection of yet-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolve against a concrete length.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.gen())
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize>(S);

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.0.generate(rng))
            }
        }

        macro_rules! uniform_fn {
            ($($name:ident => $n:literal),*) => {$(
                /// Array of the given size, each element from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray(element)
                }
            )*};
        }
        uniform_fn!(
            uniform4 => 4, uniform8 => 8, uniform16 => 16,
            uniform20 => 20, uniform32 => 32
        );
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: one `#[test]` fn per property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            $crate::test_runner::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __proptest_outcome
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert within a property (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), __l, format!($($fmt)+)
        );
    }};
}

/// Reject the current case (re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, 5i64..6), c in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((0.0..1.0).contains(&c));
        }

        #[test]
        fn string_patterns(s in "[a-z][a-z0-9-]{0,8}[a-z0-9]") {
            prop_assert!(s.len() >= 2 && s.len() <= 10);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '-'));
        }

        #[test]
        fn collections_and_options(v in prop::collection::vec(any::<u8>(), 1..16),
                                   o in prop::option::of(0u8..4)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            if let Some(x) = o {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn oneof_filter_map(x in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            Just(101u32),
            (200u32..300).prop_filter("even only", |v| v % 2 == 0),
        ]) {
            let small_even = x < 20 && x % 2 == 0;
            let sentinel = x == 101;
            let big_even = (200..300).contains(&x) && x % 2 == 0;
            prop_assert!(small_even || sentinel || big_even);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn assume_rejects(x in 0u8..4) {
            prop_assume!(x != 3);
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(any::<u64>(), 4..5);
        let a = strat.generate(&mut TestRng::from_name("fixed"));
        let b = strat.generate(&mut TestRng::from_name("fixed"));
        assert_eq!(a, b);
    }

    #[test]
    fn index_resolves_in_bounds() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_name("index");
        for len in [1usize, 2, 63] {
            let idx = any::<prop::sample::Index>().generate(&mut rng);
            assert!(idx.index(len) < len);
        }
    }
}
