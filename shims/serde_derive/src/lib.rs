//! Offline shim for `serde_derive` — `#[derive(Serialize, Deserialize)]`
//! targeting the shim `serde` crate's `Value`-based data model.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the type
//! definition is parsed directly from the `proc_macro::TokenStream` and the
//! impls are emitted as formatted source text. Supports plain (non-generic)
//! structs — named, tuple, unit — and enums with unit / tuple / named
//! variants (externally tagged), plus the `#[serde(skip)]` and
//! `#[serde(transparent)]` attributes. That is the full surface this
//! workspace uses; generics are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    /// Field name for named fields, decimal index for tuple fields.
    name: String,
    skip: bool,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derive `serde::ser::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let body = match &c.kind {
        Kind::UnitStruct => "::serde::value::Value::Null".to_string(),
        Kind::NamedStruct(fields) | Kind::TupleStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let newtype_like = matches!(c.kind, Kind::TupleStruct(_)) && live.len() == 1;
            if c.transparent || newtype_like {
                let inner = live.first().expect("transparent struct with no live field");
                format!(
                    "::serde::ser::Serialize::serialize(&self.{})",
                    member(&inner.name)
                )
            } else if matches!(c.kind, Kind::NamedStruct(_)) {
                let entries: Vec<String> = live
                    .iter()
                    .map(|f| {
                        format!(
                            "({:?}.to_string(), ::serde::ser::Serialize::serialize(&self.{}))",
                            f.name,
                            member(&f.name)
                        )
                    })
                    .collect();
                format!("::serde::value::Value::Obj(vec![{}])", entries.join(", "))
            } else {
                let entries: Vec<String> = live
                    .iter()
                    .map(|f| format!("::serde::ser::Serialize::serialize(&self.{})", f.name))
                    .collect();
                format!("::serde::value::Value::Arr(vec![{}])", entries.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&c.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         \tfn serialize(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}\n",
        name = c.name,
    );
    out.parse().expect("derived Serialize impl failed to parse")
}

/// Derive `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    let name = &c.name;
    let body = match &c.kind {
        Kind::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: Default::default()", f.name)
                    } else if c.transparent {
                        format!("{}: ::serde::de::Deserialize::deserialize(v)?", f.name)
                    } else {
                        format!("{n}: ::serde::de::field(v, {n:?})?", n = f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        "Default::default()".to_string()
                    } else if c.transparent || live.len() == 1 {
                        "::serde::de::Deserialize::deserialize(v)?".to_string()
                    } else {
                        format!("::serde::de::element(v, {})?", f.name)
                    }
                })
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Kind::Enum(variants) => deserialize_enum_body(name, variants),
    };
    let out = format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
         \tfn deserialize(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{ {body} }}\n\
         }}\n",
    );
    out.parse()
        .expect("derived Deserialize impl failed to parse")
}

/// `r#type` → `type` for JSON names; member access keeps the raw form.
fn json_name(name: &str) -> &str {
    name.strip_prefix("r#").unwrap_or(name)
}

fn member(name: &str) -> &str {
    name
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    let tag = json_name(vname);
    match &v.body {
        VariantBody::Unit => {
            format!("{enum_name}::{vname} => ::serde::value::Value::Str({tag:?}.to_string()),")
        }
        VariantBody::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => ::serde::value::Value::Obj(vec![({tag:?}.to_string(), \
             ::serde::ser::Serialize::serialize(f0))]),"
        ),
        VariantBody::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let sers: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::ser::Serialize::serialize({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::value::Value::Obj(vec![({tag:?}.to_string(), \
                 ::serde::value::Value::Arr(vec![{}]))]),",
                binds.join(", "),
                sers.join(", ")
            )
        }
        VariantBody::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::ser::Serialize::serialize({}))",
                        json_name(&f.name),
                        f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::value::Value::Obj(vec![({tag:?}.to_string(), \
                 ::serde::value::Value::Obj(vec![{}]))]),",
                binds.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("{ ");
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.body, VariantBody::Unit))
        .map(|v| format!("{:?} => return Ok({name}::{}),", json_name(&v.name), v.name))
        .collect();
    if !unit_arms.is_empty() {
        out.push_str(&format!(
            "if let ::serde::value::Value::Str(s) = v {{ match s.as_str() {{ {} _ => {{}} }} }} ",
            unit_arms.join(" ")
        ));
    }
    for v in variants {
        let vname = &v.name;
        let tag = json_name(vname);
        match &v.body {
            VariantBody::Unit => {}
            VariantBody::Tuple(1) => out.push_str(&format!(
                "if let Some(inner) = v.get({tag:?}) {{ return \
                 Ok({name}::{vname}(::serde::de::Deserialize::deserialize(inner)?)); }} "
            )),
            VariantBody::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::de::element(inner, {i})?"))
                    .collect();
                out.push_str(&format!(
                    "if let Some(inner) = v.get({tag:?}) {{ return Ok({name}::{vname}({})); }} ",
                    elems.join(", ")
                ));
            }
            VariantBody::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: Default::default()", f.name)
                        } else {
                            format!(
                                "{}: ::serde::de::field(inner, {:?})?",
                                f.name,
                                json_name(&f.name)
                            )
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "if let Some(inner) = v.get({tag:?}) {{ return Ok({name}::{vname} {{ {} }}); }} ",
                    inits.join(", ")
                ));
            }
        }
    }
    out.push_str(&format!(
        "Err(::serde::de::Error::msg(format!(\"no variant of {name} matches {{v:?}}\"))) }}"
    ));
    out
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = parse_attrs(&tokens, &mut i);
    let transparent = attrs.iter().any(|a| a == "transparent");
    skip_visibility(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Container {
        name,
        transparent,
        kind,
    }
}

/// Consume leading `#[...]` attributes; return the idents found inside any
/// `#[serde(...)]` among them.
fn parse_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut words = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else {
            panic!("serde_derive shim: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(word) = t {
                            words.push(word.to_string());
                        }
                    }
                }
            }
        }
        *i += 1;
    }
    words
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Split a field/variant list on top-level commas (commas nested inside
/// `<...>` generic arguments do not split).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            let attrs = parse_attrs(&part, &mut i);
            skip_visibility(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other}"),
            };
            Field {
                name,
                skip: attrs.iter().any(|a| a == "skip"),
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .enumerate()
        .map(|(idx, part)| {
            let mut i = 0;
            let attrs = parse_attrs(&part, &mut i);
            Field {
                name: idx.to_string(),
                skip: attrs.iter().any(|a| a == "skip"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            let _attrs = parse_attrs(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive shim: expected variant name, got {other}"),
            };
            i += 1;
            let body = match part.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantBody::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantBody::Named(parse_named_fields(g.stream()))
                }
                // Unit variant, possibly with `= discriminant` (ignored).
                _ => VariantBody::Unit,
            };
            Variant { name, body }
        })
        .collect()
}
