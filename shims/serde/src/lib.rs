//! Offline shim for `serde` 1 — the API subset this workspace uses.
//!
//! Rather than serde's visitor architecture, serialization goes through a
//! self-describing [`value::Value`] tree: `Serialize` produces a `Value`,
//! `Deserialize` consumes one. `serde_json` (the sibling shim) renders and
//! parses the JSON text form. The derive macros in `serde_derive` support
//! plain structs, tuple structs, enums (externally tagged, like real
//! serde), `#[serde(skip)]` and `#[serde(transparent)]`.

pub use serde_derive::{Deserialize, Serialize};

pub use de::Deserialize;
pub use ser::Serialize;

/// The self-describing data model.
pub mod value {
    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// null / missing.
        Null,
        /// true / false.
        Bool(bool),
        /// Signed integer.
        Int(i128),
        /// Unsigned integer beyond `i128` (or any `u128`).
        UInt(u128),
        /// Floating point.
        Float(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object; insertion-ordered.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Look up an object field.
        pub fn get(&self, name: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The value as a signed integer, if exactly representable.
        pub fn as_i128(&self) -> Option<i128> {
            match self {
                Value::Int(i) => Some(*i),
                Value::UInt(u) => i128::try_from(*u).ok(),
                Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
                _ => None,
            }
        }

        /// The value as an unsigned integer, if exactly representable.
        pub fn as_u128(&self) -> Option<u128> {
            match self {
                Value::UInt(u) => Some(*u),
                Value::Int(i) => u128::try_from(*i).ok(),
                Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.8e19 => Some(*f as u128),
                _ => None,
            }
        }

        /// The value as a float.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Float(f) => Some(*f),
                Value::Int(i) => Some(*i as f64),
                Value::UInt(u) => Some(*u as f64),
                _ => None,
            }
        }

        /// Render as compact JSON text (used for non-string map keys).
        pub fn to_json_compact(&self) -> String {
            let mut out = String::new();
            write_json(self, &mut out, None, 0);
            out
        }

        /// Render as JSON text, pretty-printed when `indent` is given.
        pub fn to_json(&self, indent: Option<usize>) -> String {
            let mut out = String::new();
            write_json(self, &mut out, indent, 0);
            out
        }
    }

    fn write_json(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips, and always includes a `.` or exponent.
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json(item, out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, item)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_json(item, out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    }

    fn write_json_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

/// Serialization.
pub mod ser {
    use crate::value::Value;
    use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

    /// Convert `self` into a [`Value`].
    pub trait Serialize {
        /// Produce the value tree.
        fn serialize(&self) -> Value;
    }

    macro_rules! ser_signed {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize(&self) -> Value { Value::Int(*self as i128) }
            }
        )*};
    }
    ser_signed!(i8, i16, i32, i64, i128, isize);

    macro_rules! ser_unsigned {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize(&self) -> Value { Value::UInt(*self as u128) }
            }
        )*};
    }
    ser_unsigned!(u8, u16, u32, u64, u128, usize);

    impl Serialize for f32 {
        fn serialize(&self) -> Value {
            Value::Float(*self as f64)
        }
    }
    impl Serialize for f64 {
        fn serialize(&self) -> Value {
            Value::Float(*self)
        }
    }
    impl Serialize for bool {
        fn serialize(&self) -> Value {
            Value::Bool(*self)
        }
    }
    impl Serialize for char {
        fn serialize(&self) -> Value {
            Value::Str(self.to_string())
        }
    }
    impl Serialize for String {
        fn serialize(&self) -> Value {
            Value::Str(self.clone())
        }
    }
    impl Serialize for str {
        fn serialize(&self) -> Value {
            Value::Str(self.to_string())
        }
    }
    impl Serialize for () {
        fn serialize(&self) -> Value {
            Value::Null
        }
    }
    impl Serialize for Value {
        fn serialize(&self) -> Value {
            self.clone()
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize(&self) -> Value {
            (**self).serialize()
        }
    }
    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn serialize(&self) -> Value {
            (**self).serialize()
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize(&self) -> Value {
            match self {
                Some(v) => v.serialize(),
                None => Value::Null,
            }
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize(&self) -> Value {
            Value::Arr(self.iter().map(Serialize::serialize).collect())
        }
    }
    impl<T: Serialize> Serialize for [T] {
        fn serialize(&self) -> Value {
            Value::Arr(self.iter().map(Serialize::serialize).collect())
        }
    }
    impl<T: Serialize, const N: usize> Serialize for [T; N] {
        fn serialize(&self) -> Value {
            Value::Arr(self.iter().map(Serialize::serialize).collect())
        }
    }

    impl<T: Serialize> Serialize for BTreeSet<T> {
        fn serialize(&self) -> Value {
            Value::Arr(self.iter().map(Serialize::serialize).collect())
        }
    }
    impl<T: Serialize> Serialize for HashSet<T> {
        fn serialize(&self) -> Value {
            Value::Arr(self.iter().map(Serialize::serialize).collect())
        }
    }

    /// A serialized map key: strings stay as-is, anything else becomes its
    /// compact JSON text.
    pub fn key_string<K: Serialize>(key: &K) -> String {
        match key.serialize() {
            Value::Str(s) => s,
            other => other.to_json_compact(),
        }
    }

    impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
        fn serialize(&self) -> Value {
            Value::Obj(
                self.iter()
                    .map(|(k, v)| (key_string(k), v.serialize()))
                    .collect(),
            )
        }
    }
    impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
        fn serialize(&self) -> Value {
            // Sort keys so the output is deterministic across runs.
            let mut fields: Vec<(String, Value)> = self
                .iter()
                .map(|(k, v)| (key_string(k), v.serialize()))
                .collect();
            fields.sort_by(|(a, _), (b, _)| a.cmp(b));
            Value::Obj(fields)
        }
    }

    macro_rules! ser_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self) -> Value {
                    Value::Arr(vec![$(self.$idx.serialize()),+])
                }
            }
        )*};
    }
    ser_tuple! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
    }
}

/// Deserialization.
pub mod de {
    use crate::value::Value;
    use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
    use std::fmt;

    /// Deserialization failure.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// Build from a message.
        pub fn msg(m: impl Into<String>) -> Error {
            Error(m.into())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Reconstruct `Self` from a [`Value`].
    pub trait Deserialize: Sized {
        /// Consume the value tree.
        fn deserialize(v: &Value) -> Result<Self, Error>;
    }

    /// Derive-macro helper: extract and deserialize an object field.
    /// Missing fields deserialize from `Null` so `Option` defaults to
    /// `None`.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        let inner = v.get(name).unwrap_or(&Value::Null);
        T::deserialize(inner).map_err(|e| Error(format!("field `{name}`: {}", e.0)))
    }

    /// Derive-macro helper: extract and deserialize an array element.
    pub fn element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
        match v {
            Value::Arr(items) => {
                let item = items
                    .get(idx)
                    .ok_or_else(|| Error(format!("missing tuple element {idx}")))?;
                T::deserialize(item).map_err(|e| Error(format!("element {idx}: {}", e.0)))
            }
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }

    macro_rules! de_signed {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn deserialize(v: &Value) -> Result<Self, Error> {
                    let i = v.as_i128().ok_or_else(|| {
                        Error(format!(concat!("expected ", stringify!($t), ", got {:?}"), v))
                    })?;
                    <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range")))
                }
            }
        )*};
    }
    de_signed!(i8, i16, i32, i64, i128, isize);

    macro_rules! de_unsigned {
        ($($t:ty),*) => {$(
            impl Deserialize for $t {
                fn deserialize(v: &Value) -> Result<Self, Error> {
                    let u = v.as_u128().ok_or_else(|| {
                        Error(format!(concat!("expected ", stringify!($t), ", got {:?}"), v))
                    })?;
                    <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range")))
                }
            }
        )*};
    }
    de_unsigned!(u8, u16, u32, u64, u128, usize);

    impl Deserialize for f64 {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            v.as_f64()
                .ok_or_else(|| Error(format!("expected float, got {v:?}")))
        }
    }
    impl Deserialize for f32 {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            f64::deserialize(v).map(|f| f as f32)
        }
    }
    impl Deserialize for bool {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Bool(b) => Ok(*b),
                other => Err(Error(format!("expected bool, got {other:?}"))),
            }
        }
    }
    impl Deserialize for char {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
                other => Err(Error(format!("expected single-char string, got {other:?}"))),
            }
        }
    }
    impl Deserialize for String {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(Error(format!("expected string, got {other:?}"))),
            }
        }
    }
    impl Deserialize for () {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Null => Ok(()),
                other => Err(Error(format!("expected null, got {other:?}"))),
            }
        }
    }

    impl Deserialize for Value {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            Ok(v.clone())
        }
    }

    impl<T: Deserialize> Deserialize for Box<T> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            T::deserialize(v).map(Box::new)
        }
    }

    impl<T: Deserialize> Deserialize for Option<T> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Null => Ok(None),
                other => T::deserialize(other).map(Some),
            }
        }
    }

    fn arr(v: &Value) -> Result<&[Value], Error> {
        match v {
            Value::Arr(items) => Ok(items),
            other => Err(Error(format!("expected array, got {other:?}"))),
        }
    }

    impl<T: Deserialize> Deserialize for Vec<T> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            arr(v)?.iter().map(T::deserialize).collect()
        }
    }

    impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            let items = Vec::<T>::deserialize(v)?;
            let len = items.len();
            items
                .try_into()
                .map_err(|_| Error(format!("expected array of {N}, got {len}")))
        }
    }

    impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            arr(v)?.iter().map(T::deserialize).collect()
        }
    }
    impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            arr(v)?.iter().map(T::deserialize).collect()
        }
    }

    /// Reverse of [`crate::ser::key_string`]: keys first deserialize as a
    /// string, then (for non-string key types) as a parsed scalar.
    pub fn key_value<K: Deserialize>(key: &str) -> Result<K, Error> {
        if let Ok(k) = K::deserialize(&Value::Str(key.to_string())) {
            return Ok(k);
        }
        let reparsed = if key == "true" || key == "false" {
            Value::Bool(key == "true")
        } else if let Ok(i) = key.parse::<i128>() {
            Value::Int(i)
        } else if let Ok(u) = key.parse::<u128>() {
            Value::UInt(u)
        } else if let Ok(f) = key.parse::<f64>() {
            Value::Float(f)
        } else {
            return Err(Error(format!("cannot interpret map key {key:?}")));
        };
        K::deserialize(&reparsed)
    }

    impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Obj(fields) => fields
                    .iter()
                    .map(|(k, val)| Ok((key_value(k)?, V::deserialize(val)?)))
                    .collect(),
                other => Err(Error(format!("expected object, got {other:?}"))),
            }
        }
    }
    impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            match v {
                Value::Obj(fields) => fields
                    .iter()
                    .map(|(k, val)| Ok((key_value(k)?, V::deserialize(val)?)))
                    .collect(),
                other => Err(Error(format!("expected object, got {other:?}"))),
            }
        }
    }

    macro_rules! de_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize(v: &Value) -> Result<Self, Error> {
                    Ok(($(super::de::element::<$name>(v, $idx)?,)+))
                }
            }
        )*};
    }
    de_tuple! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
    }
}
