//! Offline shim for `criterion` 0.5 — the API subset this workspace uses.
//!
//! Wall-clock measurement only: per benchmark it runs a warmup iteration,
//! sizes the per-sample iteration count to roughly 20 ms, then records
//! `sample_size` samples and prints mean/min per iteration. When the
//! `BENCH_JSON` environment variable names a file, results are merged into
//! it as a JSON object keyed by benchmark id — that is how the repo's
//! `BENCH_*.json` baselines are recorded.

use serde::value::Value;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation (informational in this shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`] (informational in this
/// shim; inputs are always materialised one sample at a time).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch them per sample.
    SmallInput,
    /// Inputs are expensive to hold.
    LargeInput,
    /// Re-create the input for every iteration.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

/// Timing driver handed to `bench_function` closures.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, f64, usize, u64)>,
}

impl Bencher {
    /// Measure the closure. Mirrors `criterion::Bencher::iter`.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warmup + estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let samples = self.sample_size.max(2);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        self.result = Some((mean, min, samples, iters));
    }

    /// Measure `routine` over inputs produced by `setup`, excluding the
    /// setup cost from timing. Mirrors `criterion::Bencher::iter_batched`
    /// (the [`BatchSize`] hint is accepted for API parity and ignored).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup + estimate (setup outside the clock).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(20);
        // Cap per-sample batches: each held input may be large.
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000) as u64;
        let samples = self.sample_size.max(2);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            times.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        self.result = Some((mean, min, samples, iters));
    }
}

/// The benchmark manager.
pub struct Criterion {
    sample_size: usize,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// No-op in the shim (CLI args are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let record = run_one(id.to_string(), self.sample_size, None, f);
        report(&record);
        self.records.push(record);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                if let Err(e) = export_json(&path, &self.records) {
                    eprintln!("criterion shim: cannot write {path}: {e}");
                }
            }
        }
    }
}

/// A group of related benchmarks (`group_name/bench_name` ids).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let record = run_one(full, samples, self.throughput, f);
        report(&record);
        self.parent.records.push(record);
        self
    }

    /// End the group (kept for API parity; bookkeeping happens eagerly).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) -> Record {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    let (mean_ns, min_ns, samples, iters) = b
        .result
        .unwrap_or_else(|| panic!("benchmark `{id}` never called Bencher::iter"));
    Record {
        id,
        mean_ns,
        min_ns,
        samples,
        iters_per_sample: iters,
        throughput,
    }
}

fn report(r: &Record) {
    let human = |ns: f64| -> String {
        if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else if ns < 1_000_000_000.0 {
            format!("{:.2} ms", ns / 1_000_000.0)
        } else {
            format!("{:.3} s", ns / 1_000_000_000.0)
        }
    };
    let mut line = format!(
        "{:<44} mean {:>12}   min {:>12}   ({} samples x {} iters)",
        r.id,
        human(r.mean_ns),
        human(r.min_ns),
        r.samples,
        r.iters_per_sample
    );
    if let Some(Throughput::Bytes(bytes)) = r.throughput {
        let gib_s = bytes as f64 / r.mean_ns * 1e9 / (1u64 << 30) as f64;
        line.push_str(&format!("   {gib_s:.2} GiB/s"));
    }
    println!("{line}");
}

/// Merge `records` into the JSON object at `path` (created if missing).
fn export_json(path: &str, records: &[Record]) -> std::io::Result<()> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str::<Value>(&text)
            .ok()
            .and_then(|v| match v {
                Value::Obj(fields) => Some(fields),
                _ => None,
            })
            .unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    for r in records {
        let entry = Value::Obj(vec![
            ("mean_ns".to_string(), Value::Float(r.mean_ns)),
            ("min_ns".to_string(), Value::Float(r.min_ns)),
            ("samples".to_string(), Value::UInt(r.samples as u128)),
            (
                "iters_per_sample".to_string(),
                Value::UInt(r.iters_per_sample as u128),
            ),
        ]);
        root.retain(|(k, _)| k != &r.id);
        root.push((r.id.clone(), entry));
    }
    std::fs::write(path, Value::Obj(root).to_json(Some(2)))
}

/// Define a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(100));
        group.bench_function("inner", |b| b.iter(|| black_box(42)));
        group.finish();
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[1].id, "grp/inner");
        assert!(c.records.iter().all(|r| r.mean_ns > 0.0));
    }

    #[test]
    fn json_export_merges() {
        let dir = std::env::temp_dir().join("criterion_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        let rec = |id: &str, mean: f64| Record {
            id: id.to_string(),
            mean_ns: mean,
            min_ns: mean,
            samples: 2,
            iters_per_sample: 1,
            throughput: None,
        };
        export_json(path_str, &[rec("a", 1.0), rec("b", 2.0)]).unwrap();
        export_json(path_str, &[rec("b", 3.0), rec("c", 4.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: Value = serde_json::from_str(&text).unwrap();
        assert!(v.get("a").is_some());
        assert_eq!(
            v.get("b").unwrap().get("mean_ns").unwrap().as_f64(),
            Some(3.0)
        );
        assert!(v.get("c").is_some());
        let _ = std::fs::remove_file(&path);
    }
}
