//! Offline shim for `rand` 0.8 — the API subset this workspace uses.
//!
//! See `shims/README.md`. `StdRng` is xoshiro256++ rather than ChaCha12:
//! deterministic given a seed, which is the only property the simulator
//! relies on.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types `gen_range` can sample. The single generic `SampleRange` impl
/// below (mirroring real rand's shape) is what lets the compiler infer the
/// element type of `gen_range(0..4)` from the use site.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: &Self,
        high: &Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: &Self,
                high: &Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (*low as i128, *high as i128);
                let span = hi.wrapping_sub(lo) as u128 + inclusive as u128;
                if span == 0 {
                    // Full-domain inclusive range of a 64-bit type.
                    return Standard::sample_standard(rng);
                }
                let offset = sample_below(rng, span);
                (lo.wrapping_add(offset as i128)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: &Self,
                high: &Self,
                _inclusive: bool,
            ) -> Self {
                let f: $t = Standard::sample_standard(rng);
                low + f * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(rng, &self.start, &self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in gen_range");
        T::sample_uniform(rng, &start, &end, true)
    }
}

/// Uniform integer in `[0, bound)` via 128-bit multiply-shift.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        // Lemire multiply-shift on 64 bits — unbiased enough for a simulator.
        let x = rng.next_u64() as u128;
        (x * bound) >> 64
    } else {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % bound
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let f: f64 = Standard::sample_standard(self);
        f < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                let mut sm = 0x853C_49E6_748F_EA9Bu64;
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
