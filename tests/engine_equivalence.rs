//! The engine's determinism guarantee: for any world and any shard count,
//! the sharded engine's merged report is byte-identical to the serial
//! `DetectionSuite::run`.

use proptest::prelude::*;
use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;

/// The comparable byte form of a suite: the full revocation join (matches,
/// stats, cutoff) plus the three record streams, serialised to JSON.
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

#[test]
fn engine_matches_serial_on_fixed_tiny_world() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let serial = suite_bytes(&DetectionSuite::run(&data, &psl));
    for shards in [1, 2, 4, 7] {
        let report = Engine::with_shards(shards)
            .run(&data, &psl)
            .expect("engine runs");
        assert!(report.is_complete());
        assert_eq!(suite_bytes(&report.suite), serial, "shards={shards}");
    }
}

#[test]
fn single_shard_engine_uses_same_machinery() {
    // shards=1 must still route through partition + merge, not a bypass:
    // its metrics carry all three stages and exactly one shard entry.
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let report = Engine::with_shards(1)
        .run(&data, &psl)
        .expect("engine runs");
    let stages: Vec<&str> = report
        .metrics
        .stages
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(stages, ["partition", "detect", "merge"]);
    assert_eq!(report.metrics.shards.len(), 1);
    assert_eq!(report.shards, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small worlds, shard counts 1/2/7: serial and parallel
    /// reports are byte-identical.
    #[test]
    fn engine_equivalent_to_serial_on_random_worlds(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        let serial = suite_bytes(&DetectionSuite::run(&data, &psl));
        for shards in [1usize, 2, 7] {
            let report = Engine::new(EngineConfig::with_shards(shards))
                .run(&data, &psl)
                .expect("engine runs");
            prop_assert!(report.is_complete(), "shards={} degraded", shards);
            prop_assert_eq!(&suite_bytes(&report.suite), &serial, "shards={}", shards);
        }
    }
}
