//! Golden-report snapshots: the paper2023 preset's rendered reports are
//! pinned byte-for-byte under `tests/golden/`.
//!
//! The whole pipeline — world simulation, detection, report rendering —
//! is deterministic for a fixed `ScenarioConfig`, so any byte of drift in
//! these snapshots is a behaviour change that must be intentional. To
//! accept a new baseline after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! then commit the rewritten files under `tests/golden/`.
//!
//! One test function covers all four snapshots so the (expensive)
//! paper-scale world is simulated exactly once.

use stale_bench::Experiments;
use stale_tls::prelude::*;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn paper2023_reports_match_goldens() {
    let experiments = Experiments::new(ScenarioConfig::paper2023());
    let snapshots: [(&str, String); 4] = [
        ("table3", experiments.table3()),
        ("table4", experiments.table4()),
        ("fig4", experiments.fig4()),
        ("fig6", experiments.fig6()),
    ];
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut failures = Vec::new();
    for (name, rendered) in &snapshots {
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, rendered).unwrap();
            eprintln!("updated {}", path.display());
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
                path.display()
            )
        });
        if *rendered != expected {
            // Point at the first divergent line; a full diff of a table
            // dump is unreadable in test output.
            let line = rendered
                .lines()
                .zip(expected.lines())
                .position(|(a, b)| a != b)
                .map(|i| i + 1)
                .unwrap_or_else(|| rendered.lines().count().min(expected.lines().count()) + 1);
            failures.push(format!("{name}: first divergence at line {line}"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden snapshots drifted ({}); if intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test golden_reports`",
        failures.join("; ")
    );
}
