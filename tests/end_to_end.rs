//! End-to-end pipeline tests: simulate a world, run every detector, and
//! validate detections against the simulator's ground truth.

use psl::SuffixList;
use stale_core::detector::DetectionSuite;
use stale_types::{Date, DomainName};
use std::collections::BTreeSet;
use worldsim::{ScenarioConfig, World};

fn suite() -> (worldsim::WorldDatasets, DetectionSuite) {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let suite = DetectionSuite::run(&data, &psl);
    (data, suite)
}

#[test]
fn registrant_change_detection_is_sound_and_complete() {
    let (data, suite) = suite();
    let truth: BTreeSet<(DomainName, Date)> = data
        .ground_truth
        .registrant_changes
        .iter()
        .cloned()
        .collect();
    // Soundness: every detected record corresponds to a real re-registration.
    for record in &suite.registrant_change {
        assert!(
            truth.contains(&(record.domain.clone(), record.invalidation)),
            "false positive: {} at {}",
            record.domain,
            record.invalidation
        );
        // And the certificate really spans the change.
        assert!(record.validity.start < record.invalidation);
        assert!(record.invalidation < record.validity.end);
    }
    // Completeness over detectable events: every re-registration where a
    // cert spans the change date is found. Reconstruct expected count from
    // the corpus directly.
    let psl = SuffixList::default_list();
    let mut expected = 0usize;
    for (domain, change) in &truth {
        for cert in data.monitor.corpus_unfiltered() {
            let tbs = &cert.certificate.tbs;
            let spans = tbs.not_before() < *change && *change < tbs.not_after();
            let names_domain = tbs
                .san()
                .iter()
                .any(|s| psl.e2ld_of_san(s).map(|e| e == *domain).unwrap_or(false));
            if spans && names_domain {
                expected += 1;
            }
        }
    }
    assert_eq!(suite.registrant_change.len(), expected);
    assert!(
        expected > 0,
        "scenario produced detectable registrant changes"
    );
}

#[test]
fn invisible_transfers_are_missed_by_design() {
    // §4.4: intra-registry transfers keep the creation date, so the
    // creation-date method cannot see them. The simulator records them in
    // ground truth; the detector must not claim them.
    let (data, suite) = suite();
    assert!(
        !data.ground_truth.invisible_transfers.is_empty(),
        "scenario produced invisible transfers"
    );
    let detected: BTreeSet<(DomainName, Date)> = suite
        .registrant_change
        .iter()
        .map(|r| (r.domain.clone(), r.invalidation))
        .collect();
    for transfer in &data.ground_truth.invisible_transfers {
        assert!(
            !detected.contains(transfer),
            "detector claimed an invisible transfer: {transfer:?}"
        );
    }
}

#[test]
fn managed_tls_departures_match_ground_truth_within_window() {
    let (data, suite) = suite();
    let truth: BTreeSet<(DomainName, Date)> =
        data.ground_truth.cdn_departures.iter().cloned().collect();
    // Every detected departure-invalidation corresponds to a true
    // departure (same domain and day), or to the domain's zone going dark
    // (registry release while still enrolled — which the paper's
    // neighbouring-day diff equally counts, and which equally leaves the
    // CDN holding a valid key for a domain it no longer serves).
    for record in &suite.managed_tls {
        let is_migration = truth.contains(&(record.domain.clone(), record.invalidation));
        let went_dark = data
            .adns
            .view_at(&record.domain, record.invalidation)
            .is_some_and(|v| v.ns.is_empty() && v.cname.is_empty() && v.a.is_empty());
        assert!(
            is_migration || went_dark,
            "false departure: {} at {}",
            record.domain,
            record.invalidation
        );
        assert!(data.adns_window.contains(record.invalidation));
        assert!(record.validity.contains(record.invalidation));
    }
    // Departures inside the scan window for which a valid managed cert
    // existed are detected.
    let in_window: Vec<&(DomainName, Date)> = data
        .ground_truth
        .cdn_departures
        .iter()
        .filter(|(_, when)| data.adns_window.contains(*when) && *when != data.adns_window.start)
        .collect();
    let detected_domains: BTreeSet<&DomainName> =
        suite.managed_tls.iter().map(|r| &r.domain).collect();
    for (domain, _) in &in_window {
        // The domain enrolled before the window began, so a managed cert
        // existed; it must be detected.
        assert!(
            detected_domains.contains(domain),
            "missed in-window departure for {domain}"
        );
    }
}

#[test]
fn key_compromise_detection_matches_crl_ground_truth() {
    let (data, suite) = suite();
    // Every detected KC record joins back to a real compromise or the
    // scripted breach.
    let truth_serials: BTreeSet<_> = data
        .ground_truth
        .compromises
        .iter()
        .map(|c| (c.ca_key, c.serial))
        .collect();
    for record in &suite.key_compromise {
        // Find the revocation backing the record.
        let backing = suite
            .revocations
            .matched
            .iter()
            .find(|m| m.cert_id == record.cert_id && m.revocation_date == record.invalidation)
            .expect("KC record has a matched revocation");
        assert!(
            truth_serials.contains(&(backing.authority_key_id, backing.serial)),
            "KC detection without ground-truth compromise: serial {}",
            backing.serial
        );
    }
    assert!(!suite.key_compromise.is_empty());
}

#[test]
fn revocation_filters_remove_outliers() {
    let (_, suite) = suite();
    let stats = suite.revocations.stats;
    assert_eq!(
        stats.kept
            + stats.unmatched
            + stats.revoked_before_valid
            + stats.revoked_after_expiry
            + stats.revoked_too_early,
        stats.total,
        "filter accounting adds up"
    );
    assert!(stats.kept > 0);
    // No certificate in the kept set is revoked outside its validity.
    for m in &suite.revocations.matched {
        assert!(m.revocation_date >= m.validity.start);
        assert!(m.revocation_date < m.validity.end);
    }
}

#[test]
fn staleness_windows_are_within_validity() {
    let (_, suite) = suite();
    for record in suite.all_records() {
        let window = record.staleness_window();
        assert!(window.start >= record.validity.start);
        assert!(window.end == record.validity.end);
        assert!(window.len().num_days() >= 0);
        assert!(window.len() <= record.lifetime());
    }
}

#[test]
fn breach_dominates_key_compromise_series() {
    // The scripted host breach should be visible as a spike (Figure 4's
    // GoDaddy shape): the breach month holds a large share of KC events.
    let (data, suite) = suite();
    let breach_date = data.ground_truth.breach_date.expect("breach scripted");
    let breach_month = breach_date.year_month();
    let in_breach_month = suite
        .key_compromise
        .iter()
        .filter(|r| r.invalidation.year_month() == breach_month)
        .count();
    assert!(
        in_breach_month * 2 > suite.key_compromise.len() / 2,
        "breach month should be prominent: {in_breach_month} of {}",
        suite.key_compromise.len()
    );
}
