//! Overprovisioned shard counts (`--shards N` with N above the candidate
//! count): shards whose views are empty are accounted, not spawned.
//!
//! Regression for the zero-copy engine: cutting views for a large N can
//! leave some shards with nothing routed to them. The supervisor must
//! skip spawning those workers entirely — fewer shard attempt spans in
//! the trace — while the merged report stays byte-identical to a
//! single-shard run and the skips stay visible (zero-attempt metrics
//! entries plus the `engine.shards_skipped` counter).

use stale_tls::engine::{cut_views, Engine, EngineConfig};
use stale_tls::prelude::*;
use stale_tls::stale_core::views::RoutedWorld;

/// Same comparable byte form as `engine_equivalence.rs`.
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

/// A world small enough that a generous shard count is guaranteed to
/// leave hash buckets empty.
fn micro_world() -> WorldDatasets {
    let mut cfg = ScenarioConfig::tiny();
    cfg.initial_domains = 3;
    cfg.end = Date::parse("2021-07-01").expect("fixed");
    World::run(cfg)
}

#[test]
fn overprovisioned_shards_skip_empty_views_and_match() {
    let data = micro_world();
    let psl = SuffixList::default_list();
    let n = 32;

    let routed = RoutedWorld::build(&data, &psl);
    let occupied = cut_views(&routed, n)
        .iter()
        .filter(|v| !v.is_empty())
        .count();
    assert!(occupied > 0, "micro world still routes something");
    assert!(
        occupied < n,
        "micro world must leave some of {n} shards empty"
    );

    let baseline = Engine::with_shards(1)
        .run(&data, &psl)
        .expect("single-shard run");
    let obs = obs::Obs::enabled();
    let report = Engine::new(EngineConfig::with_shards(n))
        .with_obs(obs.clone())
        .run(&data, &psl)
        .expect("overprovisioned run");

    assert!(report.is_complete());
    assert_eq!(
        suite_bytes(&report.suite),
        suite_bytes(&baseline.suite),
        "skipping empty views must not change the merged report"
    );

    // Only occupied shards were spawned: one attempt span each.
    let spawned = obs
        .trace
        .records()
        .iter()
        .filter(|r| r.name.starts_with("shard ") && r.name.contains(" attempt "))
        .count();
    assert_eq!(
        spawned, occupied,
        "exactly one attempt span per non-empty view"
    );
    assert!(spawned < n, "fewer spawned shard spans than shards");

    // The skips are accounted: zero-attempt metrics entries for every
    // skipped shard, and the counter agrees.
    assert_eq!(report.metrics.shards.len(), n);
    let skipped = report
        .metrics
        .shards
        .iter()
        .filter(|s| s.attempts == 0)
        .count();
    assert_eq!(skipped, n - occupied);
    assert_eq!(
        obs.registry
            .snapshot()
            .counters
            .get("engine.shards_skipped")
            .copied(),
        Some((n - occupied) as u64)
    );
}

#[test]
fn shard_count_above_candidates_still_byte_identical_on_tiny_world() {
    // The full tiny world at a shard count near its candidate count:
    // whatever mix of occupied and empty buckets falls out, the report
    // matches the serial suite.
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let serial = suite_bytes(&DetectionSuite::run(&data, &psl));
    for n in [64, 257] {
        let report = Engine::with_shards(n)
            .run(&data, &psl)
            .expect("overprovisioned run");
        assert!(report.is_complete());
        assert_eq!(suite_bytes(&report.suite), serial, "shards={n}");
    }
}
