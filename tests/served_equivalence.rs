//! The daemon's correctness anchor: every query answer is byte-identical
//! to a fresh batch run over the same ingested days — across shard
//! counts, across a snapshot/restart boundary, under a consistency
//! delay, and while queries race ingestion.

use stale_bench::Experiments;
use stale_served::{Client, Daemon, DaemonConfig};
use stale_tls::engine::{EngineConfig, IncrementalState};
use stale_tls::prelude::*;
use stale_tls::stale_types::{Date, Duration};
use stale_tls::worldsim::DayFeed;

fn ok(client: &mut Client, line: &str) -> String {
    client
        .request(line)
        .expect("transport")
        .unwrap_or_else(|e| panic!("{line:?} should succeed, got err {e:?}"))
}

/// Feed bounds of the deterministic tiny world.
fn tiny_feed_bounds() -> (Date, Date) {
    let data = World::run(ScenarioConfig::tiny());
    let feed = DayFeed::new(&data);
    (feed.start(), feed.end())
}

/// Batch-oracle renderings over the tiny world ingested through
/// `through` (`None` = the whole feed): table3, table4, coverage report,
/// and — when any certificate has been audited by then — one
/// certificate's fingerprint with its explain chain.
fn batch_oracle(through: Option<Date>) -> (String, String, String, Option<(String, String)>) {
    let (data, psl) = Experiments::build_world(ScenarioConfig::tiny());
    let mut cfg = EngineConfig::with_shards(1);
    cfg.audit = true;
    cfg.through = through;
    let run = Experiments::with_engine_incremental_on(data, psl, cfg).expect("batch oracle");
    let audit = run.audit.expect("audited run");
    let explain = audit
        .decisions
        .iter()
        .find(|d| !d.cert.is_empty())
        .map(|d| d.cert.clone())
        .map(|fp| {
            let chain = audit.render_explain(&fp).expect("explain oracle");
            (fp, chain)
        });
    (
        run.experiments.table3(),
        run.experiments.table4(),
        audit.render_coverage(),
        explain,
    )
}

#[test]
fn drained_daemon_matches_batch_across_shard_counts() {
    let (_, end) = tiny_feed_bounds();
    let (t3, t4, coverage, explain) = batch_oracle(None);
    let (fp, explain) = explain.expect("full drain audits some certificate");
    for shards in [1usize, 2, 7] {
        let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
        cfg.shards = shards;
        let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
        let mut client = Client::connect(daemon.addr()).expect("connect");
        ok(&mut client, &format!("feed-day {end}"));
        assert_eq!(ok(&mut client, "table3"), t3, "shards={shards}");
        assert_eq!(ok(&mut client, "table4"), t4, "shards={shards}");
        assert_eq!(ok(&mut client, "report"), coverage, "shards={shards}");
        assert_eq!(
            ok(&mut client, &format!("explain {fp}")),
            explain,
            "shards={shards}"
        );
        daemon.stop();
    }
}

#[test]
fn snapshot_restart_preserves_answers_and_drains_to_batch() {
    let (start, end) = tiny_feed_bounds();
    let mid = start + Duration::days((end - start).num_days() / 2);
    let dir = std::env::temp_dir().join("stale_served_restart_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("served_mid.json");
    let _ = std::fs::remove_file(&path);

    // Mid-stream oracle: a fresh incremental batch run through `mid`.
    let (mid_t3, mid_t4, mid_coverage, _) = batch_oracle(Some(mid));

    // First life: feed through the midpoint and snapshot.
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.checkpoint = Some(path.clone());
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    ok(&mut client, &format!("feed-day {mid}"));
    assert_eq!(ok(&mut client, "table3"), mid_t3);
    assert_eq!(ok(&mut client, "table4"), mid_t4);
    assert_eq!(ok(&mut client, "report"), mid_coverage);
    let snap_msg = ok(&mut client, "snapshot");
    assert!(snap_msg.contains(&mid.to_string()), "{snap_msg}");
    daemon.stop();
    assert!(path.exists(), "snapshot written");

    // The daemon's snapshot is a standard schema-v2 checkpoint and
    // upholds every preflight invariant.
    let snapshot = std::fs::read_to_string(&path).expect("read snapshot");
    let diags = stale_lint::preflight::preflight_str("snapshot", &snapshot);
    assert!(diags.is_empty(), "snapshot preflight: {diags:?}");

    // Second life: restore from the checkpoint; answers are the same
    // bytes, and draining the rest of the feed lands on the full-batch
    // bytes.
    let (t3, t4, coverage, explain) = batch_oracle(None);
    let (fp, explain) = explain.expect("full drain audits some certificate");
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.checkpoint = Some(path.clone());
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    let status = ok(&mut client, "status");
    assert!(
        status.contains(&format!("applied-through {mid}")),
        "restored cursor: {status}"
    );
    assert_eq!(ok(&mut client, "table3"), mid_t3);
    assert_eq!(ok(&mut client, "table4"), mid_t4);
    assert_eq!(ok(&mut client, "report"), mid_coverage);
    ok(&mut client, &format!("feed-day {end}"));
    assert_eq!(ok(&mut client, "table3"), t3);
    assert_eq!(ok(&mut client, "table4"), t4);
    assert_eq!(ok(&mut client, "report"), coverage);
    assert_eq!(ok(&mut client, &format!("explain {fp}")), explain);
    daemon.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn delayed_daemon_answers_as_of_the_visible_day() {
    let (start, _) = tiny_feed_bounds();
    let delay = 5i64;
    let fed_target = start + Duration::days(90);
    let visible = fed_target - Duration::days(delay);
    let (_, t4, coverage, _) = batch_oracle(Some(visible));

    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.delay_days = delay;
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    ok(&mut client, &format!("feed-day {fed_target}"));
    let status = ok(&mut client, "status");
    assert!(
        status.contains(&format!("fed-through {fed_target}")),
        "{status}"
    );
    assert!(
        status.contains(&format!("applied-through {visible}")),
        "{status}"
    );
    assert_eq!(ok(&mut client, "table4"), t4);
    assert_eq!(ok(&mut client, "report"), coverage);
    daemon.stop();
}

/// One HTTP/1.1 GET against the daemon's telemetry plane; returns the
/// status code and the response body.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("http connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

#[test]
fn live_telemetry_plane_preserves_byte_equivalence() {
    let (_, end) = tiny_feed_bounds();
    let (t3, t4, coverage, _) = batch_oracle(None);

    // Boot with the whole live plane on: HTTP endpoints, a zero-threshold
    // slow-query log, and (below) an attached subscriber. None of it may
    // change a single answer byte versus the batch oracle.
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.http = Some("127.0.0.1:0".to_string());
    cfg.slow_query_us = Some(0);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let http = daemon.http_addr().expect("http bound");

    // Drain pushed records on a side thread for the whole run.
    let sub_client = Client::connect(daemon.addr()).expect("sub connect");
    let (ack, mut sub) = sub_client.subscribe().expect("subscribe");
    assert!(ack.contains("subscribed"), "{ack}");
    let drain = std::thread::spawn(move || {
        let mut records = Vec::new();
        while let Ok(record) = sub.next_record() {
            records.push(record);
        }
        records
    });

    let mut client = Client::connect(daemon.addr()).expect("connect");
    ok(&mut client, &format!("feed-day {end}"));
    assert_eq!(ok(&mut client, "table3"), t3);
    assert_eq!(ok(&mut client, "table4"), t4);
    assert_eq!(ok(&mut client, "report"), coverage);

    // HTTP table bodies are the same bytes as the frame answers, which
    // are the same bytes as the batch oracle.
    assert_eq!(http_get(http, "/tables/table3"), (200, t3));
    assert_eq!(http_get(http, "/tables/table4"), (200, t4));
    assert_eq!(http_get(http, "/status").1, ok(&mut client, "status"));

    let (code, health) = http_get(http, "/healthz");
    assert_eq!(code, 200, "{health}");
    let (code, ready) = http_get(http, "/readyz");
    assert_eq!(code, 200, "{ready}");
    assert!(ready.contains("ready"), "{ready}");

    let (code, prom) = http_get(http, "/metrics");
    assert_eq!(code, 200);
    assert!(prom.contains("stale_served_query_table4_us"), "{prom}");
    assert!(prom.contains("stale_served_ingest_batch_wall_us"), "{prom}");

    // The zero-threshold slow-query log captured the table4 query with
    // its span tree; the rolling window saw the ingest batch.
    let (code, slowlog) = http_get(http, "/slowlog");
    assert_eq!(code, 200);
    assert!(slowlog.contains("query.table4"), "{slowlog}");
    assert!(slowlog.contains("view.rebuild"), "{slowlog}");
    let (code, window) = http_get(http, "/window");
    assert_eq!(code, 200);
    assert!(window.contains("rolling window"), "{window}");

    daemon.stop();

    // The subscriber saw at least one staleness event and the ingest
    // span record, every record valid JSON of a known kind.
    let records = drain.join().expect("drain thread");
    let mut events = 0usize;
    let mut spans = 0usize;
    for (kind, body) in &records {
        let parsed: serde::value::Value = serde_json::from_str(body)
            .unwrap_or_else(|e| panic!("bad {kind} record {body:?}: {e}"));
        match kind.as_str() {
            "event" => events += 1,
            "span" => {
                spans += 1;
                assert_eq!(
                    parsed.get("name"),
                    Some(&serde::value::Value::Str("served.ingest".to_string())),
                    "{body}"
                );
            }
            other => panic!("unknown push kind {other:?}"),
        }
    }
    assert!(events > 0, "subscriber saw no staleness events");
    assert!(spans > 0, "subscriber saw no ingest span records");
}

#[test]
fn concurrent_queries_never_observe_a_partial_day() {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const DAYS: i64 = 120;
    let (start, _) = tiny_feed_bounds();

    // Oracle: cumulative event count after each fully ingested day, from
    // a local day-by-day replay with the same chunking the daemon uses.
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let feed = DayFeed::new(&data);
    let registry = obs::Registry::new();
    let mut state = IncrementalState::new(&data, &psl, 2);
    let mut oracle: HashMap<String, usize> = HashMap::new();
    oracle.insert("none".to_string(), 0);
    let mut cumulative = 0usize;
    for offset in 0..DAYS {
        let day = start + Duration::days(offset);
        cumulative += state.ingest_delta(&feed.delta(day, day), &registry).len();
        oracle.insert(day.to_string(), cumulative);
    }
    let oracle = Arc::new(oracle);

    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let addr = daemon.addr();

    // Hammer `status` from several connections while the main thread
    // feeds the same days one at a time. Every (applied-through,
    // events-since-boot) pair a worker observes must be one of the
    // oracle's whole-day states — a partially ingested day would show a
    // cumulative count no whole day ever has.
    let done = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let done = Arc::clone(&done);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connect");
                let mut observed = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let status = client
                        .request("status")
                        .expect("transport")
                        .expect("status ok");
                    let field = |key: &str| {
                        status
                            .lines()
                            .find_map(|l| l.strip_prefix(&format!("{key} ")))
                            .unwrap_or_else(|| panic!("no {key:?} in {status:?}"))
                            .to_string()
                    };
                    let applied = field("applied-through");
                    let events: usize = field("events-since-boot").parse().expect("count");
                    let expected = *oracle
                        .get(&applied)
                        .unwrap_or_else(|| panic!("worker {w} saw unknown day {applied}"));
                    assert_eq!(
                        events, expected,
                        "worker {w}: day {applied} visible with {events} events, \
                         whole-day state has {expected}"
                    );
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    let mut feeder = Client::connect(addr).expect("feeder connect");
    for offset in 0..DAYS {
        let day = start + Duration::days(offset);
        ok(&mut feeder, &format!("feed-day {day}"));
    }
    done.store(true, Ordering::SeqCst);
    let mut total = 0usize;
    for worker in workers {
        total += worker.join().expect("worker");
    }
    assert!(
        total > 0,
        "workers should have observed at least one status"
    );

    // The daemon landed exactly on the oracle's final state.
    let status = ok(&mut feeder, "status");
    let last = start + Duration::days(DAYS - 1);
    assert!(
        status.contains(&format!("applied-through {last}")),
        "{status}"
    );
    assert!(
        status.contains(&format!("events-since-boot {cumulative}")),
        "{status}"
    );
    daemon.stop();
}

#[test]
fn auto_checkpoint_restart_mid_stream_is_byte_equivalent() {
    let (start, end) = tiny_feed_bounds();
    let dir = std::env::temp_dir().join("stale_served_auto_checkpoint_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("served_auto.json");
    let _ = std::fs::remove_file(&path);

    // First life: --checkpoint-every 10, fed day by day. The daemon
    // snapshots on its own; no explicit `snapshot` command is ever sent.
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.checkpoint = Some(path.clone());
    cfg.checkpoint_every = Some(10);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    for offset in 0..35 {
        let day = start + Duration::days(offset);
        ok(&mut client, &format!("feed-day {day}"));
    }
    let metrics = ok(&mut client, "metrics");
    assert!(
        metrics.contains("served.checkpoint.auto"),
        "auto-checkpoint never fired: {metrics}"
    );
    // Simulated crash: stop without snapshotting the remaining days.
    daemon.stop();
    assert!(path.exists(), "auto-checkpoint written");
    let snapshot = std::fs::read_to_string(&path).expect("read snapshot");
    let diags = stale_lint::preflight::preflight_str("snapshot", &snapshot);
    assert!(diags.is_empty(), "auto-checkpoint preflight: {diags:?}");

    // Second life: restore from the auto-checkpoint mid-stream, feed
    // the rest, and land on the straight-through batch bytes.
    let (t3, t4, coverage, explain) = batch_oracle(None);
    let (fp, explain) = explain.expect("full drain audits some certificate");
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.checkpoint = Some(path.clone());
    cfg.checkpoint_every = Some(10);
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    // With 35 single-day feeds and a period of 10, the last auto
    // snapshot fired after the 30th day — the restored cursor sits on
    // that boundary, mid-stream.
    let status = ok(&mut client, "status");
    let boundary = start + Duration::days(29);
    assert!(
        status.contains(&format!("applied-through {boundary}")),
        "restored to the last auto-checkpoint boundary: {status}"
    );
    ok(&mut client, &format!("feed-day {end}"));
    assert_eq!(ok(&mut client, "table3"), t3);
    assert_eq!(ok(&mut client, "table4"), t4);
    assert_eq!(ok(&mut client, "report"), coverage);
    assert_eq!(ok(&mut client, &format!("explain {fp}")), explain);
    daemon.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn daemon_timeline_matches_offline_join_even_when_booted_from_worldlog() {
    use stale_tls::worldsim::WorldLog;

    let (_, end) = tiny_feed_bounds();

    // Offline oracle: the same three-layer join `stale-bench timeline`
    // renders from files, over the full audit and the extracted log.
    let (data, psl) = Experiments::build_world(ScenarioConfig::tiny());
    let log = WorldLog::from_datasets(&data);
    let jsonl = log.to_jsonl();
    let mut ecfg = EngineConfig::with_shards(1);
    ecfg.audit = true;
    let run = Experiments::with_engine_incremental_on(data, psl, ecfg).expect("oracle run");
    let audit = run.audit.expect("audited run");
    let fp = audit
        .decisions
        .iter()
        .find(|d| !d.cert.is_empty())
        .map(|d| d.cert.clone())
        .expect("some audited certificate");
    let expected = stale_tls::stale_core::timeline::render_timeline(&log, Some(&audit), None, &fp)
        .expect("offline timeline");

    // Boot the daemon FROM the exported log (no simulator in the loop),
    // drain it, and ask for the same timeline on both fronts.
    let dir = std::env::temp_dir().join("stale_served_worldlog_boot_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let log_path = dir.join("world.jsonl");
    std::fs::write(&log_path, &jsonl).expect("write log");
    let mut cfg = DaemonConfig::new("tiny", ScenarioConfig::tiny());
    cfg.shards = 2;
    cfg.worldlog = Some(log_path.clone());
    cfg.http = Some("127.0.0.1:0".to_string());
    let daemon = Daemon::start(cfg, "127.0.0.1:0").expect("bind");
    let http = daemon.http_addr().expect("http bound");
    let mut client = Client::connect(daemon.addr()).expect("connect");
    ok(&mut client, &format!("feed-day {end}"));
    assert_eq!(ok(&mut client, &format!("timeline {fp}")), expected);
    assert_eq!(
        http_get(http, &format!("/timeline?fp={fp}")),
        (200, expected)
    );

    // Unknown prefixes and malformed queries fail without touching state.
    let miss = client
        .request("timeline ffffffffffffffff")
        .expect("transport");
    assert!(miss.is_err(), "unknown fingerprint should error");
    assert_eq!(http_get(http, "/timeline").0, 400);
    assert_eq!(http_get(http, "/timeline?fp=").0, 400);
    daemon.stop();
    let _ = std::fs::remove_file(&log_path);
}
