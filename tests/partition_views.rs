//! Partition-view coverage: the zero-copy `cut_views` path must route
//! exactly the candidates the owned `partition()` oracle routes.
//!
//! Two invariants, checked over arbitrary worlds and every shard count in
//! `1..=16`:
//!
//! 1. **Coverage** — the union of shard views covers every routed
//!    candidate exactly once per owning shard: key-compromise
//!    certificates and registrant changes are partitioned (each appears
//!    in exactly one view), while registrant-change certificates and
//!    managed-TLS candidates are duplicated but never twice into the
//!    same view, and every candidate with at least one routing key
//!    appears somewhere.
//! 2. **Equivalence** — per shard, the view's candidate sequence (mapped
//!    back through the routed world) is identical — same members, same
//!    within-shard order — to the owned partitioner's slices.

use proptest::prelude::*;
use stale_tls::engine::partition::{cut_views, partition};
use stale_tls::prelude::*;
use stale_tls::stale_core::views::RoutedWorld;
use stale_tls::stale_types::CertId;

/// Assert both invariants for one world at one shard count.
fn check_views(data: &WorldDatasets, psl: &SuffixList, n: usize) {
    let routed = RoutedWorld::build(data, psl);
    let views = cut_views(&routed, n);
    assert_eq!(views.len(), n.max(1), "one view per shard");

    // --- Coverage ---------------------------------------------------
    let certs = routed.arena.len();
    let mut kc_seen = vec![0usize; certs];
    let mut rc_seen = vec![0usize; certs];
    let mut mtd_seen = vec![0usize; routed.mtd.len()];
    let mut change_seen = vec![0usize; routed.changes.len()];
    for view in &views {
        for &i in &view.kc {
            kc_seen[i as usize] += 1;
        }
        // Duplicated sides: at most one copy of a candidate per view.
        let mut per_view = vec![false; certs];
        for &i in &view.rc_certs {
            assert!(
                !per_view[i as usize],
                "cert {i} twice in rc view {}",
                view.id
            );
            per_view[i as usize] = true;
            rc_seen[i as usize] += 1;
        }
        let mut per_view = vec![false; routed.mtd.len()];
        for &k in &view.mtd {
            assert!(!per_view[k as usize], "mtd {k} twice in view {}", view.id);
            per_view[k as usize] = true;
            mtd_seen[k as usize] += 1;
        }
        for &c in &view.rc_changes {
            change_seen[c as usize] += 1;
        }
    }
    for (i, &count) in kc_seen.iter().enumerate() {
        assert_eq!(count, 1, "kc cert {i} owned by exactly one shard");
    }
    for (c, &count) in change_seen.iter().enumerate() {
        assert_eq!(count, 1, "change {c} owned by exactly one shard");
    }
    for (i, &count) in rc_seen.iter().enumerate() {
        let keyed = !routed.rc_ids_of(i as u32).is_empty();
        assert_eq!(
            count > 0,
            keyed,
            "cert {i} rc coverage must match whether it has a SAN e2LD"
        );
    }
    for (k, &count) in mtd_seen.iter().enumerate() {
        let keyed = !routed.mtd[k].customers.is_empty();
        assert_eq!(
            count > 0,
            keyed,
            "mtd candidate {k} coverage must match whether it has customers"
        );
    }

    // --- Equivalence with the owned partitioner ---------------------
    let owned = partition(data, psl, n);
    assert_eq!(owned.corpus_size, certs);
    assert_eq!(owned.change_count, routed.changes.len());
    for (view, shard) in views.iter().zip(&owned.shards) {
        assert_eq!(view.id, shard.id);
        let ids = |idx: &[u32]| -> Vec<CertId> {
            idx.iter().map(|&i| routed.arena.cert(i).cert_id).collect()
        };
        let owned_ids = |certs: &[&stale_tls::ct::monitor::DedupedCert]| -> Vec<CertId> {
            certs.iter().map(|c| c.cert_id).collect()
        };
        assert_eq!(
            ids(&view.kc),
            owned_ids(&shard.kc_certs),
            "kc shard {}",
            view.id
        );
        assert_eq!(
            ids(&view.rc_certs),
            owned_ids(&shard.rc_certs),
            "rc certs shard {}",
            view.id
        );
        let view_mtd: Vec<CertId> = view
            .mtd
            .iter()
            .map(|&k| routed.arena.cert(routed.mtd[k as usize].cert).cert_id)
            .collect();
        assert_eq!(
            view_mtd,
            owned_ids(&shard.mtd_certs),
            "mtd shard {}",
            view.id
        );
        let view_changes: Vec<(usize, &DomainName)> = view
            .rc_changes
            .iter()
            .map(|&c| {
                let change = &routed.changes[c as usize];
                (change.index, &change.domain)
            })
            .collect();
        let owned_changes: Vec<(usize, &DomainName)> = shard
            .rc_changes
            .iter()
            .map(|change| (change.index, &change.domain))
            .collect();
        assert_eq!(view_changes, owned_changes, "changes shard {}", view.id);
    }
}

#[test]
fn views_cover_and_match_owned_partitioner_on_fixed_world() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    for n in 1..=16 {
        check_views(&data, &psl, n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random small worlds, every shard count 1..=16: views cover each
    /// candidate exactly once per owning shard and reproduce the owned
    /// partitioner's assignment byte-for-byte.
    #[test]
    fn views_cover_and_match_owned_partitioner(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        for n in 1..=16 {
            check_views(&data, &psl, n);
        }
    }
}
