//! Property-based tests over the core data structures and invariants,
//! spanning crates: DER and DNS wire roundtrips, PSL algebra, Merkle
//! proofs, date arithmetic, staleness metrics and the §6 cap simulation.

use proptest::prelude::*;

use crypto::sha256::{sha256, Sha256};
use psl::SuffixList;
use stale_core::lifetime_sim::LifetimeSimulation;
use stale_core::staleness::{StaleCertRecord, StalenessClass};
use stale_core::stats::Cdf;
use stale_core::survival::SurvivalCurve;
use stale_types::{domain::dn, CertId, Date, DateInterval, DomainName, Duration, KeyId};
use x509::cert::{EkuPurpose, Extension, KeyUsage, Name, TbsCertificate, Version};
use x509::der;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,8}[a-z0-9]".prop_filter("no double hyphen edge", |s| !s.ends_with('-'))
}

fn arb_domain() -> impl Strategy<Value = DomainName> {
    (
        arb_label(),
        prop::sample::select(vec!["com", "net", "org", "co.uk"]),
    )
        .prop_map(|(label, tld)| {
            DomainName::parse(&format!("{label}.{tld}")).expect("constructed valid")
        })
}

fn arb_date() -> impl Strategy<Value = Date> {
    (15_000i64..20_000).prop_map(Date::from_days)
}

fn arb_interval() -> impl Strategy<Value = DateInterval> {
    (arb_date(), 1i64..900).prop_map(|(start, len)| {
        DateInterval::from_start(start, Duration::days(len)).expect("positive length")
    })
}

fn arb_extension() -> impl Strategy<Value = Extension> {
    prop_oneof![
        prop::collection::vec(arb_domain(), 1..4).prop_map(Extension::SubjectAltName),
        (any::<bool>(), prop::option::of(0u8..4))
            .prop_map(|(ca, path_len)| { Extension::BasicConstraints { ca, path_len } }),
        (any::<bool>(), any::<bool>()).prop_map(|(ds, ke)| {
            Extension::KeyUsage(KeyUsage {
                digital_signature: ds,
                key_encipherment: ke,
                ..Default::default()
            })
        }),
        Just(Extension::ExtendedKeyUsage(vec![EkuPurpose::ServerAuth])),
        prop::array::uniform20(any::<u8>())
            .prop_map(|b| Extension::SubjectKeyId(KeyId::from_bytes(b))),
        prop::array::uniform20(any::<u8>())
            .prop_map(|b| Extension::AuthorityKeyId(KeyId::from_bytes(b))),
        "[a-z]{3,12}".prop_map(|s| Extension::CrlDistributionPoint(format!("http://{s}.crl"))),
        Just(Extension::PrecertPoison),
    ]
}

fn arb_tbs() -> impl Strategy<Value = TbsCertificate> {
    (
        any::<u128>(),
        "[A-Za-z ]{1,20}",
        arb_interval(),
        arb_domain(),
        prop::array::uniform32(any::<u8>()),
        prop::collection::vec(arb_extension(), 0..6),
    )
        .prop_map(
            |(serial, issuer, validity, subject, key, extensions)| TbsCertificate {
                version: Version::V3,
                serial: stale_types::SerialNumber(serial),
                issuer: Name::cn(issuer),
                validity,
                subject: Name::cn(subject.as_str()),
                public_key: crypto::PublicKey(key),
                extensions,
            },
        )
}

// ---------------------------------------------------------------------
// crypto
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048),
                                       split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn hmac_distinguishes_keys(key1 in prop::collection::vec(any::<u8>(), 1..64),
                               key2 in prop::collection::vec(any::<u8>(), 1..64),
                               msg in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(crypto::hmac_sha256(&key1, &msg), crypto::hmac_sha256(&key2, &msg));
    }
}

// ---------------------------------------------------------------------
// DER / x509
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn der_uint_roundtrips(v in any::<u128>()) {
        let mut e = der::Encoder::new();
        e.uint(v);
        let bytes = e.into_inner();
        let mut d = der::Decoder::new(&bytes);
        prop_assert_eq!(d.uint().unwrap(), v);
        prop_assert!(d.finish().is_ok());
    }

    #[test]
    fn der_int_roundtrips(v in any::<i64>()) {
        let mut e = der::Encoder::new();
        e.int(v);
        let bytes = e.into_inner();
        let mut d = der::Decoder::new(&bytes);
        prop_assert_eq!(d.int().unwrap(), v);
    }

    #[test]
    fn tbs_certificate_roundtrips(tbs in arb_tbs()) {
        let encoded = tbs.encode(false);
        let decoded = TbsCertificate::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, tbs);
    }

    #[test]
    fn tbs_decode_never_panics_on_corruption(tbs in arb_tbs(), flip in 0usize..4096, byte in any::<u8>()) {
        let mut encoded = tbs.encode(false);
        let idx = flip % encoded.len();
        encoded[idx] = byte;
        let _ = TbsCertificate::decode(&encoded); // must not panic
    }

    #[test]
    fn dedup_encoding_strips_only_ct_components(tbs in arb_tbs()) {
        let full = tbs.encode(false);
        let dedup = tbs.encode(true);
        let has_ct = tbs.extensions.iter().any(|e| e.is_ct_component());
        if has_ct {
            prop_assert_ne!(&full, &dedup);
        } else {
            prop_assert_eq!(&full, &dedup);
        }
    }
}

// ---------------------------------------------------------------------
// DNS wire
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dns_message_roundtrips(
        id in any::<u16>(),
        qname in arb_domain(),
        answers in prop::collection::vec((arb_domain(), arb_domain()), 0..6),
    ) {
        use dns::record::{RData, Record, RecordType};
        use dns::wire::{Message, Rcode};
        let query = Message::query(id, qname, RecordType::Ns);
        let records: Vec<Record> = answers
            .into_iter()
            .map(|(owner, target)| Record::new(owner, RData::Ns(target)))
            .collect();
        let rcode = if records.is_empty() { Rcode::NxDomain } else { Rcode::NoError };
        let response = Message::response(&query, records, rcode);
        let decoded = Message::decode(&response.encode()).unwrap();
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn dns_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = dns::wire::Message::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// PSL
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn e2ld_is_idempotent_and_suffix(
        labels in prop::collection::vec(arb_label(), 1..4),
        tld in prop::sample::select(vec!["com", "net", "co.uk", "unknowntld"]),
    ) {
        let list = SuffixList::default_list();
        let name = DomainName::parse(&format!("{}.{}", labels.join("."), tld)).unwrap();
        if let Ok(e2ld) = list.e2ld(&name) {
            // e2LD is a suffix (ancestor) of the name…
            prop_assert!(name.is_subdomain_of(&e2ld));
            // …idempotent…
            prop_assert_eq!(list.e2ld(&e2ld).unwrap(), e2ld.clone());
            // …and exactly one label below the public suffix.
            let etld = list.etld(&name);
            prop_assert_eq!(e2ld.label_count(), etld.label_count() + 1);
            prop_assert!(e2ld.is_subdomain_of(&etld));
        }
    }
}

// ---------------------------------------------------------------------
// Merkle
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn merkle_inclusion_verifies(n in 1usize..64, pick in any::<prop::sample::Index>()) {
        use ct::merkle::{verify_inclusion, MerkleTree};
        let mut tree = MerkleTree::new();
        for i in 0..n {
            tree.append(format!("leaf{i}").as_bytes());
        }
        let idx = pick.index(n) as u64;
        let proof = tree.inclusion_proof(idx, n as u64).unwrap();
        let root = tree.root();
        let leaf = format!("leaf{idx}");
        prop_assert!(verify_inclusion(leaf.as_bytes(), idx, n as u64, &proof, &root));
        // Wrong leaf content must fail.
        prop_assert!(!verify_inclusion(b"other", idx, n as u64, &proof, &root));
    }

    #[test]
    fn merkle_consistency_verifies(n in 2usize..64, pick in any::<prop::sample::Index>()) {
        use ct::merkle::{verify_consistency, MerkleTree};
        let mut tree = MerkleTree::new();
        for i in 0..n {
            tree.append(format!("leaf{i}").as_bytes());
        }
        let m = (pick.index(n - 1) + 1) as u64;
        let proof = tree.consistency_proof(m, n as u64).unwrap();
        let root_m = tree.root_at(m).unwrap();
        let root_n = tree.root();
        prop_assert!(verify_consistency(m, n as u64, &proof, &root_m, &root_n));
    }
}

// ---------------------------------------------------------------------
// Dates and intervals
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn date_ymd_roundtrips(days in -200_000i64..200_000) {
        let date = Date::from_days(days);
        let (y, m, d) = date.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, d).unwrap(), date);
    }

    #[test]
    fn date_arithmetic_inverts(days in 0i64..40_000, delta in -1000i64..1000) {
        let date = Date::from_days(days);
        prop_assert_eq!((date + Duration::days(delta)) - Duration::days(delta), date);
        prop_assert_eq!((date + Duration::days(delta)) - date, Duration::days(delta));
    }

    #[test]
    fn interval_cap_and_suffix_invariants(iv in arb_interval(), cap in 1i64..500, from in arb_date()) {
        let capped = iv.cap_len(Duration::days(cap));
        prop_assert!(capped.len() <= iv.len());
        prop_assert!(capped.len() <= Duration::days(cap));
        prop_assert_eq!(capped.start, iv.start);
        let suffix = iv.suffix_from(from);
        prop_assert!(suffix.start >= iv.start);
        prop_assert_eq!(suffix.end, iv.end);
        prop_assert!(suffix.len() <= iv.len());
        // Intersections commute.
        let other = capped;
        prop_assert_eq!(iv.intersect(&other), other.intersect(&iv));
    }
}

// ---------------------------------------------------------------------
// Staleness metrics
// ---------------------------------------------------------------------

fn arb_record() -> impl Strategy<Value = StaleCertRecord> {
    (arb_interval(), -100i64..1000).prop_map(|(validity, offset)| StaleCertRecord {
        cert_id: CertId::from_bytes([7; 32]),
        class: StalenessClass::RegistrantChange,
        domain: dn("foo.com"),
        fqdns: vec![dn("foo.com")],
        issuer: "CA".into(),
        invalidation: validity.start + Duration::days(offset),
        validity,
    })
}

proptest! {
    #[test]
    fn staleness_bounded_by_lifetime(record in arb_record()) {
        prop_assert!(record.staleness_days().num_days() >= 0);
        prop_assert!(record.staleness_days() <= record.lifetime());
    }

    #[test]
    fn cap_simulation_invariants(records in prop::collection::vec(arb_record(), 1..40),
                                 cap_a in 10i64..400, cap_b in 10i64..400) {
        let (lo, hi) = (cap_a.min(cap_b), cap_a.max(cap_b));
        let sim = LifetimeSimulation::new(records.iter());
        let r_lo = sim.apply_cap(lo);
        let r_hi = sim.apply_cap(hi);
        // Reductions within [0,1] and monotone in the cap.
        for r in [&r_lo, &r_hi] {
            prop_assert!((0.0..=1.0).contains(&r.staleness_reduction()));
            prop_assert!(r.staleness_days_after <= r.staleness_days_before);
            prop_assert!(r.eliminated_certs <= r.total_certs);
        }
        prop_assert!(r_lo.staleness_days_after <= r_hi.staleness_days_after);
        prop_assert!(r_lo.eliminated_certs >= r_hi.eliminated_certs);
    }

    #[test]
    fn survival_matches_cdf_complement(days in prop::collection::vec(0i64..900, 1..60),
                                       t in 0i64..900) {
        let curve = SurvivalCurve::from_days(days.clone());
        let cdf = Cdf::new(days);
        prop_assert!((curve.survival_at(t) - (1.0 - cdf.proportion_at(t))).abs() < 1e-12);
    }

    #[test]
    fn cdf_quantiles_within_range(days in prop::collection::vec(0i64..2000, 1..80),
                                  q in 0.0f64..1.0) {
        let cdf = Cdf::new(days.clone());
        let quantile = cdf.quantile(q).unwrap();
        let min = *days.iter().min().unwrap();
        let max = *days.iter().max().unwrap();
        prop_assert!(quantile >= min && quantile <= max);
        // proportion_at is monotone.
        prop_assert!(cdf.proportion_at(quantile) >= cdf.proportion_at(quantile - 1));
    }
}

// ---------------------------------------------------------------------
// Domain names
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn domain_parse_is_idempotent(domain in arb_domain()) {
        let reparsed = DomainName::parse(domain.as_str()).unwrap();
        prop_assert_eq!(reparsed, domain);
    }

    #[test]
    fn wildcard_matches_exactly_one_label(base in arb_domain(), label in arb_label()) {
        let wildcard = base.prepend("*").unwrap();
        let child = base.prepend(&label).unwrap();
        prop_assert!(wildcard.matches(&child));
        prop_assert!(!wildcard.matches(&base));
        let grandchild = child.prepend(&label).unwrap();
        prop_assert!(!wildcard.matches(&grandchild));
    }
}

// ---------------------------------------------------------------------
// PEM / base64
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn base64_roundtrips(data in prop::collection::vec(any::<u8>(), 0..512)) {
        use x509::pem::{base64_decode, base64_encode};
        prop_assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn pem_certificate_roundtrips(tbs in arb_tbs()) {
        use x509::pem::{certificate_from_pem, certificate_to_pem};
        let key = crypto::KeyPair::from_seed([77; 32]);
        let cert = x509::Certificate {
            signature: crypto::SimSig::sign(key.private(), &tbs.encode(false)),
            tbs,
        };
        let pem = certificate_to_pem(&cert);
        prop_assert_eq!(certificate_from_pem(&pem).unwrap(), cert);
    }
}

// ---------------------------------------------------------------------
// Zone files
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn zonefile_roundtrips(owners in prop::collection::vec((arb_label(), 0u8..3), 1..12)) {
        use dns::record::{RData, Record, Ipv4Addr};
        use dns::zonefile::{parse, serialize};
        let origin = dn("com");
        let records: Vec<Record> = owners
            .into_iter()
            .map(|(label, kind)| {
                let name = DomainName::parse(&format!("{label}.com")).unwrap();
                let data = match kind {
                    0 => RData::A(Ipv4Addr::new(192, 0, 2, 7)),
                    1 => RData::Ns(dn("ns1.example.net")),
                    _ => RData::Cname(dn("target.example.net")),
                };
                Record::new(name, data)
            })
            .collect();
        let text = serialize(&origin, &records);
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(reparsed, records);
    }

    #[test]
    fn zonefile_parse_never_panics(text in "[ -~\n]{0,400}") {
        let _ = dns::zonefile::parse(&text);
    }
}

// ---------------------------------------------------------------------
// WHOIS text
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn whois_text_roundtrips_all_dialects(
        label in arb_label(),
        creation in 15_000i64..18_000,
        term in 100i64..800,
        dialect in 0u8..3,
        redacted in any::<bool>(),
    ) {
        use registry::whois::WhoisRecord;
        use registry::whois_text::{parse, render, WhoisDialect};
        let record = WhoisRecord {
            domain: DomainName::parse(&format!("{label}.com")).unwrap(),
            registrar: 3,
            creation_date: Date::from_days(creation),
            expiration_date: Date::from_days(creation + term),
            updated_date: Date::from_days(creation + 10),
        };
        let dialect = match dialect {
            0 => WhoisDialect::Verisign,
            1 => WhoisDialect::Legacy,
            _ => WhoisDialect::Terse,
        };
        let parsed = parse(&render(&record, dialect, redacted)).unwrap();
        prop_assert_eq!(parsed.domain, record.domain);
        prop_assert_eq!(parsed.creation_date, record.creation_date);
        prop_assert_eq!(parsed.redacted, redacted);
    }

    #[test]
    fn whois_parse_never_panics(text in "[ -~\n]{0,300}") {
        let _ = registry::whois_text::parse(&text);
    }
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn handshake_succeeds_iff_cert_covers_sni_and_is_fresh(
        sni_label in arb_label(),
        cert_label in arb_label(),
        day_offset in -30i64..500,
    ) {
        use handshake::{connect, Client, Server, ServerIdentity};
        let root = crypto::KeyPair::from_seed([90; 32]);
        let leaf_key = crypto::KeyPair::from_seed([91; 32]);
        let not_before = Date::parse("2022-01-01").unwrap();
        let cert_name = DomainName::parse(&format!("{cert_label}.com")).unwrap();
        let sni = DomainName::parse(&format!("{sni_label}.com")).unwrap();
        let leaf = x509::CertificateBuilder::tls_leaf(leaf_key.public())
            .serial(1)
            .issuer_cn("Prop Root")
            .subject_cn(cert_name.as_str())
            .san(cert_name.clone())
            .validity_days(not_before, Duration::days(398))
            .sign(&root);
        let mut server = Server::new();
        server.add_identity(ServerIdentity::new(leaf, leaf_key));
        let client = Client::new(vec![root.public()]);
        let date = not_before + Duration::days(day_offset);
        let result = connect(&client, &server, &sni, date);
        let names_match = cert_name == sni;
        let in_validity = (0..398).contains(&day_offset);
        prop_assert_eq!(result.is_ok(), names_match && in_validity,
            "names_match={} in_validity={} result={:?}", names_match, in_validity, result.err());
    }
}
