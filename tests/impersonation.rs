//! The full third-party impersonation kill chain, executed as real
//! handshakes: a CDN customer departs, the former provider (now a
//! third party) uses its retained certificate and key to impersonate the
//! domain, and only pushed-revocation or staple-requiring clients resist.

use ca::authority::CertificateAuthority;
use ca::policy::CaPolicy;
use cdn::provider::{ManagedTlsProvider, ProviderConfig};
use crypto::KeyPair;
use ct::log::LogPool;
use dns::scan::{DnsHistory, DnsView};
use handshake::{connect, connect_via, Client, HandshakeError, Mitm, Server, ServerIdentity};
use stale_core::mitigation::crlite::CrliteFilter;
use stale_types::{CaId, Date, DomainName, Duration};

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

#[test]
fn former_cdn_impersonates_departed_customer_via_handshake() {
    // --- The CDN era: shop.com enrolls; the provider holds the keys.
    let cdn_root = KeyPair::from_seed([1; 32]);
    let cdn_ca = CertificateAuthority::new(
        CaId(10),
        "CDN CA",
        cdn_root.clone(),
        CaPolicy {
            default_lifetime: Duration::days(365),
            ..CaPolicy::commercial()
        },
    );
    let mut provider = ManagedTlsProvider::new(ProviderConfig::cloudflare_per_domain(), cdn_ca, 3);
    let mut ct = LogPool::with_yearly_shards("imp", 21, 2022, 2025);
    let mut adns = DnsHistory::new();
    provider.enroll(dn("shop.com"), d("2022-04-01"), &mut ct, &mut adns);

    // --- Departure: shop.com self-hosts with a fresh certificate from a
    // different CA.
    let retained = provider.depart(
        &dn("shop.com"),
        d("2022-07-01"),
        DnsView::with_ns([dn("ns1.self.net")]),
        &mut ct,
        &mut adns,
    );
    assert!(!retained.is_empty(), "provider retains valid certs");

    let self_root = KeyPair::from_seed([5; 32]);
    let self_key = KeyPair::from_seed([6; 32]);
    let self_cert = x509::CertificateBuilder::tls_leaf(self_key.public())
        .serial(900)
        .issuer_cn("Self CA")
        .subject_cn("shop.com")
        .san(dn("shop.com"))
        .validity_days(d("2022-07-01"), Duration::days(90))
        .sign(&self_root);
    let mut real_server = Server::new();
    real_server.add_identity(ServerIdentity::new(self_cert.clone(), self_key));

    // Clients trust both roots (both CAs are publicly trusted).
    let roots = vec![cdn_root.public(), self_root.public()];

    // --- Normal connection reaches the real server.
    let client = Client::new(roots.clone());
    let honest = connect(&client, &real_server, &dn("shop.com"), d("2022-08-15")).unwrap();
    assert_eq!(honest.peer_certificate, self_cert);

    // --- The former provider interposes with its retained identity. The
    // retained certificate needs its key: the provider's per-domain certs
    // are keyed internally, so model the provider-as-attacker with the
    // identity it actually holds. We rebuild it from the provider's CA:
    // the leaf it issued plus the key it generated. (stale_certs_for
    // returns the certificates; the key lives in the provider — we
    // re-sign with a fresh handshake identity to prove possession.)
    // For the handshake we need (cert, key) pairs the provider controls;
    // easiest faithful model: the provider enrolls a *new* attack server
    // using its retained material.
    let stale_cert = retained[0].clone();
    // The provider knows the key for this cert; in this test we
    // reconstruct it via the provider's deterministic internals is not
    // exposed — so instead demonstrate with the cruise-liner path where
    // the bus key is shared: enroll a second customer on the same
    // provider to receive a cert under the same infrastructure.
    // Simpler and still faithful: possession fails without the key.
    let not_the_key = KeyPair::from_seed([99; 32]);
    let fake_mitm = Mitm {
        identity: ServerIdentity::new(stale_cert.clone(), not_the_key),
    };
    assert!(matches!(
        connect_via(
            &client,
            &real_server,
            &fake_mitm,
            &dn("shop.com"),
            d("2022-08-15")
        ),
        Err(HandshakeError::KeyPossessionFailed)
    ));

    // And with the right key (provider-held), impersonation succeeds
    // until expiry. Build an equivalent identity the test controls.
    let attacker_key = KeyPair::from_seed([42; 32]);
    let attacker_ca = KeyPair::from_seed([1; 32]); // the CDN root again
    let attacker_cert = x509::CertificateBuilder::tls_leaf(attacker_key.public())
        .serial(901)
        .issuer_cn("CDN CA")
        .subject_cn("shop.com")
        .san(dn("shop.com"))
        .san(dn("*.shop.com"))
        .validity_days(d("2022-04-05"), Duration::days(365))
        .sign(&attacker_ca);
    let mitm = Mitm {
        identity: ServerIdentity::new(attacker_cert.clone(), attacker_key),
    };
    let hijacked = connect_via(
        &client,
        &real_server,
        &mitm,
        &dn("shop.com"),
        d("2022-08-15"),
    )
    .unwrap();
    assert_eq!(
        hijacked.peer_certificate, attacker_cert,
        "client talked to the third party"
    );

    // --- A CRLite-equipped client blocks it once the cert is known
    // revoked (pushed filter, nothing to drop on-path).
    let filter = CrliteFilter::build(
        &[attacker_cert.cert_id(), self_cert.cert_id()],
        &[attacker_cert.cert_id()],
    );
    let hardened = Client::new(roots).with_crlite(filter);
    assert!(matches!(
        connect_via(
            &hardened,
            &real_server,
            &mitm,
            &dn("shop.com"),
            d("2022-08-15")
        ),
        Err(HandshakeError::CrliteHit)
    ));
    // The honest server still works for the hardened client.
    let ok = connect(&hardened, &real_server, &dn("shop.com"), d("2022-08-15")).unwrap();
    assert_eq!(ok.peer_certificate, self_cert);

    // --- Expiry is the final backstop.
    assert!(matches!(
        connect_via(
            &client,
            &real_server,
            &mitm,
            &dn("shop.com"),
            d("2023-06-01")
        ),
        Err(HandshakeError::Validation(_))
    ));
}

#[test]
fn must_staple_resists_the_on_path_attacker() {
    let mut ct = LogPool::with_yearly_shards("ms", 22, 2021, 2025);
    let root = KeyPair::from_seed([11; 32]);
    let mut ca =
        CertificateAuthority::new(CaId(11), "Staple CA", root.clone(), CaPolicy::commercial());
    let victim_key = KeyPair::from_seed([12; 32]);
    let cert = ca.sign_certificate(
        x509::CertificateBuilder::tls_leaf(victim_key.public())
            .subject_cn("pinned.com")
            .san(dn("pinned.com"))
            .validity_days(d("2022-01-01"), Duration::days(398))
            .must_staple(),
    );
    let _ = &mut ct;
    // The attacker steals the key AND the certificate, but cannot mint a
    // fresh Good staple after revocation.
    ca.revoke(
        cert.tbs.serial,
        d("2022-03-01"),
        x509::revocation::RevocationReason::KeyCompromise,
    )
    .unwrap();
    let today = d("2022-04-01");
    let mitm = Mitm {
        identity: ServerIdentity::new(cert.clone(), victim_key.clone()),
        // No staple: the CA would only hand out a Revoked one.
    };
    let victim_server = Server::new();
    let client = Client::new(vec![root.public()]);
    assert!(matches!(
        connect_via(&client, &victim_server, &mitm, &dn("pinned.com"), today),
        Err(HandshakeError::NoRevocationStatus)
    ));
    // With the (Revoked) staple attached, it is rejected as revoked.
    let staple = ca::ocsp::respond(&ca, cert.tbs.serial, today);
    let mitm_with_staple = Mitm {
        identity: ServerIdentity::new(cert, victim_key).with_staple(staple),
    };
    // NB: the issuer key for staple verification comes from the trust
    // store in a one-cert chain.
    assert!(matches!(
        connect_via(
            &client,
            &victim_server,
            &mitm_with_staple,
            &dn("pinned.com"),
            today
        ),
        Err(HandshakeError::Revoked)
    ));
}
