//! Cross-crate PKI plumbing: ACME issuance against real DNS, CT inclusion
//! proofs over issued certificates, CRL publication/scraping/joining, and
//! TLS-client chain validation — the full life of one certificate.

use ca::acme::{AcmeServer, ChallengeType, WebServer};
use ca::authority::CertificateAuthority;
use ca::policy::CaPolicy;
use ca::scraper::CrlScraper;
use crypto::KeyPair;
use ct::log::{CtLog, LogPool};
use ct::merkle::verify_inclusion;
use ct::monitor::CtMonitor;
use dns::record::RData;
use dns::resolver::Resolver;
use dns::zone::Zone;
use stale_core::detector::key_compromise::RevocationAnalysis;
use stale_types::{AccountId, CaId, Date, DateInterval, DomainName, Duration};
use x509::revocation::RevocationReason;
use x509::validate::{validate_chain, ValidationError};
use x509::Extension;

fn dn(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

#[test]
fn certificate_lifecycle_end_to_end() {
    // --- Issuance through ACME with dns-01 against the dns crate.
    let ca_key = KeyPair::from_seed([1; 32]);
    let mut ca = CertificateAuthority::new(
        CaId(1),
        "Interop CA",
        ca_key.clone(),
        CaPolicy::commercial(),
    );
    let mut ct = LogPool::with_yearly_shards("interop", 4, 2022, 2024);
    let mut acme = AcmeServer::new();
    let mut resolver = Resolver::new();
    resolver.add_zone(Zone::new(dn("site.com")));
    let account_key = KeyPair::from_seed([2; 32]);
    let tls_key = KeyPair::from_seed([3; 32]);

    let order = acme.new_order(&ca, AccountId(1), vec![dn("site.com")], d("2022-05-01"));
    let challenge = acme
        .challenge(order, &dn("site.com"), ChallengeType::Dns01)
        .unwrap();
    resolver.zone_mut(&dn("site.com")).unwrap().add_data(
        challenge.dns_name(),
        RData::Txt(challenge.key_authorization(&account_key.public())),
    );
    acme.validate(
        order,
        &challenge,
        &account_key.public(),
        &resolver,
        &WebServer::new(),
        d("2022-05-01"),
    )
    .unwrap();
    let cert = acme
        .finalize(
            order,
            tls_key.public(),
            None,
            &mut ca,
            &mut ct,
            d("2022-05-01"),
        )
        .unwrap();

    // --- The precert is in a CT log with a verifiable inclusion proof.
    let log: &CtLog = ct
        .logs()
        .iter()
        .find(|l| l.size() > 0)
        .expect("precert logged somewhere");
    let entry = &log.entries()[0];
    assert!(entry.certificate.tbs.is_precert());
    assert_eq!(
        entry.certificate.cert_id(),
        cert.cert_id(),
        "precert dedups with final"
    );
    let sth = log.tree_head(d("2022-05-02"));
    assert!(log.verify_tree_head(&sth));
    let proof = log.inclusion_proof(entry.index, sth.tree_size).unwrap();
    assert!(verify_inclusion(
        &entry.certificate.encode(),
        entry.index,
        sth.tree_size,
        &proof,
        &sth.root
    ));

    // --- The final certificate embeds the log's SCT.
    let sct_ok = cert.tbs.extensions.iter().any(|e| match e {
        Extension::SctList(scts) => scts.iter().any(|s| s.log_id == log.log_id()),
        _ => false,
    });
    assert!(sct_ok, "final cert carries the issuing log's SCT");

    // --- A TLS client accepts the chain.
    assert_eq!(
        validate_chain(
            std::slice::from_ref(&cert),
            &[ca_key.public()],
            &dn("site.com"),
            d("2022-06-01")
        ),
        Ok(())
    );

    // --- Key compromise: revoke, publish, scrape, join.
    ca.revoke(
        cert.tbs.serial,
        d("2022-07-01"),
        RevocationReason::KeyCompromise,
    )
    .unwrap();
    let mut scraper = CrlScraper::new(9);
    let window = DateInterval::new(d("2022-11-01"), d("2022-11-08")).unwrap();
    let (crl_data, stats) = scraper.scrape(&[&ca], window);
    assert_eq!(crl_data.len(), 1);
    assert_eq!(stats.total_coverage(), 1.0);

    let mut monitor = CtMonitor::new();
    monitor.ingest(cert.clone(), d("2022-05-01"));
    let analysis = RevocationAnalysis::run(&crl_data, &monitor, d("2022-11-01"));
    assert_eq!(analysis.stats.kept, 1);
    let stale = analysis.stale_records();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].invalidation, d("2022-07-01"));
    // Staleness: from revocation to notAfter (398-day default lifetime).
    assert_eq!(
        stale[0].staleness_days(),
        (d("2022-05-01") + Duration::days(398)) - d("2022-07-01")
    );

    // --- Validation still passes (revocation checking is ineffective in
    // browsers — §2.4; expiry is the only backstop).
    assert_eq!(
        validate_chain(
            std::slice::from_ref(&cert),
            &[ca_key.public()],
            &dn("site.com"),
            d("2022-12-01")
        ),
        Ok(())
    );
    // Until expiry.
    assert_eq!(
        validate_chain(
            std::slice::from_ref(&cert),
            &[ca_key.public()],
            &dn("site.com"),
            d("2023-07-01")
        ),
        Err(ValidationError::Expired { index: 0 })
    );
}

#[test]
fn wire_format_scan_agrees_with_history() {
    // The scanner's wire-level view of a zone matches what the interval
    // history records for the same day.
    use dns::record::Ipv4Addr;
    use dns::scan::{scan_domain, DnsHistory, DnsView};

    let mut resolver = Resolver::new();
    let mut zone = Zone::new(dn("foo.com"));
    zone.add_data(dn("foo.com"), RData::Ns(dn("anna.ns.cloudflare.com")));
    zone.add_data(dn("foo.com"), RData::A(Ipv4Addr::new(104, 16, 1, 1)));
    resolver.add_zone(zone);
    let scanned = scan_domain(&resolver, &dn("foo.com"), 1);

    let mut history = DnsHistory::new();
    let view = DnsView {
        ns: [dn("anna.ns.cloudflare.com")].into_iter().collect(),
        a: [Ipv4Addr::new(104, 16, 1, 1)].into_iter().collect(),
        ..Default::default()
    };
    history.record_change(dn("foo.com"), d("2022-08-01"), view.clone());
    assert_eq!(scanned, view);
    assert_eq!(
        history.view_at(&dn("foo.com"), d("2022-08-01")),
        Some(&view)
    );
}

#[test]
fn sharded_logs_route_by_expiry_year() {
    let mut pool = LogPool::with_yearly_shards("route", 6, 2022, 2025);
    let ca = KeyPair::from_seed([5; 32]);
    for (nb, days, expect_shard) in [
        ("2022-01-01", 90, "route2022"),
        ("2022-11-01", 90, "route2023"), // expires Jan 2023
        ("2023-06-01", 398, "route2024"),
    ] {
        let cert = x509::CertificateBuilder::tls_leaf(KeyPair::from_seed([6; 32]).public())
            .serial(1)
            .issuer_cn("Shard CA")
            .subject_cn("x.com")
            .san(dn("x.com"))
            .validity_days(d(nb), Duration::days(days))
            .sign(&ca);
        let (log, _) = pool.submit(cert, d(nb)).unwrap();
        assert_eq!(log, expect_shard, "cert issued {nb} +{days}d");
    }
}
