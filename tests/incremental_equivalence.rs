//! The incremental driver's equivalence guarantee: replaying a world's day
//! feed through persistent detector state — at any day-batch width, any
//! shard count, with or without a mid-stream checkpoint/resume — produces
//! a report byte-identical to the batch engine (and therefore to the
//! serial detectors; `engine_equivalence.rs` closes that side).

use proptest::prelude::*;
use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;
use stale_tls::worldsim::DayFeed;

/// The comparable byte form of a suite (same shape as
/// `engine_equivalence.rs` so the two tests guard the same bytes).
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

fn incremental_config(shards: usize, day_batch: usize) -> EngineConfig {
    let mut cfg = EngineConfig::with_shards(shards);
    cfg.day_batch = day_batch;
    cfg
}

#[test]
fn incremental_matches_batch_on_fixed_tiny_world() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let batch = suite_bytes(
        &Engine::with_shards(1)
            .run(&data, &psl)
            .expect("batch engine runs")
            .suite,
    );
    for shards in [1usize, 2, 7] {
        for day_batch in [1usize, 7, 30] {
            let report = Engine::new(incremental_config(shards, day_batch))
                .run_incremental(&data, &psl)
                .expect("incremental engine runs");
            assert!(report.is_complete());
            assert_eq!(
                suite_bytes(&report.suite),
                batch,
                "shards={shards} day_batch={day_batch}"
            );
            // Incremental metrics are populated and account for the feed.
            let ingest = report.metrics.ingest.as_ref().expect("ingest metrics");
            assert_eq!(ingest.day_batch, day_batch);
            let feed = DayFeed::new(&data);
            assert_eq!(ingest.days, feed.day_count());
        }
    }
}

#[test]
fn events_accumulate_chronologically_and_cover_kept_records() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let report = Engine::new(incremental_config(2, 1))
        .run_incremental(&data, &psl)
        .expect("incremental engine runs");
    // Discovery dates never run backwards within a shard-ordered batch
    // replay (each batch's events share the batch's last day).
    for pair in report.events.windows(2) {
        assert!(pair[0].discovered <= pair[1].discovered);
    }
    // Every event's record is a real detector record shape.
    for event in &report.events {
        assert!(!event.record.domain.as_str().is_empty());
    }
}

#[test]
fn checkpoint_resume_mid_stream_is_byte_identical() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let batch = suite_bytes(
        &Engine::with_shards(1)
            .run(&data, &psl)
            .expect("batch engine runs")
            .suite,
    );
    let feed = DayFeed::new(&data);
    let midpoint =
        feed.start() + stale_tls::stale_types::Duration::days(feed.day_count() as i64 / 2);

    let dir = std::env::temp_dir().join("stale_incremental_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    for shards in [1usize, 2, 7] {
        let path = dir.join(format!("ckpt_{shards}.json"));
        let _ = std::fs::remove_file(&path);

        // First half: ingest through the midpoint, checkpointing state.
        let mut first = incremental_config(shards, 7);
        first.checkpoint = Some(path.clone());
        first.through = Some(midpoint);
        let partial = Engine::new(first)
            .run_incremental(&data, &psl)
            .expect("partial run");
        assert!(partial.metrics.resumed_shards == 0);
        assert!(path.exists(), "checkpoint written");

        // The v2 snapshot itself is deterministic — detector state is
        // saved through sorted iteration, so an identical first-half run
        // writes byte-identical checkpoint state — and it satisfies every
        // stale-lint preflight invariant (shard order, sorted domain
        // tables, monotone ledgers).
        let snapshot = std::fs::read_to_string(&path).expect("read checkpoint");
        let diags = stale_lint::preflight::preflight_str("checkpoint", &snapshot);
        assert!(diags.is_empty(), "checkpoint preflight: {diags:?}");
        let rerun_path = dir.join(format!("ckpt_{shards}_rerun.json"));
        let _ = std::fs::remove_file(&rerun_path);
        let mut rerun = incremental_config(shards, 7);
        rerun.checkpoint = Some(rerun_path.clone());
        rerun.through = Some(midpoint);
        Engine::new(rerun)
            .run_incremental(&data, &psl)
            .expect("rerun of first half");
        assert_eq!(
            std::fs::read_to_string(&rerun_path).expect("read rerun checkpoint"),
            snapshot,
            "checkpoint snapshot bytes differ across identical runs (shards={shards})"
        );
        let _ = std::fs::remove_file(&rerun_path);

        // Second half: a fresh engine resumes from the checkpoint and
        // drains the rest of the feed.
        let mut second = incremental_config(shards, 7);
        second.checkpoint = Some(path.clone());
        let resumed = Engine::new(second)
            .run_incremental(&data, &psl)
            .expect("resumed run");
        assert_eq!(resumed.metrics.resumed_shards, shards, "shards={shards}");
        assert_eq!(suite_bytes(&resumed.suite), batch, "shards={shards}");
        let _ = std::fs::remove_file(&path);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random small worlds × day-batch widths 1/7/30 × shard counts
    /// 1/2/7: the incremental report is byte-identical to batch, and a
    /// mid-stream checkpoint/resume split lands on the same bytes.
    #[test]
    fn incremental_equivalent_to_batch_on_random_worlds(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        let batch = suite_bytes(
            &Engine::with_shards(2).run(&data, &psl).expect("batch").suite,
        );
        let feed = DayFeed::new(&data);
        let midpoint =
            feed.start() + stale_tls::stale_types::Duration::days(feed.day_count() as i64 / 2);
        let dir = std::env::temp_dir().join("stale_incremental_prop_test");
        std::fs::create_dir_all(&dir).unwrap();
        for shards in [1usize, 2, 7] {
            for day_batch in [1usize, 7, 30] {
                let report = Engine::new(incremental_config(shards, day_batch))
                    .run_incremental(&data, &psl)
                    .expect("incremental");
                prop_assert_eq!(
                    &suite_bytes(&report.suite), &batch,
                    "shards={} day_batch={}", shards, day_batch
                );
            }
            // Checkpoint/resume split at the midpoint.
            let path = dir.join(format!("ckpt_{seed}_{shards}.json"));
            let _ = std::fs::remove_file(&path);
            let mut first = incremental_config(shards, 1);
            first.checkpoint = Some(path.clone());
            first.through = Some(midpoint);
            Engine::new(first).run_incremental(&data, &psl).expect("partial");
            // Whatever world the generator produced, the mid-stream state
            // snapshot upholds the preflight invariants (sorted shard
            // state, monotone ledgers) that resume depends on.
            let snapshot = std::fs::read_to_string(&path).expect("read checkpoint");
            let ckpt_diags = stale_lint::preflight::preflight_str("checkpoint", &snapshot);
            prop_assert!(ckpt_diags.is_empty(), "checkpoint preflight: {:?}", ckpt_diags);
            let mut second = incremental_config(shards, 1);
            second.checkpoint = Some(path.clone());
            let resumed = Engine::new(second)
                .run_incremental(&data, &psl)
                .expect("resumed");
            prop_assert_eq!(resumed.metrics.resumed_shards, shards);
            prop_assert_eq!(&suite_bytes(&resumed.suite), &batch, "resume shards={}", shards);
            let _ = std::fs::remove_file(&path);
        }
    }
}
