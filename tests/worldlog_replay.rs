//! Replay byte-identity over the world-fact log (`stale-obs-worldlog`
//! v1): detection rerun from the log alone must produce the same bytes
//! as detection over the directly simulated world — for every shard
//! count, for both engine drivers, and after a lifetime-cap rewrite.
//!
//! This is the layer-1 analogue of `tests/served_equivalence.rs`: the
//! log round-trip (datasets → JSONL → datasets) sits between the
//! simulator and the engine, and nothing downstream may notice.

use proptest::prelude::*;
use stale_bench::replay::{replay_report, replay_run, ReplayOptions};
use stale_tls::prelude::*;
use stale_tls::worldsim::WorldLog;
use std::path::PathBuf;

/// Render the replay gate's report for a world, with auditing on.
fn report_for(data: WorldDatasets, shards: usize, incremental: bool) -> String {
    let run = replay_run(
        data,
        &ReplayOptions {
            shards,
            incremental,
        },
    )
    .expect("engine run");
    replay_report(&run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For arbitrary world seeds: export the log, reconstruct the
    /// datasets from its JSONL text, and rerun detection at shard
    /// widths 1/2/7 under both the batch and the incremental driver.
    /// Every rendered report must equal the direct-simulation bytes.
    #[test]
    fn replay_is_byte_identical_across_shards_and_drivers(seed in 0u64..10_000) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let jsonl = WorldLog::from_datasets(&data).to_jsonl();
        let baseline = report_for(data, 2, false);
        for shards in [1usize, 2, 7] {
            for incremental in [false, true] {
                let log = WorldLog::from_jsonl(&jsonl).expect("log parses");
                let replayed = log.to_datasets().expect("datasets reconstruct");
                let report = report_for(replayed, shards, incremental);
                prop_assert_eq!(
                    &report, &baseline,
                    "seed={} shards={} incremental={}", seed, shards, incremental
                );
            }
        }
    }
}

/// The preflight gate accepts every exported log (the corruption side
/// is covered by the lint crate's own tests).
#[test]
fn exported_log_passes_preflight() {
    let data = World::run(ScenarioConfig::tiny());
    let jsonl = WorldLog::from_datasets(&data).to_jsonl();
    let diags = stale_lint::preflight::preflight_str("worldlog", &jsonl);
    assert!(diags.is_empty(), "worldlog preflight: {diags:?}");
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// The §6 lifetime-cap counterfactual as a log rewrite: cap validity in
/// the log, replay, and land byte-for-byte on a pinned golden table —
/// no fresh world is ever constructed. Refresh after an intentional
/// change with `UPDATE_GOLDEN=1 cargo test --test worldlog_replay`.
#[test]
fn cap_rewrite_replay_matches_golden() {
    let data = World::run(ScenarioConfig::tiny());
    let log = WorldLog::from_datasets(&data);
    let uncapped = report_for(log.to_datasets().expect("datasets"), 2, false);

    let capped_log = log.rewrite_cap_days(90).expect("rewrite");
    let capped = report_for(capped_log.to_datasets().expect("capped datasets"), 2, false);
    assert_ne!(
        capped, uncapped,
        "a 90-day cap over multi-year certificates must change the tables"
    );

    let path = golden_path("replay_cap90");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &capped).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {} — run `UPDATE_GOLDEN=1 cargo test --test worldlog_replay`",
            path.display()
        )
    });
    if capped != expected {
        let line = capped
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| capped.lines().count().min(expected.lines().count()) + 1);
        panic!(
            "capped replay drifted from golden (first divergence at line {line}); \
             if intentional, refresh with `UPDATE_GOLDEN=1 cargo test --test worldlog_replay`"
        );
    }
}
