//! The persistent explain index over a real audit export: `stale-bench
//! explain` and the daemon both resolve fingerprints through a
//! fingerprint→offset index so lookups read only the matching decision
//! lines. This test drives the same sidecar lifecycle the CLI uses —
//! build, persist, reload, match, reject-on-growth — over an audit
//! store produced by an actual engine run, and pins the core contract:
//! the indexed rendering is byte-identical to the full scan.

use obs::ExplainIndex;
use stale_bench::Experiments;
use stale_tls::engine::EngineConfig;
use stale_tls::prelude::*;

/// A real audit export: the tiny world, fully detected with auditing on.
fn tiny_audit() -> obs::AuditReport {
    let (data, psl) = Experiments::build_world(ScenarioConfig::tiny());
    let mut cfg = EngineConfig::with_shards(2);
    cfg.audit = true;
    Experiments::with_engine_on(data, psl, cfg)
        .expect("engine run")
        .audit
        .expect("audited run")
}

#[test]
fn sidecar_lifecycle_preserves_scan_bytes() {
    let audit = tiny_audit();
    let jsonl = audit.to_jsonl();
    let index = ExplainIndex::build(&jsonl).expect("index builds over real export");

    // Round-trip through the sidecar text form, as the CLI persists it.
    let reloaded = ExplainIndex::parse(&index.to_text()).expect("sidecar parses");
    assert!(reloaded.matches(&jsonl), "fresh sidecar matches its store");

    // Every audited fingerprint renders byte-identically via the index
    // and via the full scan, including through the reloaded sidecar.
    let mut checked = 0usize;
    for cert in audit.decisions.iter().map(|d| &d.cert) {
        if cert.is_empty() {
            continue;
        }
        let scan = audit.render_explain(cert).expect("scan renders");
        assert_eq!(
            reloaded
                .render_explain_from(&jsonl, cert)
                .expect("indexed render"),
            scan,
            "indexed explain for {cert} diverged from the scan"
        );
        checked += 1;
    }
    assert!(checked > 0, "tiny world audits at least one certificate");

    // A store that grew after the index was built is refused, not
    // silently mis-resolved — the CLI rebuilds on this signal.
    let grown = format!("{jsonl}{}", jsonl.lines().last().unwrap());
    assert!(!reloaded.matches(&grown), "stale sidecar must not match");
    let err = reloaded
        .render_explain_from(&grown, audit.decisions.last().map(|d| &d.cert).unwrap())
        .expect_err("stale index must refuse to render");
    assert!(err.contains("stale"), "{err}");
}

#[test]
fn prefix_semantics_match_between_index_and_scan() {
    let audit = tiny_audit();
    let jsonl = audit.to_jsonl();
    let index = ExplainIndex::build(&jsonl).expect("index builds");
    let full = audit
        .decisions
        .iter()
        .find(|d| !d.cert.is_empty())
        .map(|d| d.cert.clone())
        .expect("some audited certificate");

    // A short unique prefix resolves identically on both paths.
    for len in (8..=full.len()).rev() {
        let prefix = &full[..len];
        let scan = audit.render_explain(prefix);
        let indexed = index.render_explain_from(&jsonl, prefix);
        assert_eq!(indexed, scan, "prefix {prefix} diverged");
    }

    // Misses error the same way on both paths.
    let scan_miss = audit.render_explain("ffffffffffffffff").unwrap_err();
    let index_miss = index
        .render_explain_from(&jsonl, "ffffffffffffffff")
        .unwrap_err();
    assert_eq!(scan_miss, index_miss);
}
