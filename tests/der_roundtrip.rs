//! DER codec properties for the x509 crate:
//!
//! 1. **Round-trip identity** — `encode → decode → re-encode` is
//!    byte-identical for certificates and CRLs (DER is a canonical
//!    encoding; any re-encoding drift would break `cert_id` dedup and
//!    checkpoint fingerprints).
//! 2. **Robustness** — decoding a truncated encoding returns `Err`, and
//!    decoding a bit-flipped encoding returns (`Ok` or `Err`) without
//!    panicking. The CT monitor ingests attacker-observable bytes, so the
//!    decoder must be total.
//!
//! Structures are generated from a proptest seed through a small xorshift
//! generator (the proptest shim drives primitive values; the derived
//! structure stays deterministic per seed).

use proptest::prelude::*;
use stale_tls::crypto::KeyPair;
use stale_tls::prelude::*;
use stale_tls::stale_types::domain::dn;
use stale_tls::stale_types::SerialNumber;
use stale_tls::x509::revocation::{Crl, CrlEntry, RevocationReason};
use stale_tls::x509::TbsCertificate;

/// Deterministic value stream for structure generation.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*; seed 0 is mapped away.
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

fn random_cert(g: &mut Gen) -> Certificate {
    let san_count = g.range(0, 5) as usize;
    let sans: Vec<_> = (0..san_count)
        .map(|i| match g.range(0, 3) {
            0 => dn(&format!("host{}.example{}.com", i, g.range(0, 99))),
            1 => dn(&format!("*.wild{}.org", g.range(0, 99))),
            2 => dn(&format!("sni{}.cloudflaressl.com", g.range(0, 999))),
            _ => dn(&format!("deep.sub.domain{}.net", g.range(0, 99))),
        })
        .collect();
    let not_before = Date::parse("2014-01-01").unwrap() + Duration::days(g.range(0, 3000) as i64);
    let subject_seed = [g.range(0, 255) as u8; 32];
    let issuer_seed = [g.range(0, 255) as u8; 32];
    CertificateBuilder::tls_leaf(KeyPair::from_seed(subject_seed).public())
        .serial(g.next() as u128)
        .issuer_cn(format!("CA {}", g.range(0, 9)))
        .subject_cn(format!("subject-{}", g.range(0, 999)))
        .sans(sans)
        .validity_days(not_before, Duration::days(g.range(1, 825) as i64))
        .sign(&KeyPair::from_seed(issuer_seed))
}

fn random_crl(g: &mut Gen) -> Crl {
    let reasons = [
        RevocationReason::Unspecified,
        RevocationReason::KeyCompromise,
        RevocationReason::CaCompromise,
        RevocationReason::AffiliationChanged,
        RevocationReason::Superseded,
        RevocationReason::CessationOfOperation,
        RevocationReason::CertificateHold,
        RevocationReason::RemoveFromCrl,
        RevocationReason::PrivilegeWithdrawn,
        RevocationReason::AaCompromise,
    ];
    let this_update = Date::parse("2021-06-01").unwrap() + Duration::days(g.range(0, 500) as i64);
    let entries: Vec<CrlEntry> = (0..g.range(0, 12))
        .map(|_| CrlEntry {
            serial: SerialNumber(g.next() as u128),
            revocation_date: this_update - Duration::days(g.range(0, 400) as i64),
            reason: reasons[g.range(0, reasons.len() as u64 - 1) as usize],
        })
        .collect();
    Crl::build(
        &KeyPair::from_seed([g.range(0, 255) as u8; 32]),
        this_update,
        this_update + Duration::days(7),
        entries,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// encode → decode → re-encode is byte-identical for certificates,
    /// and decode preserves every observable field used by the pipeline.
    #[test]
    fn certificate_der_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        for _ in 0..8 {
            let cert = random_cert(&mut g);
            let der = cert.encode();
            let decoded = Certificate::decode(&der).expect("decode own encoding");
            prop_assert_eq!(decoded.encode(), der.clone(), "re-encode drifted");
            prop_assert_eq!(&decoded, &cert);
            prop_assert_eq!(decoded.cert_id(), cert.cert_id());
            // The dedup TBS form round-trips independently.
            let tbs_der = cert.tbs.encode(false);
            let tbs = TbsCertificate::decode(&tbs_der).expect("decode tbs");
            prop_assert_eq!(tbs.encode(false), tbs_der);
        }
    }

    /// Same round-trip identity for CRLs.
    #[test]
    fn crl_der_roundtrip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        for _ in 0..8 {
            let crl = random_crl(&mut g);
            let der = crl.encode();
            let decoded = Crl::decode(&der).expect("decode own encoding");
            prop_assert_eq!(decoded.encode(), der);
            prop_assert_eq!(decoded, crl);
        }
    }

    /// Every strict prefix of a valid encoding fails to decode — and
    /// fails with `Err`, not a panic.
    #[test]
    fn truncated_der_is_an_error(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let cert_der = random_cert(&mut g).encode();
        for len in 0..cert_der.len() {
            prop_assert!(
                Certificate::decode(&cert_der[..len]).is_err(),
                "truncated certificate at {} decoded", len
            );
        }
        let crl_der = random_crl(&mut g).encode();
        for len in 0..crl_der.len() {
            prop_assert!(
                Crl::decode(&crl_der[..len]).is_err(),
                "truncated CRL at {} decoded", len
            );
        }
    }

    /// Single-bit corruption anywhere in the encoding never panics the
    /// decoder (it may decode to a different-but-valid structure, e.g. a
    /// flipped signature bit, but it must stay total).
    #[test]
    fn bit_flipped_der_never_panics(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let cert_der = random_cert(&mut g).encode();
        for byte in 0..cert_der.len() {
            let mut corrupt = cert_der.clone();
            corrupt[byte] ^= 1 << g.range(0, 7);
            let _ = Certificate::decode(&corrupt); // Ok or Err, no panic
        }
        let crl_der = random_crl(&mut g).encode();
        for byte in 0..crl_der.len() {
            let mut corrupt = crl_der.clone();
            corrupt[byte] ^= 1 << g.range(0, 7);
            let _ = Crl::decode(&corrupt);
        }
    }
}
