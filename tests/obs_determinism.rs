//! The observability hard invariant: tracing and metrics never feed back
//! into results. Running the engine with a live `Obs` (span tracing on,
//! registry accumulating) produces a detection suite byte-identical to an
//! uninstrumented run — in batch and incremental mode, on fixed and
//! randomly seeded worlds — and the artifacts an instrumented run emits
//! (`--trace-out` JSONL, `--metrics-json`) round-trip through
//! `stale-lint preflight` clean.
//!
//! The decision audit inherits the same contract: auditing on vs off
//! never changes the suite, and the audit artifact itself
//! (`--audit-out` JSONL) is byte-identical across shard widths and
//! across batch vs incremental mode, preflights clean, and balances
//! (`candidates == kept + Σ dropped` per detector).

use proptest::prelude::*;
use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;

/// Same comparable byte form as `engine_equivalence.rs` /
/// `incremental_equivalence.rs`, so all three tests guard the same bytes.
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

fn engine(shards: usize, obs: obs::Obs) -> Engine {
    Engine::new(EngineConfig::with_shards(shards)).with_obs(obs)
}

fn audited_engine(shards: usize, obs: obs::Obs) -> Engine {
    let mut cfg = EngineConfig::with_shards(shards);
    cfg.audit = true;
    Engine::new(cfg).with_obs(obs)
}

#[test]
fn tracing_on_and_off_are_byte_identical_on_fixed_world() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    for shards in [1usize, 2, 7] {
        let plain = engine(shards, obs::Obs::disabled())
            .run(&data, &psl)
            .expect("uninstrumented batch run");
        let traced_obs = obs::Obs::enabled();
        let traced = engine(shards, traced_obs.clone())
            .run(&data, &psl)
            .expect("traced batch run");
        assert_eq!(
            suite_bytes(&traced.suite),
            suite_bytes(&plain.suite),
            "batch shards={shards}"
        );
        // The instrumented run actually recorded something.
        assert!(!traced_obs.trace.records().is_empty());
        assert!(traced_obs
            .registry
            .snapshot()
            .counters
            .contains_key("engine.stage.detect.wall_us"));

        let plain = engine(shards, obs::Obs::disabled())
            .run_incremental(&data, &psl)
            .expect("uninstrumented incremental run");
        let traced = engine(shards, obs::Obs::enabled())
            .run_incremental(&data, &psl)
            .expect("traced incremental run");
        assert_eq!(
            suite_bytes(&traced.suite),
            suite_bytes(&plain.suite),
            "incremental shards={shards}"
        );
    }
}

#[test]
fn emitted_artifacts_preflight_clean() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let obs = obs::Obs::enabled();
    engine(2, obs.clone())
        .run(&data, &psl)
        .expect("traced batch run");
    engine(2, obs.clone())
        .run_incremental(&data, &psl)
        .expect("traced incremental run");

    // What `repro --trace-out` writes validates as a trace file.
    let jsonl = obs.trace.to_jsonl();
    let diags = stale_lint::preflight::preflight_str("trace.jsonl", &jsonl);
    assert!(diags.is_empty(), "trace preflight: {diags:?}");
    // Both engine modes left their root spans in one shared trace.
    let tree = obs.trace.render_tree();
    assert!(tree.contains("engine.run"), "{tree}");
    assert!(tree.contains("engine.run_incremental"), "{tree}");

    // What `repro --metrics-json` writes validates as a metrics file.
    let json = obs.registry.export_json();
    let diags = stale_lint::preflight::preflight_str("metrics.json", &json);
    assert!(diags.is_empty(), "metrics preflight: {diags:?}");
    let snapshot = obs.registry.snapshot();
    for counter in [
        "engine.stage.partition.wall_us",
        "engine.stage.detect.wall_us",
        "engine.stage.merge.wall_us",
        "engine.stage.ingest.wall_us",
        "detector.kc.certs",
        "supervisor.attempts",
    ] {
        assert!(
            snapshot.counters.contains_key(counter),
            "missing {counter}: {:?}",
            snapshot.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(snapshot.histograms.contains_key("engine.shard.wall_us"));
    assert!(snapshot.histograms.contains_key("engine.queue.depth"));
}

#[test]
fn audit_never_perturbs_results_and_is_shard_and_mode_invariant() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();

    let plain = engine(1, obs::Obs::disabled())
        .run(&data, &psl)
        .expect("unaudited batch run");
    assert!(plain.audit.is_none(), "audit off must not produce a report");

    let mut jsonls: Vec<(String, String)> = Vec::new();
    for shards in [1usize, 2, 7] {
        let audited = audited_engine(shards, obs::Obs::disabled())
            .run(&data, &psl)
            .expect("audited batch run");
        assert_eq!(
            suite_bytes(&audited.suite),
            suite_bytes(&plain.suite),
            "audited batch shards={shards} changed the suite"
        );
        let report = audited.audit.expect("audit on produces a report");
        jsonls.push((format!("batch shards={shards}"), report.to_jsonl()));

        let audited = audited_engine(shards, obs::Obs::disabled())
            .run_incremental(&data, &psl)
            .expect("audited incremental run");
        assert_eq!(
            suite_bytes(&audited.suite),
            suite_bytes(&plain.suite),
            "audited incremental shards={shards} changed the suite"
        );
        let report = audited.audit.expect("audit on produces a report");
        jsonls.push((format!("incremental shards={shards}"), report.to_jsonl()));
    }
    let (first_label, first) = &jsonls[0];
    for (label, jsonl) in &jsonls[1..] {
        assert_eq!(
            jsonl, first,
            "audit JSONL differs between {first_label} and {label}"
        );
    }

    // The canonical artifact preflights clean and round-trips.
    let diags = stale_lint::preflight::preflight_str("audit.jsonl", first);
    assert!(diags.is_empty(), "audit preflight: {diags:?}");
    let report = obs::AuditReport::from_jsonl(first).expect("audit round-trips");

    // Coverage balances per detector and counted real work.
    let mut candidates = 0u64;
    for (det, cov) in &report.coverage {
        assert!(
            cov.balanced(),
            "{det}: {} candidates != {} kept + {} dropped",
            cov.candidates,
            cov.kept,
            cov.dropped_total()
        );
        candidates += cov.candidates;
    }
    assert!(candidates > 0, "tiny world produced no audit candidates");

    // `explain` reconstructs a decision chain for a real fingerprint.
    let cert = report
        .decisions
        .iter()
        .find(|d| !d.cert.is_empty())
        .map(|d| d.cert.clone())
        .expect("some decision names a certificate");
    let text = report.render_explain(&cert).expect("explain finds it");
    assert!(text.contains(&cert), "{text}");
    assert!(text.contains("decisions"), "{text}");
}

#[test]
fn audit_coverage_gauges_reach_the_metrics_registry() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let obs = obs::Obs::enabled();
    let report = audited_engine(2, obs.clone())
        .run(&data, &psl)
        .expect("audited batch run")
        .audit
        .expect("audit report");
    let snapshot = obs.registry.snapshot();
    for (det, cov) in &report.coverage {
        assert_eq!(
            snapshot.counters.get(&format!("audit.{det}.candidates")),
            Some(&cov.candidates),
            "audit.{det}.candidates gauge"
        );
        assert_eq!(
            snapshot.counters.get(&format!("audit.{det}.kept")),
            Some(&cov.kept),
            "audit.{det}.kept gauge"
        );
        for (reason, n) in &cov.dropped {
            assert_eq!(
                snapshot
                    .counters
                    .get(&format!("audit.{det}.dropped.{reason}")),
                Some(n),
                "audit.{det}.dropped.{reason} gauge"
            );
        }
    }
    // The registry export still preflights clean with the gauges in it.
    let diags = stale_lint::preflight::preflight_str("metrics.json", &obs.registry.export_json());
    assert!(diags.is_empty(), "metrics preflight: {diags:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random small worlds: the suite is byte-identical with tracing on
    /// vs off, batch and incremental, across shard widths.
    #[test]
    fn tracing_never_perturbs_results_on_random_worlds(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        for shards in [1usize, 3] {
            let plain = engine(shards, obs::Obs::disabled())
                .run(&data, &psl)
                .expect("uninstrumented batch");
            let traced = engine(shards, obs::Obs::enabled())
                .run(&data, &psl)
                .expect("traced batch");
            prop_assert_eq!(
                &suite_bytes(&traced.suite),
                &suite_bytes(&plain.suite),
                "batch shards={}", shards
            );
            let plain = engine(shards, obs::Obs::disabled())
                .run_incremental(&data, &psl)
                .expect("uninstrumented incremental");
            let traced = engine(shards, obs::Obs::enabled())
                .run_incremental(&data, &psl)
                .expect("traced incremental");
            prop_assert_eq!(
                &suite_bytes(&traced.suite),
                &suite_bytes(&plain.suite),
                "incremental shards={}", shards
            );
        }
    }

    /// Random small worlds: the audit artifact is byte-identical across
    /// shard widths and batch vs incremental, preflights clean, and
    /// auditing never perturbs the suite.
    #[test]
    fn audit_is_deterministic_on_random_worlds(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        let plain = engine(1, obs::Obs::disabled())
            .run(&data, &psl)
            .expect("unaudited batch");
        let mut jsonls: Vec<String> = Vec::new();
        for shards in [1usize, 3] {
            let audited = audited_engine(shards, obs::Obs::disabled())
                .run(&data, &psl)
                .expect("audited batch");
            prop_assert_eq!(
                &suite_bytes(&audited.suite),
                &suite_bytes(&plain.suite),
                "audited batch shards={}", shards
            );
            jsonls.push(audited.audit.expect("audit report").to_jsonl());
            let audited = audited_engine(shards, obs::Obs::disabled())
                .run_incremental(&data, &psl)
                .expect("audited incremental");
            prop_assert_eq!(
                &suite_bytes(&audited.suite),
                &suite_bytes(&plain.suite),
                "audited incremental shards={}", shards
            );
            jsonls.push(audited.audit.expect("audit report").to_jsonl());
        }
        for jsonl in &jsonls[1..] {
            prop_assert_eq!(jsonl, &jsonls[0], "audit JSONL diverged");
        }
        let diags = stale_lint::preflight::preflight_str("audit.jsonl", &jsonls[0]);
        prop_assert!(diags.is_empty(), "audit preflight: {:?}", diags);
    }
}
