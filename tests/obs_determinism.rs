//! The observability hard invariant: tracing and metrics never feed back
//! into results. Running the engine with a live `Obs` (span tracing on,
//! registry accumulating) produces a detection suite byte-identical to an
//! uninstrumented run — in batch and incremental mode, on fixed and
//! randomly seeded worlds — and the artifacts an instrumented run emits
//! (`--trace-out` JSONL, `--metrics-json`) round-trip through
//! `stale-lint preflight` clean.

use proptest::prelude::*;
use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;

/// Same comparable byte form as `engine_equivalence.rs` /
/// `incremental_equivalence.rs`, so all three tests guard the same bytes.
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

fn engine(shards: usize, obs: obs::Obs) -> Engine {
    Engine::new(EngineConfig::with_shards(shards)).with_obs(obs)
}

#[test]
fn tracing_on_and_off_are_byte_identical_on_fixed_world() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    for shards in [1usize, 2, 7] {
        let plain = engine(shards, obs::Obs::disabled())
            .run(&data, &psl)
            .expect("uninstrumented batch run");
        let traced_obs = obs::Obs::enabled();
        let traced = engine(shards, traced_obs.clone())
            .run(&data, &psl)
            .expect("traced batch run");
        assert_eq!(
            suite_bytes(&traced.suite),
            suite_bytes(&plain.suite),
            "batch shards={shards}"
        );
        // The instrumented run actually recorded something.
        assert!(!traced_obs.trace.records().is_empty());
        assert!(traced_obs
            .registry
            .snapshot()
            .counters
            .contains_key("engine.stage.detect.wall_us"));

        let plain = engine(shards, obs::Obs::disabled())
            .run_incremental(&data, &psl)
            .expect("uninstrumented incremental run");
        let traced = engine(shards, obs::Obs::enabled())
            .run_incremental(&data, &psl)
            .expect("traced incremental run");
        assert_eq!(
            suite_bytes(&traced.suite),
            suite_bytes(&plain.suite),
            "incremental shards={shards}"
        );
    }
}

#[test]
fn emitted_artifacts_preflight_clean() {
    let data = World::run(ScenarioConfig::tiny());
    let psl = SuffixList::default_list();
    let obs = obs::Obs::enabled();
    engine(2, obs.clone())
        .run(&data, &psl)
        .expect("traced batch run");
    engine(2, obs.clone())
        .run_incremental(&data, &psl)
        .expect("traced incremental run");

    // What `repro --trace-out` writes validates as a trace file.
    let jsonl = obs.trace.to_jsonl();
    let diags = stale_lint::preflight::preflight_str("trace.jsonl", &jsonl);
    assert!(diags.is_empty(), "trace preflight: {diags:?}");
    // Both engine modes left their root spans in one shared trace.
    let tree = obs.trace.render_tree();
    assert!(tree.contains("engine.run"), "{tree}");
    assert!(tree.contains("engine.run_incremental"), "{tree}");

    // What `repro --metrics-json` writes validates as a metrics file.
    let json = obs.registry.export_json();
    let diags = stale_lint::preflight::preflight_str("metrics.json", &json);
    assert!(diags.is_empty(), "metrics preflight: {diags:?}");
    let snapshot = obs.registry.snapshot();
    for counter in [
        "engine.stage.partition.wall_us",
        "engine.stage.detect.wall_us",
        "engine.stage.merge.wall_us",
        "engine.stage.ingest.wall_us",
        "detector.kc.certs",
        "supervisor.attempts",
    ] {
        assert!(
            snapshot.counters.contains_key(counter),
            "missing {counter}: {:?}",
            snapshot.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(snapshot.histograms.contains_key("engine.shard.wall_us"));
    assert!(snapshot.histograms.contains_key("engine.queue.depth"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random small worlds: the suite is byte-identical with tracing on
    /// vs off, batch and incremental, across shard widths.
    #[test]
    fn tracing_never_perturbs_results_on_random_worlds(seed in any::<u64>()) {
        let mut cfg = ScenarioConfig::tiny();
        cfg.seed = seed;
        let data = World::run(cfg);
        let psl = SuffixList::default_list();
        for shards in [1usize, 3] {
            let plain = engine(shards, obs::Obs::disabled())
                .run(&data, &psl)
                .expect("uninstrumented batch");
            let traced = engine(shards, obs::Obs::enabled())
                .run(&data, &psl)
                .expect("traced batch");
            prop_assert_eq!(
                &suite_bytes(&traced.suite),
                &suite_bytes(&plain.suite),
                "batch shards={}", shards
            );
            let plain = engine(shards, obs::Obs::disabled())
                .run_incremental(&data, &psl)
                .expect("uninstrumented incremental");
            let traced = engine(shards, obs::Obs::enabled())
                .run_incremental(&data, &psl)
                .expect("traced incremental");
            prop_assert_eq!(
                &suite_bytes(&traced.suite),
                &suite_bytes(&plain.suite),
                "incremental shards={}", shards
            );
        }
    }
}
