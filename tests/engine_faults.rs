//! Supervisor fault tolerance: panic isolation, retry, degraded-shard
//! reporting, and checkpoint/resume.
//!
//! Since the zero-copy refactor every worker reads the same shared
//! [`stale_tls::stale_core::views::RoutedWorld`] through a borrowed
//! [`stale_tls::engine::ShardView`], so the isolation tests here also pin
//! the sharing invariant: a panicking worker must not poison the shared
//! world or corrupt a sibling's view — whatever the siblings produce must
//! be exactly what they produce in a clean run.

use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;

/// The comparable byte form of a suite (same shape as the equivalence
/// tests): the full revocation join plus the three record streams.
fn suite_bytes(suite: &DetectionSuite) -> String {
    serde_json::to_string(&(
        &suite.revocations.matched,
        &suite.revocations.stats,
        &suite.revocations.cutoff,
        &suite.key_compromise,
        &suite.registrant_change,
        &suite.managed_tls,
    ))
    .expect("suite serialises")
}

fn world() -> (WorldDatasets, SuffixList) {
    (
        World::run(ScenarioConfig::tiny()),
        SuffixList::default_list(),
    )
}

fn record_key(r: &StaleCertRecord) -> (stale_tls::stale_types::CertId, String, Date) {
    (r.cert_id, r.domain.to_string(), r.invalidation)
}

#[test]
fn injected_panic_degrades_shard_but_others_survive() {
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    assert!(clean.is_complete());

    let mut cfg = EngineConfig::with_shards(4);
    cfg.fail_shards = vec![2];
    let report = Engine::new(cfg)
        .run(&data, &psl)
        .expect("degraded run still returns");

    assert!(!report.is_complete());
    assert_eq!(report.degraded.len(), 1);
    let d = &report.degraded[0];
    assert_eq!(d.shard, 2);
    assert_eq!(
        d.attempts, 2,
        "poisoned shard is retried once before degrading"
    );
    assert!(d.error.contains("injected failure"));

    // The degraded shard contributed nothing, but every record that did
    // come back belongs to the clean run's output.
    let clean_keys: std::collections::BTreeSet<_> =
        clean.suite.all_records().map(record_key).collect();
    let degraded_count = report.suite.all_records().count();
    assert!(
        degraded_count > 0,
        "three healthy shards still produce results"
    );
    assert!(degraded_count < clean.suite.all_records().count());
    for r in report.suite.all_records() {
        assert!(
            clean_keys.contains(&record_key(r)),
            "unexpected record {r:?}"
        );
    }
    // Shard 2 has no metrics entry; the others do.
    assert_eq!(report.metrics.shards.len(), 3);
    assert!(report.metrics.shards.iter().all(|s| s.shard != 2));
}

#[test]
fn transient_panic_is_retried_and_results_are_intact() {
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");

    let mut cfg = EngineConfig::with_shards(4);
    cfg.fail_once_shards = vec![1];
    let report = Engine::new(cfg).run(&data, &psl).expect("retried run");

    assert!(report.is_complete(), "one panic is retried, not degraded");
    let retried = report
        .metrics
        .shards
        .iter()
        .find(|s| s.shard == 1)
        .expect("shard 1 ran");
    assert_eq!(retried.attempts, 2);
    assert_eq!(
        report
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        clean
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
}

#[test]
fn checkpoint_resume_skips_completed_shards_and_matches() {
    let (data, psl) = world();
    let dir = std::env::temp_dir().join("stale_engine_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.json");
    let _ = std::fs::remove_file(&path);

    let mut cfg = EngineConfig::with_shards(4);
    cfg.checkpoint = Some(path.clone());
    let first = Engine::new(cfg.clone())
        .run(&data, &psl)
        .expect("first run");
    assert!(first.is_complete());
    assert_eq!(first.metrics.resumed_shards, 0);

    let second = Engine::new(cfg).run(&data, &psl).expect("resumed run");
    assert!(second.is_complete());
    assert_eq!(
        second.metrics.resumed_shards, 4,
        "all shards restored from checkpoint"
    );
    assert_eq!(
        second
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        first
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_shard_is_not_checkpointed_and_recovers_on_rerun() {
    let (data, psl) = world();
    let dir = std::env::temp_dir().join("stale_engine_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("recover.json");
    let _ = std::fs::remove_file(&path);

    let mut failing = EngineConfig::with_shards(4);
    failing.checkpoint = Some(path.clone());
    failing.fail_shards = vec![0];
    let broken = Engine::new(failing).run(&data, &psl).expect("degraded run");
    assert!(!broken.is_complete());

    // Re-run without the fault: shard 0 is retried (it was never saved),
    // the other three resume from the checkpoint.
    let mut healthy = EngineConfig::with_shards(4);
    healthy.checkpoint = Some(path.clone());
    let recovered = Engine::new(healthy).run(&data, &psl).expect("recovery run");
    assert!(recovered.is_complete());
    assert_eq!(recovered.metrics.resumed_shards, 3);

    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    assert_eq!(
        recovered
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        clean
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn panicking_shard_does_not_corrupt_sibling_views() {
    // Fail every shard in turn. Each degraded run must (a) be
    // deterministic — the same panic twice yields byte-identical surviving
    // output, which it could not if the panic scribbled on the shared
    // world — (b) emit only records the clean run emits, and (c) across
    // all four failure positions, every clean record must come back from
    // some run where its shard survived.
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    let clean_keys: std::collections::BTreeSet<_> =
        clean.suite.all_records().map(record_key).collect();

    let mut survived: std::collections::BTreeSet<_> = std::collections::BTreeSet::new();
    for fail in 0..4 {
        let mut cfg = EngineConfig::with_shards(4);
        cfg.fail_shards = vec![fail];
        let once = Engine::new(cfg.clone())
            .run(&data, &psl)
            .expect("degraded run");
        let twice = Engine::new(cfg).run(&data, &psl).expect("degraded rerun");
        assert!(!once.is_complete());
        assert_eq!(
            suite_bytes(&once.suite),
            suite_bytes(&twice.suite),
            "fail={fail}: surviving shards must be deterministic over the shared world"
        );
        assert_eq!(once.degraded.len(), 1);
        assert_eq!(once.degraded[0].shard, fail);
        assert_eq!(once.metrics.shards.len(), 3, "fail={fail}");
        assert!(once.metrics.shards.iter().all(|s| s.shard != fail));
        for r in once.suite.all_records() {
            let key = record_key(r);
            assert!(clean_keys.contains(&key), "fail={fail}: spurious record");
            survived.insert(key);
        }
    }
    assert_eq!(
        survived, clean_keys,
        "every record must survive the runs where its shard was healthy"
    );
}

#[test]
fn transient_panics_on_multiple_view_shards_retry_to_byte_identity() {
    // Two workers panic once each mid-run and are retried over the same
    // borrowed views; the final report must be byte-identical to a clean
    // run — a first-attempt panic must leave nothing behind.
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");

    let mut cfg = EngineConfig::with_shards(4);
    cfg.fail_once_shards = vec![0, 2];
    let report = Engine::new(cfg).run(&data, &psl).expect("retried run");
    assert!(report.is_complete());
    for shard in [0, 2] {
        let m = report
            .metrics
            .shards
            .iter()
            .find(|s| s.shard == shard)
            .expect("shard ran");
        assert_eq!(m.attempts, 2, "shard {shard} retried exactly once");
    }
    assert_eq!(suite_bytes(&report.suite), suite_bytes(&clean.suite));
}

#[test]
fn mid_failure_checkpoint_resume_is_byte_identical() {
    // Two shards panic with checkpointing on: only the healthy shards are
    // saved. The recovery run must resume exactly those, re-run the
    // failed ones against the freshly routed world, and merge to the
    // clean run's bytes — resumed indices and live views must agree.
    let (data, psl) = world();
    let dir = std::env::temp_dir().join("stale_engine_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mid_failure.json");
    let _ = std::fs::remove_file(&path);

    let mut failing = EngineConfig::with_shards(4);
    failing.checkpoint = Some(path.clone());
    failing.fail_shards = vec![1, 3];
    let broken = Engine::new(failing).run(&data, &psl).expect("degraded run");
    assert!(!broken.is_complete());
    assert_eq!(broken.degraded.len(), 2);
    assert_eq!(broken.metrics.resumed_shards, 0);

    let mut healthy = EngineConfig::with_shards(4);
    healthy.checkpoint = Some(path.clone());
    let recovered = Engine::new(healthy).run(&data, &psl).expect("recovery run");
    assert!(recovered.is_complete());
    assert_eq!(
        recovered.metrics.resumed_shards, 2,
        "exactly the healthy shards resume from the checkpoint"
    );

    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    assert_eq!(suite_bytes(&recovered.suite), suite_bytes(&clean.suite));
    let _ = std::fs::remove_file(&path);
}
