//! Supervisor fault tolerance: panic isolation, retry, degraded-shard
//! reporting, and checkpoint/resume.

use stale_tls::engine::{Engine, EngineConfig};
use stale_tls::prelude::*;

fn world() -> (WorldDatasets, SuffixList) {
    (
        World::run(ScenarioConfig::tiny()),
        SuffixList::default_list(),
    )
}

fn record_key(r: &StaleCertRecord) -> (stale_tls::stale_types::CertId, String, Date) {
    (r.cert_id, r.domain.to_string(), r.invalidation)
}

#[test]
fn injected_panic_degrades_shard_but_others_survive() {
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    assert!(clean.is_complete());

    let mut cfg = EngineConfig::with_shards(4);
    cfg.fail_shards = vec![2];
    let report = Engine::new(cfg)
        .run(&data, &psl)
        .expect("degraded run still returns");

    assert!(!report.is_complete());
    assert_eq!(report.degraded.len(), 1);
    let d = &report.degraded[0];
    assert_eq!(d.shard, 2);
    assert_eq!(
        d.attempts, 2,
        "poisoned shard is retried once before degrading"
    );
    assert!(d.error.contains("injected failure"));

    // The degraded shard contributed nothing, but every record that did
    // come back belongs to the clean run's output.
    let clean_keys: std::collections::BTreeSet<_> =
        clean.suite.all_records().map(record_key).collect();
    let degraded_count = report.suite.all_records().count();
    assert!(
        degraded_count > 0,
        "three healthy shards still produce results"
    );
    assert!(degraded_count < clean.suite.all_records().count());
    for r in report.suite.all_records() {
        assert!(
            clean_keys.contains(&record_key(r)),
            "unexpected record {r:?}"
        );
    }
    // Shard 2 has no metrics entry; the others do.
    assert_eq!(report.metrics.shards.len(), 3);
    assert!(report.metrics.shards.iter().all(|s| s.shard != 2));
}

#[test]
fn transient_panic_is_retried_and_results_are_intact() {
    let (data, psl) = world();
    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");

    let mut cfg = EngineConfig::with_shards(4);
    cfg.fail_once_shards = vec![1];
    let report = Engine::new(cfg).run(&data, &psl).expect("retried run");

    assert!(report.is_complete(), "one panic is retried, not degraded");
    let retried = report
        .metrics
        .shards
        .iter()
        .find(|s| s.shard == 1)
        .expect("shard 1 ran");
    assert_eq!(retried.attempts, 2);
    assert_eq!(
        report
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        clean
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
}

#[test]
fn checkpoint_resume_skips_completed_shards_and_matches() {
    let (data, psl) = world();
    let dir = std::env::temp_dir().join("stale_engine_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.json");
    let _ = std::fs::remove_file(&path);

    let mut cfg = EngineConfig::with_shards(4);
    cfg.checkpoint = Some(path.clone());
    let first = Engine::new(cfg.clone())
        .run(&data, &psl)
        .expect("first run");
    assert!(first.is_complete());
    assert_eq!(first.metrics.resumed_shards, 0);

    let second = Engine::new(cfg).run(&data, &psl).expect("resumed run");
    assert!(second.is_complete());
    assert_eq!(
        second.metrics.resumed_shards, 4,
        "all shards restored from checkpoint"
    );
    assert_eq!(
        second
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        first
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_shard_is_not_checkpointed_and_recovers_on_rerun() {
    let (data, psl) = world();
    let dir = std::env::temp_dir().join("stale_engine_fault_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("recover.json");
    let _ = std::fs::remove_file(&path);

    let mut failing = EngineConfig::with_shards(4);
    failing.checkpoint = Some(path.clone());
    failing.fail_shards = vec![0];
    let broken = Engine::new(failing).run(&data, &psl).expect("degraded run");
    assert!(!broken.is_complete());

    // Re-run without the fault: shard 0 is retried (it was never saved),
    // the other three resume from the checkpoint.
    let mut healthy = EngineConfig::with_shards(4);
    healthy.checkpoint = Some(path.clone());
    let recovered = Engine::new(healthy).run(&data, &psl).expect("recovery run");
    assert!(recovered.is_complete());
    assert_eq!(recovered.metrics.resumed_shards, 3);

    let clean = Engine::with_shards(4).run(&data, &psl).expect("clean run");
    assert_eq!(
        recovered
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
        clean
            .suite
            .all_records()
            .map(record_key)
            .collect::<Vec<_>>(),
    );
    let _ = std::fs::remove_file(&path);
}
