//! Dataset persistence: the simulator's feeds serialise to JSON and come
//! back intact, so worlds can be generated once and analysed elsewhere
//! (the pattern the examples and benches rely on).

use dns::scan::{DnsHistory, DnsView};
use registry::whois::WhoisDataset;
use stale_types::{domain::dn, Date};
use worldsim::popularity::{PopularityArchive, RankSample};
use worldsim::reputation::{DomainReputation, ReputationFeed};

fn d(s: &str) -> Date {
    Date::parse(s).unwrap()
}

#[test]
fn whois_dataset_json_roundtrip() {
    let mut ds = WhoisDataset::new();
    ds.observe(dn("foo.com"), d("2016-01-01"));
    ds.observe(dn("foo.com"), d("2020-06-15"));
    ds.observe(dn("bar.net"), d("2018-03-03"));
    let json = serde_json::to_string(&ds).unwrap();
    let back: WhoisDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.domain_count(), 2);
    assert_eq!(back.record_count(), 3);
    assert_eq!(
        back.registrant_changes().collect::<Vec<_>>(),
        ds.registrant_changes().collect::<Vec<_>>()
    );
    assert_eq!(back.window_start, ds.window_start);
}

#[test]
fn dns_history_json_roundtrip() {
    let mut history = DnsHistory::new();
    history.record_change(
        dn("foo.com"),
        d("2022-08-01"),
        DnsView::with_ns([dn("anna.ns.cloudflare.com")]),
    );
    history.record_change(
        dn("foo.com"),
        d("2022-09-15"),
        DnsView::with_ns([dn("ns1.away.net")]),
    );
    let json = serde_json::to_string(&history).unwrap();
    let back: DnsHistory = serde_json::from_str(&json).unwrap();
    assert_eq!(back.domain_count(), 1);
    assert_eq!(back.change_count(), 2);
    assert_eq!(
        back.view_at(&dn("foo.com"), d("2022-09-01")),
        history.view_at(&dn("foo.com"), d("2022-09-01"))
    );
}

#[test]
fn popularity_and_reputation_json_roundtrip() {
    let mut archive = PopularityArchive::new();
    let mut ranks = std::collections::HashMap::new();
    ranks.insert(dn("foo.com"), 777u32);
    archive.add_sample(RankSample {
        date: d("2020-01-01"),
        ranks,
    });
    let json = serde_json::to_string(&archive).unwrap();
    let back: PopularityArchive = serde_json::from_str(&json).unwrap();
    assert_eq!(back.best_rank(&dn("foo.com")), Some(777));

    let mut feed = ReputationFeed::new();
    feed.insert(
        dn("evil.com"),
        DomainReputation {
            malware_families: vec!["backdoor".into()],
            url_labels: vec!["phishing".into()],
            first_submission: d("2019-05-05"),
            vendor_count: 12,
        },
    );
    let json = serde_json::to_string(&feed).unwrap();
    let back: ReputationFeed = serde_json::from_str(&json).unwrap();
    assert_eq!(back.query(&dn("evil.com")), feed.query(&dn("evil.com")));
}

#[test]
fn crl_dataset_json_roundtrip() {
    use ca::scraper::{CrlDataset, RevocationRecord};
    use stale_types::{KeyId, SerialNumber};
    use x509::revocation::RevocationReason;
    let mut ds = CrlDataset::new();
    ds.add(RevocationRecord {
        authority_key_id: KeyId::from_bytes([9; 20]),
        serial: SerialNumber(42),
        revocation_date: d("2022-10-01"),
        reason: RevocationReason::KeyCompromise,
        observed: d("2022-11-01"),
    });
    let json = serde_json::to_string(&ds).unwrap();
    let back: CrlDataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.records(), ds.records());
    assert_eq!(back.len(), 1);
}

#[test]
fn stale_records_json_roundtrip() {
    use stale_core::staleness::{StaleCertRecord, StalenessClass};
    use stale_types::{CertId, DateInterval};
    let record = StaleCertRecord {
        cert_id: CertId::from_bytes([3; 32]),
        class: StalenessClass::ManagedTlsDeparture,
        domain: dn("foo.com"),
        fqdns: vec![dn("foo.com"), dn("*.foo.com")],
        issuer: "CloudFlare ECC CA-2".into(),
        invalidation: d("2022-09-15"),
        validity: DateInterval::new(d("2022-03-01"), d("2023-03-01")).unwrap(),
    };
    let json = serde_json::to_string(&vec![record.clone()]).unwrap();
    let back: Vec<StaleCertRecord> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, vec![record]);
}

#[test]
fn certificates_persist_as_pem() {
    use crypto::KeyPair;
    use stale_types::Duration;
    use x509::pem::{certificate_from_pem, certificate_to_pem};
    let cert = x509::CertificateBuilder::tls_leaf(KeyPair::from_seed([1; 32]).public())
        .serial(1)
        .issuer_cn("Persist CA")
        .subject_cn("persist.com")
        .san(dn("persist.com"))
        .validity_days(d("2022-01-01"), Duration::days(90))
        .sign(&KeyPair::from_seed([2; 32]));
    let pem = certificate_to_pem(&cert);
    assert_eq!(certificate_from_pem(&pem).unwrap(), cert);
}
